"""Randomized differential testing of every backend against a NumPy oracle.

A seeded generator builds random query plans — random schemas, compound
filter predicates, ``with_column`` arithmetic, single- and composite-key
joins, multi-aggregate group-bys — and executes each of them through the
full compiler with every backend combination: the sequential Python engine,
the Spark-sim data-parallel engine, the Sharemind-style secret-sharing MPC
backend, and the Obliv-C-style garbled-circuit MPC backend.  Results must
equal an independently implemented row-at-a-time oracle (plain Python/NumPy
over row dicts — deliberately *not* the Table methods the backends use).

A subset of the same plans is additionally executed over the socket runtime
(one OS process per party) and must be byte-identical to the simulated
runtime with an identical MPC work/traffic profile.
"""

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.runtime.coordinator import SocketCoordinator

SEED = 20260729
NUM_PLANS = 50
#: Plans additionally cross-checked over real per-party processes.
NUM_SOCKET_PLANS = 6

PARTY_A = "alpha.example"
PARTY_B = "beta.example"

#: (cleartext backend, MPC backend) — together these cover the Python
#: engine, Spark-sim, Sharemind-style and garbled-circuit backends.
BACKEND_CONFIGS = [
    ("python", "sharemind"),
    ("spark", "sharemind"),
    ("python", "obliv-c"),
    ("spark", "obliv-c"),
]

COMPARE_OPS = ["==", "!=", "<", "<=", ">", ">="]
ARITH_OPS = ["+", "-", "*"]
AGG_FUNCS = ["sum", "count", "min", "max"]


# -- plan generation --------------------------------------------------------------------------


def generate_spec(seed: int) -> dict:
    """Generate one random query-plan specification."""
    rng = np.random.default_rng(seed)
    num_keys = int(rng.integers(1, 3))
    num_vals = int(rng.integers(1, 3))
    key_cols = [f"k{i}" for i in range(num_keys)]
    val_cols = [f"v{i}" for i in range(num_vals)]
    columns = key_cols + val_cols

    spec = {
        "seed": seed,
        "columns": columns,
        "key_cols": key_cols,
        "tables": [_random_rows(rng, columns, key_cols) for _ in range(2)],
        "ops": [],
    }
    numeric = list(columns)

    if rng.random() < 0.5:
        name = "c0"
        a, b = rng.choice(numeric, size=2, replace=True)
        op1, op2 = rng.choice(ARITH_OPS, size=2)
        const = int(rng.integers(-3, 4))
        spec["ops"].append(("with_column", name, (str(a), str(op1), str(b), str(op2), const)))
        numeric.append(name)

    if rng.random() < 0.6:
        spec["ops"].append(("filter", _random_predicate(rng, numeric)))

    join_cols: list[str] = []
    if rng.random() < 0.4:
        right_keys = [f"m{i}" for i in range(num_keys)]
        right_vals = [f"w{i}" for i in range(int(rng.integers(1, 3)))]
        right_cols = right_keys + right_vals
        pairs = list(zip(key_cols, right_keys))
        key_base = int(rng.choice([64, 1 << 20])) if num_keys > 1 else None
        spec["ops"].append((
            "join",
            [_random_rows(rng, right_cols, right_keys) for _ in range(2)],
            right_cols,
            pairs,
            key_base,
        ))
        join_cols = right_vals
        numeric.extend(right_vals)

    if rng.random() < 0.7:
        group = list(rng.choice(spec["key_cols"], size=int(rng.integers(1, num_keys + 1)), replace=False))
        value_pool = [c for c in numeric if c not in spec["key_cols"] and c not in group]
        aggs = []
        for i in range(int(rng.integers(1, 3))):
            func = str(rng.choice(AGG_FUNCS))
            over = str(rng.choice(value_pool)) if func != "count" else None
            aggs.append((f"a{i}", func, over))
        key_base = int(rng.choice([64, 1 << 20])) if len(group) > 1 else None
        spec["ops"].append(("aggregate", [str(g) for g in group], aggs, key_base))
    elif join_cols and rng.random() < 0.5:
        keep = spec["key_cols"] + [c for c in numeric if c not in spec["key_cols"]][:2]
        spec["ops"].append(("project", keep))

    return spec


def _random_rows(rng, columns, key_cols):
    rows = []
    for _ in range(int(rng.integers(6, 11))):
        row = {}
        for col in columns:
            row[col] = int(rng.integers(0, 5)) if col in key_cols else int(rng.integers(-20, 21))
        rows.append(row)
    return rows


def _random_predicate(rng, columns, depth: int = 0):
    if depth >= 2 or rng.random() < 0.55:
        leaf = ("cmp", str(rng.choice(columns)), str(rng.choice(COMPARE_OPS)), int(rng.integers(-5, 6)))
        if rng.random() < 0.25:
            return ("not", leaf)
        return leaf
    op = "and" if rng.random() < 0.5 else "or"
    return (op, _random_predicate(rng, columns, depth + 1), _random_predicate(rng, columns, depth + 1))


# -- query construction -----------------------------------------------------------------------


def build_query(spec):
    """Lower a spec to a QueryContext plus party inputs."""
    pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
    frontend_cols = [cc.Column(c, cc.INT) for c in spec["columns"]]

    def to_table(rows, columns):
        schema = Schema([ColumnDef(c) for c in columns])
        return Table.from_rows(schema, [tuple(r[c] for c in columns) for r in rows])

    inputs = {
        PARTY_A: {"t0": to_table(spec["tables"][0], spec["columns"])},
        PARTY_B: {"t1": to_table(spec["tables"][1], spec["columns"])},
    }

    with QueryContext() as ctx:
        t0 = ctx.new_table("t0", frontend_cols, at=pa)
        t1 = ctx.new_table("t1", frontend_cols, at=pb)
        rel = ctx.concat([t0, t1])
        for op in spec["ops"]:
            if op[0] == "with_column":
                _, name, (a, op1, b, op2, const) = op
                expr = _arith_expr(a, op1, b, op2, const)
                rel = rel.with_column(name, expr)
            elif op[0] == "filter":
                rel = rel.filter(_predicate_expr(op[1]))
            elif op[0] == "project":
                rel = rel.project(op[1])
            elif op[0] == "join":
                _, right_tables, right_cols, pairs, key_base = op
                right_frontend = [cc.Column(c, cc.INT) for c in right_cols]
                r0 = ctx.new_table("r0", right_frontend, at=pa)
                r1 = ctx.new_table("r1", right_frontend, at=pb)
                inputs[PARTY_A]["r0"] = to_table(right_tables[0], right_cols)
                inputs[PARTY_B]["r1"] = to_table(right_tables[1], right_cols)
                right = ctx.concat([r0, r1])
                kwargs = {"key_base": key_base} if key_base else {}
                rel = rel.join(right, on=pairs, **kwargs)
            elif op[0] == "aggregate":
                _, group, aggs, key_base = op
                agg_map = {
                    out: (cc.COUNT() if func == "count" else cc.AggSpec(func, over))
                    for out, func, over in aggs
                }
                kwargs = {"key_base": key_base} if key_base else {}
                rel = rel.aggregate(group=group, aggs=agg_map, **kwargs)
        rel.collect("out", to=[pa])
    return ctx, inputs


def _arith_expr(a, op1, b, op2, const):
    import operator

    py_ops = {"+": operator.add, "-": operator.sub, "*": operator.mul}
    return py_ops[op2](py_ops[op1](cc.col(a), cc.col(b)), const)


def _predicate_expr(pred):
    kind = pred[0]
    if kind == "cmp":
        _, col, op, const = pred
        lhs = cc.col(col)
        return {
            "==": lhs == const, "!=": lhs != const, "<": lhs < const,
            "<=": lhs <= const, ">": lhs > const, ">=": lhs >= const,
        }[op]
    if kind == "not":
        return ~_predicate_expr(pred[1])
    left, right = _predicate_expr(pred[1]), _predicate_expr(pred[2])
    return (left & right) if kind == "and" else (left | right)


# -- the oracle -------------------------------------------------------------------------------


def oracle(spec):
    """Evaluate the spec with plain Python over row dicts.

    Independent of the Table/backends implementation on purpose: joins are
    nested loops, aggregation is a dict of groups, predicates are evaluated
    row by row.
    """
    rows = [dict(r) for r in spec["tables"][0] + spec["tables"][1]]
    columns = list(spec["columns"])

    for op in spec["ops"]:
        if op[0] == "with_column":
            _, name, (a, op1, b, op2, const) = op
            for row in rows:
                row[name] = _arith_eval(_arith_eval(row[a], op1, row[b]), op2, const)
            columns.append(name)
        elif op[0] == "filter":
            rows = [row for row in rows if _pred_eval(op[1], row)]
        elif op[0] == "project":
            columns = list(op[1])
            rows = [{c: row[c] for c in columns} for row in rows]
        elif op[0] == "join":
            _, right_tables, right_cols, pairs, _key_base = op
            right_rows = [dict(r) for r in right_tables[0] + right_tables[1]]
            right_keys = [rk for _, rk in pairs]
            joined = []
            for left_row in rows:
                for right_row in right_rows:
                    if all(left_row[lk] == right_row[rk] for lk, rk in pairs):
                        merged = dict(left_row)
                        for c in right_cols:
                            if c not in right_keys:
                                merged[c] = right_row[c]
                        joined.append(merged)
            rows = joined
            columns = columns + [c for c in right_cols if c not in right_keys]
        elif op[0] == "aggregate":
            _, group, aggs, _key_base = op
            groups: dict[tuple, list[dict]] = {}
            for row in rows:
                groups.setdefault(tuple(row[g] for g in group), []).append(row)
            out_rows = []
            for key, members in groups.items():
                out = dict(zip(group, key))
                for out_name, func, over in aggs:
                    if func == "count":
                        out[out_name] = len(members)
                    else:
                        values = [m[over] for m in members]
                        out[out_name] = {"sum": sum, "min": min, "max": max}[func](values)
                out_rows.append(out)
            rows = out_rows
            columns = list(group) + [out for out, _, _ in aggs]
    return sorted(tuple(row[c] for c in columns) for row in rows)


def _arith_eval(a, op, b):
    return {"+": a + b, "-": a - b, "*": a * b}[op]


def _pred_eval(pred, row):
    kind = pred[0]
    if kind == "cmp":
        _, col, op, const = pred
        value = row[col]
        return {
            "==": value == const, "!=": value != const, "<": value < const,
            "<=": value <= const, ">": value > const, ">=": value >= const,
        }[op]
    if kind == "not":
        return not _pred_eval(pred[1], row)
    if kind == "and":
        return _pred_eval(pred[1], row) and _pred_eval(pred[2], row)
    return _pred_eval(pred[1], row) or _pred_eval(pred[2], row)


# -- the differential tests --------------------------------------------------------------------


def run_spec(
    spec,
    cleartext: str,
    mpc: str,
    runtime: str = "simulated",
    seed: int = 0,
    executor: str = "row",
):
    ctx, inputs = build_query(spec)
    config = CompilationConfig(
        cleartext_backend=cleartext, mpc_backend=mpc, executor=executor
    )
    compiled = cc.compile_query(ctx, config)
    parties = sorted(compiled.dag.parties() | set(inputs))
    if runtime == "sockets":
        result = SocketCoordinator(parties, inputs, config, seed=seed).run(compiled)
    else:
        result = QueryRunner(parties, inputs, config, seed=seed).run(compiled)
    return compiled, result


@pytest.mark.parametrize("plan", range(NUM_PLANS))
def test_random_plan_matches_oracle_on_all_backends(plan):
    spec = generate_spec(SEED + plan)
    expected = oracle(spec)
    for cleartext, mpc in BACKEND_CONFIGS:
        _compiled, result = run_spec(spec, cleartext, mpc)
        got = sorted(result.outputs["out"].rows())
        assert got == expected, (
            f"plan {plan} (seed {spec['seed']}) diverged from the oracle on "
            f"cleartext={cleartext} mpc={mpc}:\n got      {got}\n expected {expected}"
        )


@pytest.mark.parametrize("plan", range(NUM_PLANS))
def test_random_plan_columnar_byte_identical_to_row_engine(plan):
    """Every differential plan through the columnar executor must be
    byte-identical (outputs including row order, plus the MPC work/traffic
    profile) to the row-engine oracle, on every backend combination."""
    spec = generate_spec(SEED + plan)
    expected = oracle(spec)
    references = {}
    for mpc in ("sharemind", "obliv-c"):
        _compiled, reference = run_spec(spec, "python", mpc)
        assert sorted(reference.outputs["out"].rows()) == expected
        references[mpc] = reference
    for cleartext, mpc in BACKEND_CONFIGS:
        # The columnar engine replaces the cleartext backend wholesale, so
        # whichever row engine the config names, the oracle is the Python
        # row engine under the same MPC backend.
        reference = references[mpc]
        _c, columnar = run_spec(spec, cleartext, mpc, executor="columnar")
        assert columnar.outputs["out"] == reference.outputs["out"], (
            f"plan {plan} (seed {spec['seed']}): columnar executor diverged from "
            f"the row engine on cleartext={cleartext} mpc={mpc}"
        )
        assert columnar.mpc_profile == reference.mpc_profile, (
            f"plan {plan} (seed {spec['seed']}): columnar executor has a different "
            f"MPC work/traffic profile on cleartext={cleartext} mpc={mpc}"
        )


class TestCompositeKeyRangeGuard:
    """Out-of-range composite-key values fail loudly instead of silently
    matching unequal keys (regression for the negative-key hazard)."""

    KEY_BASE = 100

    def build_join(self):
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        cols = [cc.Column("k1"), cc.Column("k2"), cc.Column("v")]
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", cols, at=pa)
            t1 = ctx.new_table("t1", [cc.Column("m1"), cc.Column("m2"), cc.Column("w")], at=pb)
            t0.join(t1, on=[("k1", "m1"), ("k2", "m2")], key_base=self.KEY_BASE).collect(
                "out", to=[pa]
            )
        return ctx

    def inputs(self, left_rows, right_rows):
        left = Schema([ColumnDef("k1"), ColumnDef("k2"), ColumnDef("v")])
        right = Schema([ColumnDef("m1"), ColumnDef("m2"), ColumnDef("w")])
        return {
            PARTY_A: {"t0": Table.from_rows(left, left_rows)},
            PARTY_B: {"t1": Table.from_rows(right, right_rows)},
        }

    def test_in_range_keys_join_correctly(self):
        result = cc.run_query(self.build_join(), self.inputs([(1, 2, 10)], [(1, 2, 20)]))
        assert result.outputs["out"].rows() == [(1, 2, 10, 20)]

    @pytest.mark.parametrize("bad_row", [(1, -2, 10), (-1, 2, 10), (1, 100, 10)])
    def test_out_of_range_left_key_raises(self, bad_row):
        with pytest.raises(ValueError, match="composite-key column .* outside"):
            cc.run_query(self.build_join(), self.inputs([bad_row], [(1, 2, 20)]))

    def test_out_of_range_right_key_raises(self):
        with pytest.raises(ValueError, match="composite-key column .* outside"):
            cc.run_query(self.build_join(), self.inputs([(1, 2, 10)], [(1, -3, 20)]))

    @pytest.mark.parametrize("cleartext", ["python", "spark"])
    def test_guard_fires_on_both_cleartext_backends(self, cleartext):
        config = CompilationConfig(cleartext_backend=cleartext)
        with pytest.raises(ValueError, match="composite-key"):
            cc.run_query(self.build_join(), self.inputs([(-1, 2, 10)], [(1, 2, 20)]), config)

    @pytest.mark.parametrize("bad_row", [(1, -2, 10), (-1, 2, 10), (1, 100, 10)])
    def test_guard_fires_in_columnar_executor(self, bad_row):
        """The vectorized encode path enforces the same key-range check as
        the row engine (mirrors test_out_of_range_left_key_raises)."""
        with pytest.raises(ValueError, match="composite-key column .* outside"):
            cc.run_query(
                self.build_join(),
                self.inputs([bad_row], [(1, 2, 20)]),
                executor="columnar",
            )

    def test_columnar_in_range_keys_join_correctly(self):
        result = cc.run_query(
            self.build_join(),
            self.inputs([(1, 2, 10)], [(1, 2, 20)]),
            executor="columnar",
        )
        assert result.outputs["out"].rows() == [(1, 2, 10, 20)]

    def test_guard_fires_inside_mpc_when_encode_is_not_pushed_down(self):
        """With push-down disabled the encode runs on secret-shared data;
        the executor still checks it (acting as the environment)."""
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        cols = [cc.Column("k1"), cc.Column("k2"), cc.Column("v")]
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", cols, at=pa)
            t1 = ctx.new_table("t1", cols, at=pb)
            combined = ctx.concat([t0, t1])
            combined.aggregate(
                group=["k1", "k2"], aggs={"s": cc.SUM("v")}, key_base=self.KEY_BASE
            ).collect("out", to=[pa])
        config = CompilationConfig(enable_push_down=False)
        schema = Schema([ColumnDef("k1"), ColumnDef("k2"), ColumnDef("v")])
        inputs = {
            PARTY_A: {"t0": Table.from_rows(schema, [(1, 2, 10)])},
            PARTY_B: {"t1": Table.from_rows(schema, [(1, -2, 20)])},
        }
        with pytest.raises(ValueError, match="composite-key"):
            cc.run_query(ctx, inputs, config)

    def test_grouped_aggregate_guard(self):
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        cols = [cc.Column("k1"), cc.Column("k2"), cc.Column("v")]
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", cols, at=pa)
            t1 = ctx.new_table("t1", cols, at=pb)
            ctx.concat([t0, t1]).aggregate(
                group=["k1", "k2"], aggs={"s": cc.SUM("v")}, key_base=self.KEY_BASE
            ).collect("out", to=[pa])
        schema = Schema([ColumnDef("k1"), ColumnDef("k2"), ColumnDef("v")])
        inputs = {
            PARTY_A: {"t0": Table.from_rows(schema, [(1, 2, 10)])},
            PARTY_B: {"t1": Table.from_rows(schema, [(3, 200, 20)])},
        }
        with pytest.raises(ValueError, match="outside \\[0, 100\\)"):
            cc.run_query(ctx, inputs)


@pytest.mark.parametrize("plan", range(NUM_SOCKET_PLANS))
def test_random_plan_byte_identical_across_transports(plan):
    spec = generate_spec(SEED + plan)
    _compiled, simulated = run_spec(spec, "python", "sharemind", seed=3)
    compiled, socketed = run_spec(spec, "python", "sharemind", runtime="sockets", seed=3)
    # Byte-identical tables (including row order) and identical MPC operator
    # counts and work/traffic profile between the transports.
    assert simulated.outputs["out"] == socketed.outputs["out"]
    assert simulated.mpc_profile == socketed.mpc_profile
    assert compiled.mpc_operator_count() == _compiled.mpc_operator_count()
    assert sorted(socketed.outputs["out"].rows()) == oracle(spec)


def test_fifty_plans_replayed_through_one_warm_session():
    """Service-mode differential: replay all 50 seeded random plans through
    ONE long-lived session and require byte-identity (outputs including row
    order, plus the MPC work/traffic profile) with a fresh-process socket
    run and the simulated runtime of every plan."""
    config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
    with cc.QuerySession([PARTY_A, PARTY_B], config=config, seed=3) as session:
        for plan in range(NUM_PLANS):
            spec = generate_spec(SEED + plan)
            ctx, inputs = build_query(spec)
            compiled = cc.compile_query(ctx, config)

            simulated = QueryRunner(
                [PARTY_A, PARTY_B], inputs, config, seed=3
            ).run(compiled)
            cold = SocketCoordinator(
                [PARTY_A, PARTY_B], inputs, config, seed=3
            ).run(compiled)
            warm = session.submit(compiled, inputs=inputs)

            expected = oracle(spec)
            for label, result in (("cold", cold), ("warm", warm)):
                assert result.outputs["out"] == simulated.outputs["out"], (
                    f"plan {plan} (seed {spec['seed']}): {label} socket run is not "
                    f"byte-identical to the simulated runtime"
                )
                assert result.mpc_profile == simulated.mpc_profile, (
                    f"plan {plan} (seed {spec['seed']}): {label} socket run has a "
                    f"different MPC work/traffic profile"
                )
            assert sorted(warm.outputs["out"].rows()) == expected, (
                f"plan {plan} (seed {spec['seed']}) diverged from the oracle in the "
                f"warm session"
            )
        assert session.stats["queries"] == NUM_PLANS
