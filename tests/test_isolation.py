"""Cryptographic isolation tests for the per-party share-slice engine.

The properties asserted here are what make the distributed runtime's
secret sharing *real* rather than replicated theatre:

* a :class:`ShareSliceEngine` holds only its own parties' additive share
  slices — no other party's share material, and no other party's cleartext
  input, exists in the process;
* openings (``open``, Beaver openings, env-opens) reconstruct from the
  share frames *delivered by the transport*: tampering with one share frame
  in transit changes (or fails) the opened result, proving the wire bytes
  are load-bearing;
* the lockstep sliced engines stay byte-identical to the all-local
  simulation engine;
* the restricted unpickler rejects pickle frames naming globals outside the
  allowlist (``os.system`` must never run because a peer said so);
* a mesh reader's death poisons even frames that were already
  demultiplexed — a consumer never reads stale data off a dead link;
* across the differential corpus, every agent process's isolation audit
  shows it held only its own share slices and cleartext inputs.
"""

import pickle
import queue
import socket
import threading
import time

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.mpc.network import Network
from repro.mpc.secretshare import (
    AdditiveSharing,
    SecretSharingEngine,
    ShareSliceEngine,
)
from repro.runtime.mesh import KIND_MSG, PeerMesh
from repro.runtime.transport import SocketTransport, TransportError
from repro.runtime.wire import (
    FrameDecoder,
    WireError,
    encode_frame,
    restricted_loads,
    send_frame,
)

from test_differential import (
    NUM_PLANS,
    NUM_SOCKET_PLANS,
    PARTY_A,
    PARTY_B,
    SEED,
    build_query,
    generate_spec,
    oracle,
    run_spec,
)

PARTIES = [PARTY_A, PARTY_B]


# -- in-process mesh pair for two sliced engines ------------------------------------------


class _PipeMesh:
    """Minimal PeerMesh stand-in: two queues, optional frame tampering."""

    def __init__(self, party, peer, inbox, outbox, tamper=None):
        self.party = party
        self.peers = {peer}
        self._inbox = inbox
        self._outbox = outbox
        self._tamper = tamper

    def send_message(self, peer, message):
        if self._tamper is not None:
            message = self._tamper(message)
        self._outbox.put(message)

    def receive_message(self, peer):
        return self._inbox.get(timeout=30)

    def close(self):
        pass


def sliced_engine_pair(seed=7, tamper_from_b=None):
    """Two ShareSliceEngines (one slice each) joined by an in-process pipe."""
    a_to_b, b_to_a = queue.Queue(), queue.Queue()
    mesh_a = _PipeMesh(PARTY_A, PARTY_B, inbox=b_to_a, outbox=a_to_b)
    mesh_b = _PipeMesh(PARTY_B, PARTY_A, inbox=a_to_b, outbox=b_to_a, tamper=tamper_from_b)
    engines = []
    for party, mesh in ((PARTY_A, mesh_a), (PARTY_B, mesh_b)):
        network = Network(PARTIES, transport=SocketTransport(PARTIES, mesh))
        engines.append(
            ShareSliceEngine(PARTIES, seed=seed, network=network, local_parties=[party])
        )
    return engines


def run_lockstep(engines, fn):
    """Run ``fn(engine)`` concurrently on each engine (they block on each
    other's frames) and return the per-engine results; re-raises the first
    exception."""
    results = [None] * len(engines)
    errors = [None] * len(engines)

    def work(i, engine):
        try:
            results[i] = fn(engine)
        except BaseException as exc:  # noqa: BLE001 - reported to the test thread
            errors[i] = exc

    threads = [
        threading.Thread(target=work, args=(i, e), daemon=True)
        for i, e in enumerate(engines)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "lockstep protocol deadlocked"
    for exc in errors:
        if exc is not None:
            raise exc
    return results


def _demo_protocol(engine):
    """share -> add -> mul -> compare -> open, exercising every round kind."""
    if PARTY_A in engine.local_parties or engine.is_all_local:
        x = engine.input_vector(np.array([3, -1, 7, 0]), contributor=PARTY_A)
    else:
        x = engine.input_vector(None, contributor=PARTY_A, num_rows=4)
    if PARTY_B in engine.local_parties or engine.is_all_local:
        y = engine.input_vector(np.array([2, 5, -4, 9]), contributor=PARTY_B)
    else:
        y = engine.input_vector(None, contributor=PARTY_B, num_rows=4)
    z = engine.add(engine.mul(x, y), 10)
    flags = engine.less_than(x, y)
    z = engine.add(z, flags)
    return engine.open(z)


EXPECTED_DEMO = np.array([3 * 2 + 10, -5 + 10 + 1, -28 + 10, 0 + 10 + 1], dtype=np.int64)


class TestShareSliceEngine:
    def test_sliced_engines_match_the_all_local_simulation(self):
        engines = sliced_engine_pair(seed=7)
        opened = run_lockstep(engines, _demo_protocol)
        simulated = _demo_protocol(SecretSharingEngine(PARTIES, seed=7))
        np.testing.assert_array_equal(simulated, EXPECTED_DEMO)
        for got in opened:
            np.testing.assert_array_equal(got, simulated)
        # Identical communication accounting on every engine.
        sim_engine = SecretSharingEngine(PARTIES, seed=7)
        _demo_protocol(sim_engine)
        for engine in engines:
            assert vars(engine.network.stats) == vars(sim_engine.network.stats)

    def test_each_engine_holds_only_its_own_slice(self):
        engines = sliced_engine_pair(seed=7)

        def protocol(engine):
            vec = _share_both(engine)
            return vec

        vecs = run_lockstep(engines, protocol)
        for engine, vec in zip(engines, vecs):
            assert engine.held_share_parties == (next(iter(engine.local_parties)),)
            assert engine.num_local_shares == 1
            assert len(vec.shares) == 1
        # One slice alone reveals nothing: it differs from the cleartext,
        # while both slices together reconstruct it.
        cleartext = np.array([3, -1, 7, 0], dtype=np.int64)
        both = [vecs[0].shares[0], vecs[1].shares[0]]
        np.testing.assert_array_equal(AdditiveSharing.reconstruct(both), cleartext)
        assert not np.array_equal(np.asarray(vecs[0].shares[0], dtype=np.int64), cleartext)

    def test_reveal_to_returns_values_only_at_the_target(self):
        engines = sliced_engine_pair(seed=11)

        def protocol(engine):
            vec = _share_both(engine)
            return engine.reveal_to(vec, PARTY_B)

        got_a, got_b = run_lockstep(engines, protocol)
        assert got_a is None
        np.testing.assert_array_equal(got_b, np.array([3, -1, 7, 0]))

    def test_observer_engine_holds_nothing_and_refuses_primitives(self):
        engine = ShareSliceEngine(PARTIES, seed=3, local_parties=[])
        assert engine.held_share_parties == ()
        with pytest.raises(RuntimeError, match="holds no share slices"):
            engine.input_vector(np.array([1, 2]), contributor=PARTY_A)

    def test_tampered_share_frame_corrupts_or_fails_the_opening(self):
        """The acceptance property: flipping one share frame in transit must
        change (or fail) the opened result — the wire bytes are load-bearing."""

        def tamper(message):
            sender, receiver, payload, size = message
            tag, body = payload
            if tag == "open-share" and isinstance(body, np.ndarray) and body.size:
                body = body.copy()
                body[0] += np.uint64(1)
                return (sender, receiver, (tag, body), size)
            return message

        engines = sliced_engine_pair(seed=7, tamper_from_b=tamper)
        try:
            opened = run_lockstep(engines, _demo_protocol)
        except (TransportError, RuntimeError):
            return  # failing loudly satisfies the property too
        got_a, got_b = opened
        # Party A reconstructed from B's tampered frame: off by exactly the
        # perturbation.  Party B used A's clean frame plus its own slice.
        assert got_a[0] == EXPECTED_DEMO[0] + 1
        np.testing.assert_array_equal(got_b, EXPECTED_DEMO)


def _share_both(engine):
    if PARTY_A in engine.local_parties or engine.is_all_local:
        return engine.input_vector(np.array([3, -1, 7, 0]), contributor=PARTY_A)
    return engine.input_vector(None, contributor=PARTY_A, num_rows=4)


# -- restricted unpickler ------------------------------------------------------------------


class _EvilSystem:
    def __reduce__(self):
        import os

        return (os.system, ("echo pwned > /tmp/pwned",))


class _EvilEval:
    def __reduce__(self):
        return (eval, ("1+1",))


class TestRestrictedUnpickler:
    @pytest.mark.parametrize("evil", [_EvilSystem, _EvilEval])
    def test_malicious_frames_are_rejected(self, evil):
        data = pickle.dumps(evil(), protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.raises(WireError, match="forbidden global"):
            restricted_loads(data)

    def test_malicious_frame_rejected_by_decoder(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="forbidden global"):
            decoder.feed(encode_frame(_EvilSystem()))

    def test_legitimate_frames_round_trip(self):
        from repro.data.schema import ColumnDef, Schema
        from repro.data.table import Table

        table = Table(Schema([ColumnDef("k"), ColumnDef("v")]),
                      [np.arange(4), np.arange(4) * 2])
        payloads = [
            (3, KIND_MSG, 0, (PARTY_A, PARTY_B, ("open-share", np.arange(5, dtype=np.uint64)), 40)),
            ("result", {"outputs": {"out": table}, "durations": {1: 0.5}}),
            ("error", ValueError("boom")),
            np.datetime64("2026-08-08"),
        ]
        decoder = FrameDecoder()
        for payload in payloads:
            (got,) = decoder.feed(encode_frame(payload))
            if isinstance(payload, tuple) and payload[0] == "error":
                assert isinstance(got[1], ValueError) and got[1].args == ("boom",)

    def test_exception_subclasses_are_allowed_other_globals_are_not(self):
        assert isinstance(
            restricted_loads(pickle.dumps(TimeoutError("t"))), TimeoutError
        )
        with pytest.raises(WireError, match="forbidden global"):
            restricted_loads(pickle.dumps(threading.Thread))


# -- mesh poisoning of already-demultiplexed frames ----------------------------------------


class TestMeshPoisonCoversBufferedFrames:
    def test_buffered_frames_do_not_outlive_reader_death(self):
        """Frames demultiplexed *before* the link died must not be served to
        a consumer afterwards: the first receive reports the dead link."""
        ours, theirs = socket.socketpair()
        mesh = PeerMesh(PARTY_A, {PARTY_B: ours}, timeout=2.0)
        try:
            send_frame(theirs, (1, KIND_MSG, 0, "stale-frame-1"))
            send_frame(theirs, (2, KIND_MSG, 0, "stale-frame-2"))
            deadline = time.monotonic() + 5
            key = (KIND_MSG, 0, PARTY_B)
            while time.monotonic() < deadline:
                q = mesh._queues.get(key)
                if q is not None and q.qsize() >= 2:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("frames were never demultiplexed")
            theirs.close()  # reader dies with a WireError
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and PARTY_B not in mesh._peer_errors:
                time.sleep(0.01)
            assert PARTY_B in mesh._peer_errors, "reader death was never detected"
            with pytest.raises(TransportError, match="closed"):
                mesh.receive_message(PARTY_B)
            # ...and stays poisoned for later receives too.
            with pytest.raises(TransportError, match="closed"):
                mesh.receive_message(PARTY_B)
        finally:
            theirs.close()
            mesh.close()


# -- executor-matrix byte-identity ---------------------------------------------------------


@pytest.mark.parametrize("plan", range(NUM_SOCKET_PLANS))
def test_columnar_executor_over_sockets_stays_byte_identical(plan):
    """The slice engine must keep the full runtime x executor matrix
    byte-identical: columnar over real per-party processes vs. the row
    engine in the simulation."""
    spec = generate_spec(SEED + plan)
    _, sim_row = run_spec(spec, "python", "sharemind", seed=3, executor="row")
    _, sock_col = run_spec(
        spec, "python", "sharemind", runtime="sockets", seed=3, executor="columnar"
    )
    assert sim_row.outputs["out"] == sock_col.outputs["out"]
    assert sim_row.mpc_profile == sock_col.mpc_profile
    assert sorted(sock_col.outputs["out"].rows()) == oracle(spec)


# -- corpus-wide isolation audit -----------------------------------------------------------


def test_corpus_agents_never_hold_foreign_secrets():
    """Across the 50-plan differential corpus, every agent process's
    isolation audit must show it materialised only its own party's share
    slices and only its own cleartext inputs."""
    config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
    with cc.QuerySession(PARTIES, config=config, seed=3) as session:
        for plan in range(NUM_PLANS):
            spec = generate_spec(SEED + plan)
            ctx, inputs = build_query(spec)
            compiled = cc.compile_query(ctx, config)
            result = session.submit(compiled, inputs=inputs)
            assert sorted(result.outputs["out"].rows()) == oracle(spec)
            assert set(result.isolation) == set(PARTIES), (
                f"plan {plan}: expected an isolation audit from every agent"
            )
            for party, audit in result.isolation.items():
                assert audit["local_parties"] == [party], (
                    f"plan {plan}: agent {party} executed for {audit['local_parties']}"
                )
                assert set(audit["share_parties"]) <= {party}, (
                    f"plan {plan}: agent {party} materialised share slices of "
                    f"{audit['share_parties']}"
                )
                assert set(audit["cleartext_input_parties"]) <= {party}, (
                    f"plan {plan}: agent {party} held cleartext inputs of "
                    f"{audit['cleartext_input_parties']}"
                )
