"""Mutual-TLS transport: happy path, fail-closed negatives, and differential.

A session configured with a :class:`~repro.core.config.TransportSecurity`
speaks mutually-authenticated TLS on every control, mesh and rejoin socket.
These tests pin down the three properties that make that deployable:

* **identity** — wrong CA, expired certificates, and a party presenting
  another party's (valid!) certificate all fail *closed* with a structured
  error, never a hang, on both the initial handshake and the crash-rejoin
  path;
* **transparency** — query results over TLS are byte-identical to the
  plaintext and simulated runtimes, including the MPC work/traffic profile,
  with the legacy pickle fallback disabled (codec-only frames);
* **recoverability** — supervised crash recovery (kill, restart, mesh
  rejoin) works unchanged through secured sockets.

The differential anchor replays the full 50-plan corpus from
:mod:`tests.test_differential` through one warm TLS session with
``REPRO_WIRE_PICKLE=0``.
"""

import shutil
import socket
import ssl
import threading
import time

import pytest

import repro as cc
from repro.core.config import (
    CompilationConfig,
    RestartPolicy,
    RetryPolicy,
    TransportSecurity,
)
from repro.core.dispatch import QueryRunner
from repro.runtime import mesh
from repro.runtime.service import AgentFailure
from repro.runtime.transport import TransportError
from repro.runtime.wire import SecureSocket, WireError, recv_frame, send_frame

from test_query_service import PARTY_A, PARTY_B, two_party_query

NONCE = "f" * 32


@pytest.fixture(scope="module")
def security(tmp_path_factory):
    """One throwaway CA + per-identity credentials shared by the module."""
    return TransportSecurity.dev(
        [PARTY_A, PARTY_B], tmp_path_factory.mktemp("tls-certs")
    )


def assert_tls_everywhere(session):
    """Every control link the pool holds must be a real TLS socket."""
    conns = session._pool._connections
    assert conns, "session has no agent connections"
    for party, sock in conns.items():
        assert isinstance(sock, SecureSocket), f"control link to {party} is plaintext"


# -- credential generation --------------------------------------------------------------------


class TestDevBundle:
    def test_dev_generates_ca_and_per_identity_credentials(self, tmp_path):
        sec = TransportSecurity.dev([PARTY_A, PARTY_B], tmp_path / "certs")
        assert (tmp_path / "certs" / "ca.crt").is_file()
        for name in (PARTY_A, PARTY_B, "coordinator"):
            cert, key = sec.credentials(name)
            assert cert.is_file() and key.is_file()
        sec.validate([PARTY_A, PARTY_B, sec.coordinator_name])
        with pytest.raises(ValueError, match="missing"):
            sec.validate(["never-issued.example"])

    def test_contexts_require_and_verify_peers(self, security):
        server = security.server_context(PARTY_A)
        client = security.client_context(PARTY_B)
        for context in (server, client):
            assert context.verify_mode is ssl.CERT_REQUIRED
            assert context.minimum_version >= ssl.TLSVersion.TLSv1_2
            assert context.options & ssl.OP_NO_RENEGOTIATION

    @pytest.mark.skipif(shutil.which("openssl") is None, reason="no openssl CLI")
    def test_openssl_fallback_generates_usable_credentials(self, tmp_path):
        sec = TransportSecurity(ca_cert=tmp_path / "ca.crt", cert_dir=tmp_path)
        sec._dev_openssl([PARTY_A, PARTY_B, "coordinator"], valid_days=2)
        sec.validate([PARTY_A, PARTY_B, "coordinator"])
        # The CLI-minted material must load into a real context.
        sec.server_context(PARTY_A)
        sec.client_context(PARTY_B)


# -- happy path -------------------------------------------------------------------------------


class TestTlsSession:
    def test_tls_session_byte_identical_to_simulated(self, security):
        ctx, inputs = two_party_query()
        config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
        compiled = cc.compile_query(ctx, config)
        simulated = QueryRunner([PARTY_A, PARTY_B], inputs, config, seed=3).run(compiled)
        with cc.QuerySession(
            [PARTY_A, PARTY_B], config=config, seed=3, security=security
        ) as session:
            assert_tls_everywhere(session)
            secured = session.submit(compiled, inputs=inputs)
        assert secured.outputs["out"] == simulated.outputs["out"]
        assert secured.mpc_profile == simulated.mpc_profile

    def test_tls_session_with_pickle_fallback_disabled(self, security, monkeypatch):
        """Codec-only frames over TLS: the deployment posture for real hosts.

        The environment switch is inherited by the forked agent processes,
        so *every* endpoint refuses pickle frames, not just the coordinator.
        """
        monkeypatch.setenv("REPRO_WIRE_PICKLE", "0")
        ctx, inputs = two_party_query(agg_extra=True)
        config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
        compiled = cc.compile_query(ctx, config)
        simulated = QueryRunner([PARTY_A, PARTY_B], inputs, config, seed=5).run(compiled)
        with cc.open_session(
            inputs, config=config, seed=5, security=security
        ) as session:
            assert_tls_everywhere(session)
            secured = session.submit(compiled)
        assert secured.outputs["out"] == simulated.outputs["out"]
        assert secured.mpc_profile == simulated.mpc_profile


# -- fail-closed negatives --------------------------------------------------------------------


class TestTlsFailClosed:
    TIMEOUT = 20.0

    def _expect_structured_failure(self, security, match):
        _ctx, inputs = two_party_query()
        started = time.monotonic()
        with pytest.raises(AgentFailure, match=match):
            cc.open_session(inputs, timeout=self.TIMEOUT, security=security)
        # Fail closed means fail *promptly* — a structured error, not a
        # timeout-shaped hang.
        assert time.monotonic() - started < self.TIMEOUT

    def test_wrong_ca_fails_closed(self, security, tmp_path):
        """Valid certificates from a *different* CA are refused outright."""
        other = TransportSecurity.dev([PARTY_A, PARTY_B], tmp_path / "other-ca")
        mixed = TransportSecurity(
            ca_cert=other.ca_cert,  # verify against the wrong CA
            cert_dir=security.cert_dir,  # ...while presenting this session's certs
            coordinator_name=security.coordinator_name,
        )
        self._expect_structured_failure(mixed, match="handshake")

    def test_expired_certificate_fails_closed(self, tmp_path):
        pytest.importorskip("cryptography")
        sec = TransportSecurity.dev([PARTY_A, PARTY_B], tmp_path / "certs")
        sec.issue(PARTY_A, valid_days=-1)  # already expired
        self._expect_structured_failure(sec, match="handshake")

    def test_party_presenting_anothers_certificate_fails_closed(self, security):
        """A *valid* certificate for the wrong identity is impersonation:
        the hello's party id must match the TLS-authenticated CN."""
        beta_cert, beta_key = security.credentials(PARTY_B)
        stolen = TransportSecurity(
            ca_cert=security.ca_cert,
            cert_dir=security.cert_dir,
            certs={PARTY_A: beta_cert},
            keys={PARTY_A: beta_key},
            coordinator_name=security.coordinator_name,
        )
        self._expect_structured_failure(stolen, match="certificate authenticates")


class TestRejoinHelloAuthentication:
    """The crash-recovery accept path applies the same identity checks."""

    EPOCH = 3

    def _run_accept(self, security, nonce, dialler):
        """Park a survivor in accept_rejoin for PARTY_B's epoch-tagged dial,
        run ``dialler(endpoint)`` as the would-be replacement, and return the
        exception (or socket) the accept produced."""
        listener = mesh.bind_listener(timeout=10.0)
        endpoint = listener.getsockname()
        outcome = {}

        def accept():
            try:
                outcome["sock"] = mesh.accept_rejoin(
                    listener, PARTY_A, PARTY_B, self.EPOCH, timeout=8.0,
                    security=security, nonce=nonce,
                )
            except BaseException as exc:  # noqa: BLE001 - relayed to the test
                outcome["error"] = exc

        thread = threading.Thread(target=accept, daemon=True)
        thread.start()
        try:
            dialler(endpoint)
        finally:
            thread.join(timeout=15.0)
            listener.close()
        assert not thread.is_alive(), "accept_rejoin hung instead of failing closed"
        return outcome

    def _dial(self, endpoint, context, server_hostname, hello):
        raw = socket.create_connection(endpoint, timeout=8.0)
        try:
            sock = context.wrap_socket(raw, server_hostname=server_hostname)
        except (OSError, ssl.SSLError):
            raw.close()
            raise
        try:
            send_frame(sock, hello)
            # Hold the link open until the acceptor has judged the hello.
            sock.settimeout(8.0)
            try:
                recv_frame(sock)
            except (WireError, OSError):
                pass
        finally:
            sock.close()

    def test_rejoin_hello_with_wrong_nonce_is_rejected(self, security):
        """Right peer, right epoch, right certificate — wrong session nonce.
        This is a replayed hello from an earlier session: impersonation."""
        context = security.client_context(PARTY_B)

        def dialler(endpoint):
            try:
                self._dial(endpoint, context, PARTY_A,
                           ("rejoin-hello", PARTY_B, self.EPOCH, "0" * 32))
            except (OSError, ssl.SSLError):
                pass

        outcome = self._run_accept(security, NONCE, dialler)
        assert isinstance(outcome.get("error"), TransportError)
        assert "nonce" in str(outcome["error"])

    def test_rejoin_hello_with_stolen_identity_is_rejected(self, security):
        """A dialler with PARTY_A's valid certificate claiming to be the
        crashed PARTY_B must be refused: CN and claimed party disagree."""
        context = security.client_context(PARTY_A)  # wrong identity's cert

        def dialler(endpoint):
            try:
                self._dial(endpoint, context, PARTY_A,
                           ("rejoin-hello", PARTY_B, self.EPOCH, NONCE))
            except (OSError, ssl.SSLError):
                pass

        outcome = self._run_accept(security, NONCE, dialler)
        assert isinstance(outcome.get("error"), TransportError)
        assert "certificate" in str(outcome["error"])

    def test_unauthenticated_dialler_cannot_complete_the_handshake(self, security):
        """A plaintext (or otherwise CA-less) client can't even get a frame
        through: the accept drains the failed handshake and keeps waiting
        for the real replacement, then times out cleanly."""

        def dialler(endpoint):
            raw = socket.create_connection(endpoint, timeout=5.0)
            try:
                raw.sendall(b"\x00\x00\x00\x04junk")
                time.sleep(0.2)
            finally:
                raw.close()

        outcome = self._run_accept(security, NONCE, dialler)
        error = outcome.get("error")
        assert isinstance(error, (TransportError, TimeoutError, OSError))
        assert "sock" not in outcome


# -- crash recovery over TLS ------------------------------------------------------------------


class TestTlsRecovery:
    def test_kill_and_rejoin_through_secured_sockets(self, security, monkeypatch):
        """A supervised kill + restart + mesh rejoin, all over mutual TLS
        with the pickle fallback disabled, must converge to byte-identical
        results — the full recovery protocol runs on secured links."""
        from repro.runtime.faults import FaultPlan, KillFault

        monkeypatch.setenv("REPRO_WIRE_PICKLE", "0")
        ctx, inputs = two_party_query()
        config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
        compiled = cc.compile_query(ctx, config)
        simulated = QueryRunner([PARTY_A, PARTY_B], inputs, config, seed=3).run(compiled)
        faults = FaultPlan(kills=(KillFault(PARTY_B, at_query=2),))
        restart = RestartPolicy(
            backoff_seconds=0.05, max_backoff_seconds=0.5,
            heartbeat_interval_seconds=None,
        )
        retry = RetryPolicy(max_attempts=4, backoff_seconds=0.05)
        with cc.QuerySession(
            [PARTY_A, PARTY_B], config=config, seed=3, security=security,
            faults=faults, restart=restart, retry=retry, timeout=60.0,
        ) as session:
            for _ in range(3):  # query 2 dies mid-stream and is retried
                result = session.submit(compiled, inputs=inputs, timeout=120)
                assert result.outputs["out"] == simulated.outputs["out"]
                assert result.mpc_profile == simulated.mpc_profile
            stats = session.stats
        assert stats["restarts"] >= 1, "the injected kill never fired"
        assert stats["retries_exhausted"] == 0


# -- differential anchor ----------------------------------------------------------------------


def test_fifty_plans_byte_identical_over_tls_without_pickle(tmp_path, monkeypatch):
    """The full 50-plan differential corpus through ONE warm TLS session
    with ``REPRO_WIRE_PICKLE=0``: every output table (including row order)
    and every MPC work/traffic profile must be byte-identical to the
    in-process simulated runtime.  This is the acceptance bar for the
    codec + TLS transport: securing the links changes *nothing* about
    query semantics or MPC accounting."""
    from test_differential import NUM_PLANS, SEED, build_query, generate_spec
    from test_differential import PARTY_A as DIFF_A, PARTY_B as DIFF_B

    monkeypatch.setenv("REPRO_WIRE_PICKLE", "0")
    certs = TransportSecurity.dev([DIFF_A, DIFF_B], tmp_path / "diff-certs")
    config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
    with cc.QuerySession(
        [DIFF_A, DIFF_B], config=config, seed=3, security=certs
    ) as session:
        assert_tls_everywhere(session)
        for plan in range(NUM_PLANS):
            spec = generate_spec(SEED + plan)
            ctx, inputs = build_query(spec)
            compiled = cc.compile_query(ctx, config)
            simulated = QueryRunner([DIFF_A, DIFF_B], inputs, config, seed=3).run(compiled)
            secured = session.submit(compiled, inputs=inputs)
            assert secured.outputs["out"] == simulated.outputs["out"], (
                f"plan {plan} (seed {spec['seed']}): TLS run is not byte-identical "
                f"to the simulated runtime"
            )
            assert secured.mpc_profile == simulated.mpc_profile, (
                f"plan {plan} (seed {spec['seed']}): MPC work/traffic profile "
                f"changed over TLS"
            )
        assert session.stats["queries"] == NUM_PLANS
