"""Tests for the MPC backend facades (Sharemind-style and Obliv-C-style)."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.mpc.garbled import CircuitMemoryError, OblivCBackend
from repro.mpc.runtime import GarbledCostModel, SharemindCostModel
from repro.mpc.sharemind import SharemindBackend
from repro.workloads.generators import uniform_key_value_table
from tests.conftest import PARTIES


class TestSharemindBackend:
    def setup_method(self):
        self.backend = SharemindBackend(PARTIES, seed=3)
        self.table = uniform_key_value_table(12, 4, seed=1)
        self.other = uniform_key_value_table(8, 4, seed=2)

    def test_party_count_limits(self):
        with pytest.raises(ValueError):
            SharemindBackend(["only-one"])
        with pytest.raises(ValueError):
            SharemindBackend(["a", "b", "c", "d"])
        assert SharemindBackend(["a", "b"]).engine.num_parties == 2

    def test_ingest_reveal_roundtrip(self):
        handle = self.backend.ingest(self.table, contributor=PARTIES[0])
        assert self.backend.reveal(handle) == self.table

    def test_operator_results_match_cleartext(self):
        h = self.backend.ingest(self.table)
        o = self.backend.ingest(self.other)
        assert self.backend.project(h, ["value"]).reveal() == self.table.project(["value"])
        assert self.backend.filter(h, "value", ">", 500).reveal().equals_unordered(
            self.table.filter("value", ">", 500)
        )
        assert self.backend.join(h, o, "key", "key").reveal().equals_unordered(
            self.table.join(self.other, ["key"], ["key"])
        )
        assert self.backend.aggregate(h, "key", "value", "sum", "t").reveal().equals_unordered(
            self.table.aggregate(["key"], "value", "sum", "t")
        )
        assert self.backend.concat([h, o]).reveal().equals_unordered(
            self.table.concat(self.other)
        )
        assert self.backend.sort_by(h, "value").reveal() == self.table.sort_by(["value"])
        assert self.backend.limit(h, 3).num_rows == 3
        assert sorted(
            self.backend.distinct(h, ["key"]).reveal().column("key").tolist()
        ) == sorted(self.table.distinct(["key"]).column("key").tolist())

    def test_multiply_and_divide(self):
        h = self.backend.ingest(self.table)
        doubled = self.backend.multiply(h, "d", "value", 2)
        assert doubled.reveal().column("d").tolist() == (self.table.column("value") * 2).tolist()
        ratio = self.backend.divide(h, "r", "value", "key")
        expected = self.table.arithmetic("r", "value", "/", "key").column("r")
        assert np.allclose(ratio.reveal().column("r"), expected, atol=1e-4)

    def test_enumerate_rows(self):
        h = self.backend.ingest(self.table)
        enumerated = self.backend.enumerate_rows(h, "rid")
        assert enumerated.reveal().column("rid").tolist() == list(range(self.table.num_rows))

    def test_shuffle_preserves_rows(self):
        h = self.backend.ingest(self.table)
        assert self.backend.shuffle(h).reveal().equals_unordered(self.table)

    def test_elapsed_seconds_grows_with_work(self):
        baseline = self.backend.elapsed_seconds()
        h = self.backend.ingest(self.table)
        o = self.backend.ingest(self.other)
        after_ingest = self.backend.elapsed_seconds()
        self.backend.join(h, o, "key", "key")
        after_join = self.backend.elapsed_seconds()
        assert baseline < after_ingest < after_join

    def test_reset_meter(self):
        self.backend.ingest(self.table)
        self.backend.reset_meter()
        assert self.backend.meter.input_records == 0

    def test_ingest_shared_rejects_foreign_engine(self):
        other_backend = SharemindBackend(["x", "y"], seed=0)
        handle = other_backend.ingest(self.table)
        with pytest.raises(ValueError):
            self.backend.ingest_shared(handle)

    def test_cost_model_fields_drive_time(self):
        fast = SharemindBackend(PARTIES, cost_model=SharemindCostModel(per_comparison_seconds=1e-9))
        slow = SharemindBackend(PARTIES, cost_model=SharemindCostModel(per_comparison_seconds=1e-2))
        for backend in (fast, slow):
            h = backend.ingest(self.table)
            o = backend.ingest(self.other)
            backend.join(h, o, "key", "key")
        assert slow.elapsed_seconds() > fast.elapsed_seconds()


class TestOblivCBackend:
    def setup_method(self):
        self.backend = OblivCBackend(["p1", "p2"])
        self.table = uniform_key_value_table(10, 3, seed=4)
        self.other = uniform_key_value_table(6, 3, seed=5)

    def test_two_parties_required(self):
        with pytest.raises(ValueError):
            OblivCBackend(["a"])
        with pytest.raises(ValueError):
            OblivCBackend(["a", "b", "c"])

    def test_results_match_cleartext(self):
        h = self.backend.ingest(self.table)
        o = self.backend.ingest(self.other)
        assert self.backend.reveal(self.backend.project(h, ["key"])) == self.table.project(["key"])
        assert self.backend.reveal(self.backend.join(h, o, "key", "key")).equals_unordered(
            self.table.join(self.other, ["key"], ["key"])
        )
        assert self.backend.reveal(
            self.backend.aggregate(h, "key", "value", "sum", "t")
        ).equals_unordered(self.table.aggregate(["key"], "value", "sum", "t"))
        assert self.backend.reveal(self.backend.filter(h, "value", ">", 500)).equals_unordered(
            self.table.filter("value", ">", 500)
        )
        assert self.backend.reveal(self.backend.limit(h, 2)).num_rows == 2

    def test_gate_and_input_accounting(self):
        h = self.backend.ingest(self.table)
        assert self.backend.total_input_bits == self.table.num_rows * 2 * 64
        before = self.backend.total_gates
        o = self.backend.ingest(self.other)
        self.backend.join(h, o, "key", "key")
        assert self.backend.total_gates > before

    def test_elapsed_seconds_scale_with_gates(self):
        h = self.backend.ingest(self.table)
        t0 = self.backend.elapsed_seconds()
        self.backend.multiply(h, "m", "value", 3)
        assert self.backend.elapsed_seconds() > t0

    def test_join_exhausts_memory_on_large_inputs(self):
        # Large enough to ingest both relations, too small for the quadratic
        # join state — mirroring the Figure 1b Obliv-C OOM behaviour.
        limit = GarbledCostModel(memory_limit_bytes=80 * 1024 * 1024)
        backend = OblivCBackend(["p1", "p2"], cost_model=limit)
        big = uniform_key_value_table(2000, 10, seed=6)
        left = backend.ingest(big)
        right = backend.ingest(big)
        with pytest.raises(CircuitMemoryError) as err:
            backend.join(left, right, "key", "key")
        assert err.value.operator == "join"
        assert err.value.required_bytes > limit.memory_limit_bytes

    def test_project_memory_grows_with_input(self):
        backend = OblivCBackend(["p1", "p2"])
        h = backend.ingest(uniform_key_value_table(100, 3, seed=7))
        backend.project(h, ["key"])
        small_peak = backend.peak_memory_bytes
        backend2 = OblivCBackend(["p1", "p2"])
        h2 = backend2.ingest(uniform_key_value_table(1000, 3, seed=7))
        backend2.project(h2, ["key"])
        assert backend2.peak_memory_bytes > small_peak

    def test_reset_meter(self):
        self.backend.ingest(self.table)
        self.backend.reset_meter()
        assert self.backend.total_gates == 0
        assert self.backend.total_input_bits == 0


class TestCostModels:
    def test_sharemind_cost_model_components(self):
        model = SharemindCostModel()
        from repro.mpc.runtime import CostMeter

        meter = CostMeter(comparisons=1000)
        base = model.seconds(CostMeter())
        assert model.seconds(meter) == pytest.approx(base + 1000 * model.per_comparison_seconds)

    def test_garbled_cost_model_memory(self):
        model = GarbledCostModel()
        assert model.memory_bytes(live_wires=10, buffered_gates=5) == 10 * 16 + 5 * 32

    def test_simulated_clock(self):
        from repro.mpc.runtime import SimulatedClock

        clock = SimulatedClock()
        clock.advance(2.0)
        clock.advance_parallel([1.0, 5.0, 3.0])
        assert clock.elapsed_seconds == pytest.approx(7.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        clock.reset()
        assert clock.elapsed_seconds == 0.0
