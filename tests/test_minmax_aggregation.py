"""Tests for grouped MIN/MAX aggregations under MPC and through the compiler."""

import pytest

import repro as cc
from repro.mpc import protocols
from repro.mpc.protocols import SharedTable
from repro.mpc.secretshare import SecretSharingEngine
from repro.workloads.generators import uniform_key_value_table
from tests.conftest import PARTIES

PA, PB = cc.Party("a.example"), cc.Party("b.example")
KV = [cc.Column("k"), cc.Column("v")]


class TestObliviousMinMax:
    @pytest.mark.parametrize("func", ["min", "max"])
    def test_grouped_min_max_matches_cleartext(self, func):
        table = uniform_key_value_table(25, 5, seed=61)
        engine = SecretSharingEngine(PARTIES, seed=3)
        shared = SharedTable.from_table(engine, table)
        result = protocols.mpc_aggregate(shared, "key", "value", func, "m")
        expected = table.aggregate(["key"], "value", func, "m")
        assert result.reveal().equals_unordered(expected)

    def test_single_group(self):
        table = uniform_key_value_table(10, 1, seed=62)
        engine = SecretSharingEngine(PARTIES, seed=3)
        shared = SharedTable.from_table(engine, table)
        result = protocols.mpc_aggregate(shared, "key", "value", "max", "m")
        assert result.reveal().rows() == table.aggregate(["key"], "value", "max", "m").rows()

    def test_unsupported_grouped_function_still_rejected(self):
        table = uniform_key_value_table(5, 2, seed=63)
        engine = SecretSharingEngine(PARTIES, seed=3)
        shared = SharedTable.from_table(engine, table)
        with pytest.raises(ValueError):
            protocols.mpc_aggregate(shared, "key", "value", "median", "m")


class TestCompiledMinMaxQueries:
    def build_query(self, func):
        with cc.QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("m", func, group=["k"], over="v")
            agg.collect("out", to=[PA])
        return ctx

    @pytest.mark.parametrize("func", [cc.MIN, cc.MAX])
    @pytest.mark.parametrize("push_down", [True, False])
    def test_end_to_end_min_max(self, func, push_down):
        t1 = uniform_key_value_table(20, 4, key_column="k", value_column="v", seed=64)
        t2 = uniform_key_value_table(15, 4, key_column="k", value_column="v", seed=65)
        inputs = {PA.name: {"t1": t1}, PB.name: {"t2": t2}}
        config = cc.CompilationConfig(enable_push_down=push_down)
        result = cc.run_query(self.build_query(func), inputs, config)
        expected = t1.concat(t2).aggregate(["k"], "v", func, "m")
        assert result.outputs["out"].equals_unordered(expected)

    def test_min_aggregation_split_keeps_min_merge(self):
        compiled = cc.compile_query(self.build_query(cc.MIN))
        secondary = [
            n
            for n in compiled.dag.topological()
            if n.op_name == "aggregate" and getattr(n, "is_secondary", False)
        ]
        assert secondary and secondary[0].func == "min"

    def test_min_max_never_rewritten_to_hybrid(self):
        schema = [cc.Column("k", trust=[cc.Party("stp.example")]), cc.Column("v")]
        with cc.QueryContext() as ctx:
            t1 = ctx.new_table("t1", schema, at=PA)
            t2 = ctx.new_table("t2", schema, at=PB)
            joined = t1.join(t2, left=["k"], right=["k"])
            agg = joined.aggregate("m", cc.MAX, group=["k"], over="v")
            agg.collect("out", to=[PA])
        compiled = cc.compile_query(ctx)
        from repro.core.operators import HybridAggregate

        assert not any(isinstance(n, HybridAggregate) for n in compiled.dag.topological())
