"""Tests for the plan cost estimator used by the benchmark harness."""

import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.estimator import EstimatedOOM, EstimatorParams, PlanEstimator
from repro.core.lang import QueryContext
from repro.queries import credit_card_regulation_query, market_concentration_query

PA, PB, PC = cc.Party("a.example"), cc.Party("b.example"), cc.Party("c.example")
KV = [cc.Column("k"), cc.Column("v")]


def single_operator_query(op: str, rows: int, parties=(PA, PB, PC), **kwargs):
    """Build a Figure-1-style microbenchmark query: concat + one operator."""
    with QueryContext() as ctx:
        tables = [
            ctx.new_table(f"t{i}", KV, at=p, estimated_rows=rows // len(parties))
            for i, p in enumerate(parties)
        ]
        combined = ctx.concat(tables)
        if op == "sum":
            out = combined.aggregate("total", cc.SUM, over="v")
        elif op == "project":
            out = combined.project(["k"])
        elif op == "join":
            extra = ctx.new_table(
                "tj", KV, at=parties[0], estimated_rows=rows // len(parties)
            )
            out = combined.join(extra, left=["k"], right=["k"])
        else:
            raise ValueError(op)
        out.collect("out", to=[parties[0]])
    return ctx


def mpc_only_config(**kwargs):
    return CompilationConfig(
        enable_push_down=False,
        enable_push_up=False,
        enable_hybrid_operators=False,
        **kwargs,
    )


class TestScalingBehaviour:
    def test_runtime_grows_with_input_size(self):
        estimator = PlanEstimator()
        small = estimator.estimate(
            cc.compile_query(single_operator_query("sum", 1_000), mpc_only_config())
        )
        large = estimator.estimate(
            cc.compile_query(single_operator_query("sum", 1_000_000), mpc_only_config())
        )
        assert large.simulated_seconds > small.simulated_seconds * 10

    def test_mpc_join_scales_quadratically(self):
        estimator = PlanEstimator()
        t1 = estimator.estimate(
            cc.compile_query(single_operator_query("join", 3_000), mpc_only_config())
        ).simulated_seconds
        t2 = estimator.estimate(
            cc.compile_query(single_operator_query("join", 30_000), mpc_only_config())
        ).simulated_seconds
        assert t2 / t1 > 30  # super-linear growth

    def test_cleartext_spark_is_orders_of_magnitude_faster_than_mpc(self):
        """The Figure 1 headline: Spark handles 10M records in seconds while
        MPC cannot."""
        estimator = PlanEstimator()
        mpc = estimator.estimate(
            cc.compile_query(single_operator_query("sum", 10_000_000), mpc_only_config())
        )
        # Single-owner query: everything stays local.
        with QueryContext() as ctx:
            t = ctx.new_table("t", KV, at=PA, estimated_rows=10_000_000)
            t.aggregate("total", cc.SUM, over="v").collect("out", to=[PA])
        clear = estimator.estimate(
            cc.compile_query(ctx, CompilationConfig(cleartext_backend="spark"))
        )
        assert clear.simulated_seconds < 60
        assert mpc.simulated_seconds > 10 * clear.simulated_seconds

    def test_timeout_flag(self):
        estimator = PlanEstimator(EstimatorParams(timeout_seconds=1.0))
        result = estimator.estimate(
            cc.compile_query(single_operator_query("join", 100_000), mpc_only_config())
        )
        assert result.timed_out


class TestOblivCOOM:
    def test_garbled_join_estimate_raises_oom_at_paper_scale(self):
        config = mpc_only_config(mpc_backend="obliv-c")
        compiled = cc.compile_query(
            single_operator_query("join", 30_000, parties=(PA, PB)), config
        )
        with pytest.raises(EstimatedOOM):
            PlanEstimator().estimate(compiled)

    def test_garbled_project_survives_small_inputs_but_ooms_large(self):
        config = mpc_only_config(mpc_backend="obliv-c")
        small = cc.compile_query(
            single_operator_query("project", 10_000, parties=(PA, PB)), config
        )
        PlanEstimator().estimate(small)  # should not raise
        large = cc.compile_query(
            single_operator_query("project", 600_000, parties=(PA, PB)), config
        )
        with pytest.raises(EstimatedOOM):
            PlanEstimator().estimate(large)


class TestOptimizationEffects:
    def test_pushdown_reduces_mpc_time_for_market_query(self):
        rows = 1_000_000
        optimized = cc.compile_query(
            market_concentration_query(rows_per_party=rows).context
        )
        baseline = cc.compile_query(
            market_concentration_query(rows_per_party=rows).context,
            CompilationConfig(enable_push_down=False),
        )
        params = EstimatorParams(filter_selectivity=0.98, distinct_fraction=3 / rows)
        estimator = PlanEstimator(params)
        opt_estimate = estimator.estimate(optimized)
        base_estimate = estimator.estimate(baseline)
        assert opt_estimate.mpc_seconds < base_estimate.mpc_seconds / 100

    def test_hybrid_operators_reduce_credit_query_time(self):
        rows = 30_000
        spec_hybrid = credit_card_regulation_query(
            rows_demographics=rows, rows_per_agency=rows // 2
        )
        spec_plain = credit_card_regulation_query(
            rows_demographics=rows, rows_per_agency=rows // 2
        )
        hybrid = cc.compile_query(spec_hybrid.context)
        plain = cc.compile_query(
            spec_plain.context, CompilationConfig(enable_hybrid_operators=False)
        )
        params = EstimatorParams(distinct_fraction=0.01, join_selectivity=1.0)
        estimator = PlanEstimator(params)
        assert (
            estimator.estimate(hybrid).simulated_seconds
            < estimator.estimate(plain).simulated_seconds / 5
        )

    def test_row_overrides_change_estimates(self):
        compiled = cc.compile_query(single_operator_query("sum", 1000), mpc_only_config())
        concat_name = next(
            n.out_rel.name for n in compiled.dag.topological() if n.op_name == "concat"
        )
        base = PlanEstimator().estimate(compiled).simulated_seconds
        bigger = PlanEstimator(
            EstimatorParams(row_overrides={concat_name: 10_000_000})
        ).estimate(compiled).simulated_seconds
        assert bigger > base

    def test_breakdown_lists_all_nodes(self):
        compiled = cc.compile_query(single_operator_query("sum", 1000), mpc_only_config())
        estimate = PlanEstimator().estimate(compiled)
        assert len(estimate.nodes) == len(compiled.dag.topological())
        text = estimate.breakdown()
        assert "total simulated seconds" in text
