"""Back-compat: every pre-redesign frontend call shape still works via shims.

The expression-API redesign kept the old ``RelationHandle`` signatures as
thin deprecation shims.  These tests pin, for each legacy shape, that

* a :class:`DeprecationWarning` is emitted,
* the query still compiles, and
* executing it produces results identical (byte-for-byte) to the same query
  phrased in the expression API.
"""

import warnings

import pytest

import repro as cc
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table

PA, PB = cc.Party("alpha.example"), cc.Party("beta.example")

KV_SCHEMA = Schema([ColumnDef("key"), ColumnDef("value")])
KV_ROWS = [(1, 10), (2, 20), (1, 30), (3, 40), (2, 50), (4, 60)]
OTHER_ROWS = [(1, 100), (2, 200), (5, 500)]


def frontend_schema():
    return [cc.Column("key", cc.INT), cc.Column("value", cc.INT)]


def inputs():
    return {
        PA.name: {"t1": Table.from_rows(KV_SCHEMA, KV_ROWS)},
        PB.name: {"t2": Table.from_rows(KV_SCHEMA, OTHER_ROWS)},
    }


def run(build):
    """Build a one-output query with ``build`` and execute it."""
    with QueryContext() as ctx:
        t1 = ctx.new_table("t1", frontend_schema(), at=PA)
        t2 = ctx.new_table("t2", frontend_schema(), at=PB)
        build(ctx, t1, t2).collect("out", to=[PA])
    return cc.run_query(ctx, inputs()).outputs["out"]


def assert_deprecated(fn):
    """Run ``fn`` asserting it emits exactly the shim's DeprecationWarning."""
    with pytest.warns(DeprecationWarning):
        return fn()


class TestLegacyShapes:
    def test_legacy_filter_warns_and_matches_expression_form(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.filter("value", ">", 25))

        def modern(ctx, t1, t2):
            return t1.filter(cc.col("value") > 25)

        assert run(legacy) == run(modern)

    def test_legacy_multiply_warns_and_matches_with_column(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.multiply("double", "value", 2))

        def modern(ctx, t1, t2):
            return t1.with_column("double", cc.col("value") * 2)

        assert run(legacy) == run(modern)

    def test_legacy_column_multiply_matches(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.multiply("prod", "value", "key"))

        def modern(ctx, t1, t2):
            return t1.with_column("prod", cc.col("value") * cc.col("key"))

        assert run(legacy) == run(modern)

    def test_legacy_divide_warns_and_matches_with_column(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.divide("ratio", "value", by="key"))

        def modern(ctx, t1, t2):
            return t1.with_column("ratio", cc.col("value") / cc.col("key"))

        assert run(legacy) == run(modern)

    def test_legacy_single_key_join_warns_and_matches_on_form(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.join(t2, left=["key"], right=["key"]))

        def modern(ctx, t1, t2):
            return t1.join(t2, on="key")

        assert run(legacy).equals_unordered(run(modern))

    def test_legacy_single_agg_aggregate_warns_and_matches_aggs_form(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(
                lambda: t1.aggregate("total", cc.SUM, group=["key"], over="value")
            )

        def modern(ctx, t1, t2):
            return t1.aggregate(group=["key"], aggs={"total": cc.SUM("value")})

        assert run(legacy) == run(modern)

    def test_legacy_scalar_aggregate_matches(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.aggregate("total", cc.SUM, over="value"))

        def modern(ctx, t1, t2):
            return t1.aggregate(aggs={"total": cc.SUM("value")})

        assert run(legacy) == run(modern)


class TestLegacyRestrictionsPreserved:
    """The deprecated shapes keep their historical single-column limits."""

    def test_legacy_join_still_rejects_multi_column_keys(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", frontend_schema(), at=PA)
            t2 = ctx.new_table("t2", frontend_schema(), at=PB)
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ValueError, match="single-column"):
                    t1.join(t2, left=["key", "value"], right=["key", "value"])

    def test_legacy_aggregate_still_rejects_multi_column_group(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", frontend_schema(), at=PA)
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ValueError, match="single group-by"):
                    t1.aggregate("x", cc.SUM, group=["key", "value"], over="value")


class TestShimsProduceIdenticalPlans:
    def test_legacy_and_modern_filter_compile_to_identical_operator_dags(self):
        def build(modern: bool):
            with QueryContext() as ctx:
                t1 = ctx.new_table("t1", frontend_schema(), at=PA)
                t2 = ctx.new_table("t2", frontend_schema(), at=PB)
                joined = ctx.concat([t1, t2])
                if modern:
                    flt = joined.filter(cc.col("value") > 25)
                else:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", DeprecationWarning)
                        flt = joined.filter("value", ">", 25)
                flt.aggregate(group=["key"], aggs={"s": cc.SUM("value")}).collect(
                    "out", to=[PA]
                )
            return cc.compile_query(ctx)

        legacy, modern = build(False), build(True)
        assert [type(n).__name__ for n in legacy.dag.topological()] == [
            type(n).__name__ for n in modern.dag.topological()
        ]
        assert legacy.mpc_operator_count() == modern.mpc_operator_count()

    def test_no_warnings_from_expression_api(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with QueryContext() as ctx:
                t1 = ctx.new_table("t1", frontend_schema(), at=PA)
                t2 = ctx.new_table("t2", frontend_schema(), at=PB)
                joined = t1.join(t2, on=[("key", "key"), ("value", "value")])
                flt = joined.filter(cc.col("key") > 0)
                flt.aggregate(group=["key"], aggs={"n": cc.COUNT()}).collect("out", to=[PA])
            cc.compile_query(ctx)


class TestAggFuncConstants:
    def test_constants_still_compare_equal_to_strings(self):
        assert cc.SUM == "sum"
        assert cc.COUNT == "count"
        assert cc.MEAN == "mean"
        assert cc.SUM.lower() == "sum"

    def test_constants_are_callable_agg_specs(self):
        spec = cc.SUM("price")
        assert spec.func == "sum" and spec.over == "price"
        assert cc.COUNT() == cc.AggSpec("count", None)

    def test_value_aggregations_require_a_column(self):
        with pytest.raises(ValueError, match="needs a column"):
            cc.SUM()
