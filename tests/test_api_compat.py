"""Back-compat: every pre-redesign frontend call shape still works via shims.

The expression-API redesign kept the old ``RelationHandle`` signatures as
thin deprecation shims.  These tests pin, for each legacy shape, that

* a :class:`DeprecationWarning` is emitted,
* the query still compiles, and
* executing it produces results identical (byte-for-byte) to the same query
  phrased in the expression API.
"""

import warnings

import pytest

import repro as cc
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table

PA, PB = cc.Party("alpha.example"), cc.Party("beta.example")


@pytest.fixture(autouse=True)
def deprecation_warnings_are_errors():
    """Run every test in this module under ``-W error::DeprecationWarning``.

    The shims must *warn* (asserted with ``pytest.warns``, which still
    records under the error filter) — and nothing else in the build, compile
    or execution path may emit a stray DeprecationWarning.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield

KV_SCHEMA = Schema([ColumnDef("key"), ColumnDef("value")])
KV_ROWS = [(1, 10), (2, 20), (1, 30), (3, 40), (2, 50), (4, 60)]
OTHER_ROWS = [(1, 100), (2, 200), (5, 500)]


def frontend_schema():
    return [cc.Column("key", cc.INT), cc.Column("value", cc.INT)]


def inputs():
    return {
        PA.name: {"t1": Table.from_rows(KV_SCHEMA, KV_ROWS)},
        PB.name: {"t2": Table.from_rows(KV_SCHEMA, OTHER_ROWS)},
    }


def run(build):
    """Build a one-output query with ``build`` and execute it."""
    with QueryContext() as ctx:
        t1 = ctx.new_table("t1", frontend_schema(), at=PA)
        t2 = ctx.new_table("t2", frontend_schema(), at=PB)
        build(ctx, t1, t2).collect("out", to=[PA])
    return cc.run_query(ctx, inputs()).outputs["out"]


def assert_deprecated(fn):
    """Run ``fn`` asserting it emits exactly the shim's DeprecationWarning."""
    with pytest.warns(DeprecationWarning):
        return fn()


class TestLegacyShapes:
    def test_legacy_filter_warns_and_matches_expression_form(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.filter("value", ">", 25))

        def modern(ctx, t1, t2):
            return t1.filter(cc.col("value") > 25)

        assert run(legacy) == run(modern)

    def test_legacy_multiply_warns_and_matches_with_column(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.multiply("double", "value", 2))

        def modern(ctx, t1, t2):
            return t1.with_column("double", cc.col("value") * 2)

        assert run(legacy) == run(modern)

    def test_legacy_column_multiply_matches(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.multiply("prod", "value", "key"))

        def modern(ctx, t1, t2):
            return t1.with_column("prod", cc.col("value") * cc.col("key"))

        assert run(legacy) == run(modern)

    def test_legacy_divide_warns_and_matches_with_column(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.divide("ratio", "value", by="key"))

        def modern(ctx, t1, t2):
            return t1.with_column("ratio", cc.col("value") / cc.col("key"))

        assert run(legacy) == run(modern)

    def test_legacy_single_key_join_warns_and_matches_on_form(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.join(t2, left=["key"], right=["key"]))

        def modern(ctx, t1, t2):
            return t1.join(t2, on="key")

        assert run(legacy).equals_unordered(run(modern))

    def test_legacy_single_agg_aggregate_warns_and_matches_aggs_form(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(
                lambda: t1.aggregate("total", cc.SUM, group=["key"], over="value")
            )

        def modern(ctx, t1, t2):
            return t1.aggregate(group=["key"], aggs={"total": cc.SUM("value")})

        assert run(legacy) == run(modern)

    def test_legacy_scalar_aggregate_matches(self):
        def legacy(ctx, t1, t2):
            return assert_deprecated(lambda: t1.aggregate("total", cc.SUM, over="value"))

        def modern(ctx, t1, t2):
            return t1.aggregate(aggs={"total": cc.SUM("value")})

        assert run(legacy) == run(modern)


class TestLegacyRestrictionsPreserved:
    """The deprecated shapes keep their historical single-column limits."""

    def test_legacy_join_still_rejects_multi_column_keys(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", frontend_schema(), at=PA)
            t2 = ctx.new_table("t2", frontend_schema(), at=PB)
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ValueError, match="single-column"):
                    t1.join(t2, left=["key", "value"], right=["key", "value"])

    def test_legacy_aggregate_still_rejects_multi_column_group(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", frontend_schema(), at=PA)
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ValueError, match="single group-by"):
                    t1.aggregate("x", cc.SUM, group=["key", "value"], over="value")


class TestShimsProduceIdenticalPlans:
    def test_legacy_and_modern_filter_compile_to_identical_operator_dags(self):
        def build(modern: bool):
            with QueryContext() as ctx:
                t1 = ctx.new_table("t1", frontend_schema(), at=PA)
                t2 = ctx.new_table("t2", frontend_schema(), at=PB)
                joined = ctx.concat([t1, t2])
                if modern:
                    flt = joined.filter(cc.col("value") > 25)
                else:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", DeprecationWarning)
                        flt = joined.filter("value", ">", 25)
                flt.aggregate(group=["key"], aggs={"s": cc.SUM("value")}).collect(
                    "out", to=[PA]
                )
            return cc.compile_query(ctx)

        legacy, modern = build(False), build(True)
        assert [type(n).__name__ for n in legacy.dag.topological()] == [
            type(n).__name__ for n in modern.dag.topological()
        ]
        assert legacy.mpc_operator_count() == modern.mpc_operator_count()

    def test_no_warnings_from_expression_api(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with QueryContext() as ctx:
                t1 = ctx.new_table("t1", frontend_schema(), at=PA)
                t2 = ctx.new_table("t2", frontend_schema(), at=PB)
                joined = t1.join(t2, on=[("key", "key"), ("value", "value")])
                flt = joined.filter(cc.col("key") > 0)
                flt.aggregate(group=["key"], aggs={"n": cc.COUNT()}).collect("out", to=[PA])
            cc.compile_query(ctx)


def dag_signature(compiled):
    """Structural fingerprint of a compiled DAG: operator types plus every
    primitive annotation, ignoring generated relation names and node ids."""
    signature = []
    for node in compiled.dag.topological():
        attrs = {}
        for key, value in vars(node).items():
            if key in ("node_id", "out_rel", "parents", "children"):
                continue
            attrs[key] = value if isinstance(value, (str, int, float, bool, type(None))) else repr(value)
        signature.append((type(node).__name__, tuple(sorted(attrs.items()))))
    return signature


def legacy_filter(ctx, t1, t2):
    return ctx.concat([t1, t2]).filter("value", ">", 25)


def modern_filter(ctx, t1, t2):
    return ctx.concat([t1, t2]).filter(cc.col("value") > 25)


def legacy_multiply_scalar(ctx, t1, t2):
    return ctx.concat([t1, t2]).multiply("double", "value", 2)


def modern_multiply_scalar(ctx, t1, t2):
    return ctx.concat([t1, t2]).with_column("double", cc.col("value") * 2)


def legacy_multiply_column(ctx, t1, t2):
    return ctx.concat([t1, t2]).multiply("prod", "value", "key")


def modern_multiply_column(ctx, t1, t2):
    return ctx.concat([t1, t2]).with_column("prod", cc.col("value") * cc.col("key"))


def legacy_divide(ctx, t1, t2):
    return ctx.concat([t1, t2]).divide("ratio", "value", by="key")


def modern_divide(ctx, t1, t2):
    return ctx.concat([t1, t2]).with_column("ratio", cc.col("value") / cc.col("key"))


def legacy_join(ctx, t1, t2):
    return t1.join(t2, left=["key"], right=["key"])


def modern_join(ctx, t1, t2):
    return t1.join(t2, on="key")


def legacy_grouped_aggregate(ctx, t1, t2):
    return ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["key"], over="value")


def modern_grouped_aggregate(ctx, t1, t2):
    return ctx.concat([t1, t2]).aggregate(group=["key"], aggs={"total": cc.SUM("value")})


def legacy_scalar_aggregate(ctx, t1, t2):
    return ctx.concat([t1, t2]).aggregate("total", cc.SUM, over="value")


def modern_scalar_aggregate(ctx, t1, t2):
    return ctx.concat([t1, t2]).aggregate(aggs={"total": cc.SUM("value")})


#: Every deprecated call shape from the CHANGES.md migration table, paired
#: with its expression-API equivalent.
MIGRATION_TABLE = [
    ("filter", legacy_filter, modern_filter),
    ("multiply-scalar", legacy_multiply_scalar, modern_multiply_scalar),
    ("multiply-column", legacy_multiply_column, modern_multiply_column),
    ("divide", legacy_divide, modern_divide),
    ("join", legacy_join, modern_join),
    ("grouped-aggregate", legacy_grouped_aggregate, modern_grouped_aggregate),
    ("scalar-aggregate", legacy_scalar_aggregate, modern_scalar_aggregate),
]


class TestMigrationTableUnderErrorFilter:
    """Every legacy shape warns AND lowers to the byte-identical DAG, with
    DeprecationWarning promoted to an error for everything else."""

    def compile_with(self, build, deprecated: bool):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", frontend_schema(), at=PA)
            t2 = ctx.new_table("t2", frontend_schema(), at=PB)
            if deprecated:
                with pytest.warns(DeprecationWarning):
                    handle = build(ctx, t1, t2)
            else:
                handle = build(ctx, t1, t2)
            handle.collect("out", to=[PA])
        return cc.compile_query(ctx)

    @pytest.mark.parametrize(
        "name,legacy,modern", MIGRATION_TABLE, ids=[row[0] for row in MIGRATION_TABLE]
    )
    def test_legacy_shape_warns_and_lowers_to_identical_dag(self, name, legacy, modern):
        legacy_compiled = self.compile_with(legacy, deprecated=True)
        modern_compiled = self.compile_with(modern, deprecated=False)
        assert dag_signature(legacy_compiled) == dag_signature(modern_compiled)
        assert legacy_compiled.mpc_operator_count() == modern_compiled.mpc_operator_count()

    @pytest.mark.parametrize(
        "name,legacy,modern", MIGRATION_TABLE, ids=[row[0] for row in MIGRATION_TABLE]
    )
    def test_legacy_and_modern_execute_identically(self, name, legacy, modern):
        legacy_out = run(lambda ctx, t1, t2: assert_deprecated(lambda: legacy(ctx, t1, t2)))
        modern_out = run(modern)
        assert legacy_out.equals_unordered(modern_out)


class TestAggFuncConstants:
    def test_constants_still_compare_equal_to_strings(self):
        assert cc.SUM == "sum"
        assert cc.COUNT == "count"
        assert cc.MEAN == "mean"
        assert cc.SUM.lower() == "sum"

    def test_constants_are_callable_agg_specs(self):
        spec = cc.SUM("price")
        assert spec.func == "sum" and spec.over == "price"
        assert cc.COUNT() == cc.AggSpec("count", None)

    def test_value_aggregations_require_a_column(self):
        with pytest.raises(ValueError, match="needs a column"):
            cc.SUM()
