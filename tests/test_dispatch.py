"""Tests for the multi-party dispatcher (compiled-query execution)."""

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner, SecurityError
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.workloads.generators import uniform_key_value_table

PA, PB, PC = cc.Party("a.example"), cc.Party("b.example"), cc.Party("c.example")
PARTY_NAMES = [PA.name, PB.name, PC.name]
KV = [cc.Column("k"), cc.Column("v")]


def kv_inputs(rows=20, seed=0):
    return {
        PA.name: {"t0": uniform_key_value_table(rows, 4, key_column="k", value_column="v", seed=seed)},
        PB.name: {"t1": uniform_key_value_table(rows, 4, key_column="k", value_column="v", seed=seed + 1)},
        PC.name: {"t2": uniform_key_value_table(rows, 4, key_column="k", value_column="v", seed=seed + 2)},
    }


def three_party_sum_query():
    with QueryContext() as ctx:
        tables = [ctx.new_table(f"t{i}", KV, at=p) for i, p in enumerate((PA, PB, PC))]
        agg = ctx.concat(tables).aggregate("total", cc.SUM, group=["k"], over="v")
        agg.collect("out", to=[PA])
    return ctx


def reference_sum(inputs):
    combined = inputs[PA.name]["t0"].concat(inputs[PB.name]["t1"], inputs[PC.name]["t2"])
    return combined.aggregate(["k"], "v", "sum", "total")


class TestEndToEndExecution:
    @pytest.mark.parametrize("cleartext_backend", ["python", "spark"])
    def test_three_party_sum_matches_reference(self, cleartext_backend):
        config = CompilationConfig(cleartext_backend=cleartext_backend)
        compiled = cc.compile_query(three_party_sum_query(), config)
        inputs = kv_inputs()
        result = QueryRunner(PARTY_NAMES, inputs, config).run(compiled)
        assert result.outputs["out"].equals_unordered(reference_sum(inputs))

    def test_without_optimizations_results_are_identical(self):
        config = CompilationConfig(
            enable_push_down=False,
            enable_push_up=False,
            enable_hybrid_operators=False,
            enable_sort_elimination=False,
        )
        compiled = cc.compile_query(three_party_sum_query(), config)
        inputs = kv_inputs(seed=5)
        result = QueryRunner(PARTY_NAMES, inputs, config).run(compiled)
        assert result.outputs["out"].equals_unordered(reference_sum(inputs))

    def test_optimized_plan_does_less_mpc_work(self):
        def build(rows):
            with QueryContext() as ctx:
                tables = [
                    ctx.new_table(f"t{i}", KV, at=p, estimated_rows=rows)
                    for i, p in enumerate((PA, PB, PC))
                ]
                agg = ctx.concat(tables).aggregate("total", cc.SUM, group=["k"], over="v")
                agg.collect("out", to=[PA])
            return ctx

        optimized = cc.compile_query(build(100_000))
        baseline = cc.compile_query(
            build(100_000), CompilationConfig(enable_push_down=False)
        )
        estimator = cc.PlanEstimator()
        assert (
            estimator.estimate(optimized).mpc_seconds
            < estimator.estimate(baseline).mpc_seconds / 10
        )

    def test_obliv_c_backend_runs_two_party_query(self):
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", KV, at=PA)
            t1 = ctx.new_table("t1", KV, at=PB)
            agg = ctx.concat([t0, t1]).aggregate("total", cc.SUM, group=["k"], over="v")
            agg.collect("out", to=[PA])
        config = CompilationConfig(mpc_backend="obliv-c")
        compiled = cc.compile_query(ctx, config)
        inputs = {k: v for k, v in kv_inputs().items() if k in (PA.name, PB.name)}
        result = QueryRunner([PA.name, PB.name], inputs, config).run(compiled)
        expected = (
            inputs[PA.name]["t0"].concat(inputs[PB.name]["t1"]).aggregate(["k"], "v", "sum", "total")
        )
        assert result.outputs["out"].equals_unordered(expected)

    def test_simulated_time_and_backend_breakdown_populated(self):
        compiled = cc.compile_query(three_party_sum_query())
        result = QueryRunner(PARTY_NAMES, kv_inputs(), CompilationConfig()).run(compiled)
        assert result.simulated_seconds > 0
        assert result.wall_seconds > 0
        assert any(k.startswith("local:") for k in result.backend_seconds)
        assert any(k.startswith("mpc:") for k in result.backend_seconds)

    def test_output_leakage_recorded(self):
        compiled = cc.compile_query(three_party_sum_query())
        result = QueryRunner(PARTY_NAMES, kv_inputs(), CompilationConfig()).run(compiled)
        kinds = {e.kind for e in result.leakage.events}
        assert "output" in kinds

    def test_missing_input_relation_raises_helpful_error(self):
        compiled = cc.compile_query(three_party_sum_query())
        inputs = kv_inputs()
        del inputs[PB.name]["t1"]
        with pytest.raises(KeyError, match="t1"):
            QueryRunner(PARTY_NAMES, inputs, CompilationConfig()).run(compiled)

    def test_result_output_accessor(self):
        compiled = cc.compile_query(three_party_sum_query())
        result = QueryRunner(PARTY_NAMES, kv_inputs(), CompilationConfig()).run(compiled)
        assert result.output("out") is result.outputs["out"]
        with pytest.raises(KeyError):
            result.output("nope")

    def test_run_query_convenience_wrapper(self):
        inputs = kv_inputs(seed=9)
        result = cc.run_query(three_party_sum_query(), inputs)
        assert result.outputs["out"].equals_unordered(reference_sum(inputs))

    def test_reused_runner_does_not_accumulate_leakage(self):
        """Each run() gets a fresh LeakageReport; earlier results are not
        mutated by later runs (regression for the executor refactor)."""
        compiled = cc.compile_query(three_party_sum_query())
        runner = QueryRunner(PARTY_NAMES, kv_inputs(), CompilationConfig())
        first = runner.run(compiled)
        events_after_first = len(first.leakage)
        second = runner.run(compiled)
        assert len(first.leakage) == events_after_first
        assert len(second.leakage) == events_after_first
        assert first.leakage is not second.leakage


class TestSecurityEnforcement:
    def test_unauthorised_reveal_is_blocked(self):
        """A hand-tampered plan that reveals MPC data to an untrusted party must fail."""
        compiled = cc.compile_query(three_party_sum_query())
        # Tamper: force the MPC merge aggregation to "run" in the clear at PB
        # even though nobody authorised PB to see the other parties' data.
        for node in compiled.dag.topological():
            if node.is_mpc and node.op_name == "aggregate":
                node.is_mpc = False
                node.run_at = PB.name
        with pytest.raises(SecurityError):
            QueryRunner(PARTY_NAMES, kv_inputs(), CompilationConfig()).run(compiled)

    def test_unauthorised_cleartext_transfer_is_blocked(self):
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", KV, at=PA)
            projected = t0.project(["k", "v"])
            projected.collect("out", to=[PA])
        compiled = cc.compile_query(ctx)
        # Tamper: run PA's local projection at PC instead.
        for node in compiled.dag.topological():
            if node.op_name == "project":
                node.run_at = PC.name
        with pytest.raises(SecurityError):
            QueryRunner(PARTY_NAMES, kv_inputs(), CompilationConfig()).run(compiled)

    def test_hybrid_operators_require_sharemind_backend(self):
        with QueryContext() as ctx:
            left = ctx.new_table("t0", [cc.Column("k", trust=[PC]), cc.Column("v")], at=PA)
            right = ctx.new_table("t1", [cc.Column("k", trust=[PC]), cc.Column("w")], at=PB)
            joined = left.join(right, left=["k"], right=["k"])
            joined.collect("out", to=[PA])
        config = CompilationConfig(mpc_backend="obliv-c")
        compiled = cc.compile_query(ctx, config)
        has_hybrid = any(
            getattr(n, "stp", None) is not None for n in compiled.dag.topological()
        )
        if has_hybrid:
            schema = Schema([ColumnDef("k"), ColumnDef("v")])
            schema_w = Schema([ColumnDef("k"), ColumnDef("w")])
            inputs = {
                PA.name: {"t0": Table.from_rows(schema, [(1, 2)])},
                PB.name: {"t1": Table.from_rows(schema_w, [(1, 3)])},
            }
            with pytest.raises(ValueError, match="sharemind"):
                QueryRunner([PA.name, PB.name], inputs, config).run(compiled)

    def test_authorised_reveal_to_trusted_party_succeeds(self):
        """Columns whose trust set names a party may be revealed to it."""
        with QueryContext() as ctx:
            t0 = ctx.new_table(
                "t0", [cc.Column("k", trust=[PC]), cc.Column("v", trust=[PC])], at=PA
            )
            t1 = ctx.new_table(
                "t1", [cc.Column("k", trust=[PC]), cc.Column("v", trust=[PC])], at=PB
            )
            agg = ctx.concat([t0, t1]).aggregate("total", cc.SUM, group=["k"], over="v")
            agg.collect("out", to=[PC])
        config = CompilationConfig(enable_hybrid_operators=False)
        compiled = cc.compile_query(ctx, config)
        result = QueryRunner(PARTY_NAMES, kv_inputs(), config).run(compiled)
        assert result.outputs["out"].num_rows > 0


class TestParallelism:
    def test_independent_local_work_overlaps_in_simulated_time(self):
        """Per-party local pre-processing happens in parallel, so the
        simulated end-to-end time is far less than the sum of all backends'
        busy time."""
        config = CompilationConfig(cleartext_backend="spark")
        compiled = cc.compile_query(three_party_sum_query(), config)
        result = QueryRunner(PARTY_NAMES, kv_inputs(rows=200), config).run(compiled)
        local_busy = sum(
            seconds for name, seconds in result.backend_seconds.items() if name.startswith("local:")
        )
        assert result.simulated_seconds < local_busy
