"""Unit tests for schemas and column definitions."""

import pytest

from repro.data.schema import ColumnDef, ColumnType, PUBLIC, Schema, make_schema


class TestColumnDef:
    def test_default_type_is_int(self):
        col = ColumnDef("a")
        assert col.ctype is ColumnType.INT

    def test_trust_is_normalised_to_frozenset(self):
        col = ColumnDef("a", ColumnType.INT, {"p1", "p2"})
        assert isinstance(col.trust, frozenset)
        assert col.trust == {"p1", "p2"}

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnDef("")

    def test_public_flag(self):
        assert ColumnDef("a", trust=frozenset({PUBLIC})).is_public
        assert not ColumnDef("a", trust=frozenset({"p1"})).is_public

    def test_with_trust_returns_new_column(self):
        col = ColumnDef("a")
        updated = col.with_trust({"p1"})
        assert updated.trust == {"p1"}
        assert col.trust == frozenset()

    def test_renamed_preserves_type_and_trust(self):
        col = ColumnDef("a", ColumnType.FLOAT, frozenset({"p1"}))
        renamed = col.renamed("b")
        assert renamed.name == "b"
        assert renamed.ctype is ColumnType.FLOAT
        assert renamed.trust == {"p1"}

    def test_python_type(self):
        assert ColumnType.INT.python_type() is int
        assert ColumnType.FLOAT.python_type() is float


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([ColumnDef("a"), ColumnDef("a")])

    def test_lookup_by_name_and_index(self):
        schema = make_schema("a", "b", "c")
        assert schema["b"].name == "b"
        assert schema[2].name == "c"
        assert schema.index_of("c") == 2

    def test_index_of_missing_column_raises(self):
        schema = make_schema("a")
        with pytest.raises(KeyError, match="no column named"):
            schema.index_of("zzz")

    def test_contains_and_len_and_iter(self):
        schema = make_schema("a", "b")
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2
        assert [c.name for c in schema] == ["a", "b"]

    def test_resolve_accepts_indices_and_names(self):
        schema = make_schema("a", "b")
        assert schema.resolve(0) == "a"
        assert schema.resolve("b") == "b"

    def test_project_reorders(self):
        schema = make_schema("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.names == ["c", "a"]

    def test_rename(self):
        schema = make_schema("a", "b")
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ["x", "b"]

    def test_with_column_and_drop(self):
        schema = make_schema("a")
        extended = schema.with_column(ColumnDef("b", ColumnType.FLOAT))
        assert extended.names == ["a", "b"]
        assert extended.drop(["a"]).names == ["b"]

    def test_concat_compatible(self):
        a = make_schema("a", "b")
        b = make_schema("a", "b")
        c = make_schema("a", ("b", ColumnType.FLOAT))
        d = make_schema("a")
        assert a.concat_compatible(b)
        assert not a.concat_compatible(c)
        assert not a.concat_compatible(d)

    def test_equality_and_hash(self):
        assert make_schema("a", "b") == make_schema("a", "b")
        assert hash(make_schema("a")) == hash(make_schema("a"))
        assert make_schema("a") != make_schema("b")
