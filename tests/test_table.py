"""Unit and property-based tests for the in-memory columnar table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from tests.conftest import make_table


class TestConstruction:
    def test_from_rows_and_rows_roundtrip(self, kv_schema):
        rows = [(1, 2), (3, 4)]
        table = Table.from_rows(kv_schema, rows)
        assert table.rows() == rows
        assert table.num_rows == 2
        assert table.num_columns == 2

    def test_from_dict(self, kv_schema):
        table = Table.from_dict(kv_schema, {"key": [1, 2], "value": [3, 4]})
        assert table.rows() == [(1, 3), (2, 4)]

    def test_empty_table(self, kv_schema):
        table = Table.empty(kv_schema)
        assert table.num_rows == 0
        assert table.rows() == []

    def test_mismatched_column_lengths_rejected(self, kv_schema):
        with pytest.raises(ValueError):
            Table(kv_schema, [np.array([1, 2]), np.array([1])])

    def test_mismatched_row_width_rejected(self, kv_schema):
        with pytest.raises(ValueError):
            Table.from_rows(kv_schema, [(1, 2, 3)])

    def test_float_columns_use_float_dtype(self):
        table = make_table({"x": [1.5, 2.5]}, float_cols={"x"})
        assert table.column("x").dtype == np.float64

    def test_equality_and_unordered_equality(self, kv_schema):
        t1 = Table.from_rows(kv_schema, [(1, 2), (3, 4)])
        t2 = Table.from_rows(kv_schema, [(1, 2), (3, 4)])
        t3 = Table.from_rows(kv_schema, [(3, 4), (1, 2)])
        assert t1 == t2
        assert t1 != t3
        assert t1.equals_unordered(t3)


class TestProjectFilterSort:
    def test_project_selects_and_reorders(self, kv_table):
        projected = kv_table.project(["value", "key"])
        assert projected.schema.names == ["value", "key"]
        assert projected.rows()[0] == (10, 1)

    def test_filter_operators(self, kv_table):
        assert kv_table.filter("value", ">", 30).num_rows == 3
        assert kv_table.filter("value", ">=", 30).num_rows == 4
        assert kv_table.filter("key", "==", 1).num_rows == 2
        assert kv_table.filter("key", "!=", 1).num_rows == 4
        assert kv_table.filter("value", "<", 20).num_rows == 1
        assert kv_table.filter("value", "<=", 20).num_rows == 2

    def test_filter_unknown_op_rejected(self, kv_table):
        with pytest.raises(ValueError):
            kv_table.filter("key", "~", 1)

    def test_filter_predicate(self, kv_table):
        result = kv_table.filter_predicate(lambda row: row[0] + row[1] > 50)
        assert all(k + v > 50 for k, v in result.rows())

    def test_sort_by_is_stable_and_orders(self, kv_table):
        ordered = kv_table.sort_by(["key"])
        assert [r[0] for r in ordered.rows()] == sorted(r[0] for r in kv_table.rows())
        # stability: equal keys keep their original relative value order
        key1_values = [r[1] for r in ordered.rows() if r[0] == 1]
        assert key1_values == [10, 30]

    def test_sort_descending(self, kv_table):
        ordered = kv_table.sort_by(["value"], ascending=False)
        values = [r[1] for r in ordered.rows()]
        assert values == sorted(values, reverse=True)

    def test_limit_and_take(self, kv_table):
        assert kv_table.limit(2).num_rows == 2
        taken = kv_table.take(np.array([3, 0]))
        assert taken.rows() == [(3, 40), (1, 10)]

    def test_select_rows_mask(self, kv_table):
        mask = np.array([True, False, True, False, False, False])
        assert kv_table.select_rows(mask).num_rows == 2


class TestConcatDistinct:
    def test_concat_preserves_duplicates(self, kv_table):
        doubled = kv_table.concat(kv_table)
        assert doubled.num_rows == 2 * kv_table.num_rows

    def test_concat_incompatible_schema_rejected(self, kv_table):
        other = make_table({"a": [1]})
        with pytest.raises(ValueError):
            kv_table.concat(other)

    def test_distinct_whole_rows(self, kv_schema):
        table = Table.from_rows(kv_schema, [(1, 1), (1, 1), (2, 2)])
        assert table.distinct().num_rows == 2

    def test_distinct_on_columns(self, kv_table):
        assert sorted(kv_table.distinct(["key"]).column("key").tolist()) == [1, 2, 3, 4]


class TestJoin:
    def test_inner_join_matches_reference(self, kv_table, other_kv_table):
        joined = kv_table.join(other_kv_table, ["key"], ["key"])
        expected = {(1, 10, 100), (1, 30, 100), (2, 20, 200), (2, 50, 200)}
        assert set(joined.rows()) == expected
        assert joined.schema.names == ["key", "value", "value_r"]

    def test_join_no_matches_gives_empty(self, kv_schema):
        left = Table.from_rows(kv_schema, [(1, 1)])
        right = Table.from_rows(kv_schema, [(2, 2)])
        assert left.join(right, ["key"], ["key"]).num_rows == 0

    def test_join_key_length_mismatch_rejected(self, kv_table, other_kv_table):
        with pytest.raises(ValueError):
            kv_table.join(other_kv_table, ["key"], ["key", "value"])

    def test_join_on_differently_named_keys(self):
        left = make_table({"id": [1, 2], "x": [10, 20]})
        right = make_table({"pid": [2, 3], "y": [200, 300]})
        joined = left.join(right, ["id"], ["pid"])
        assert joined.rows() == [(2, 20, 200)]
        assert joined.schema.names == ["id", "x", "y"]


class TestAggregate:
    def test_grouped_sum(self, kv_table):
        result = kv_table.aggregate(["key"], "value", "sum", "total")
        assert dict((k, v) for k, v in result.rows()) == {1: 40, 2: 70, 3: 40, 4: 60}

    def test_grouped_count(self, kv_table):
        result = kv_table.aggregate(["key"], None, "count", "cnt")
        assert dict(result.rows()) == {1: 2, 2: 2, 3: 1, 4: 1}

    def test_grouped_min_max_mean(self, kv_table):
        assert dict(kv_table.aggregate(["key"], "value", "min", "m").rows())[1] == 10
        assert dict(kv_table.aggregate(["key"], "value", "max", "m").rows())[1] == 30
        assert dict(kv_table.aggregate(["key"], "value", "mean", "m").rows())[1] == 20.0

    def test_scalar_aggregates(self, kv_table):
        assert kv_table.aggregate([], "value", "sum", "s").rows() == [(210,)]
        assert kv_table.aggregate([], None, "count", "c").rows() == [(6,)]

    def test_sum_requires_value_column(self, kv_table):
        with pytest.raises(ValueError):
            kv_table.aggregate(["key"], None, "sum", "s")

    def test_unknown_function_rejected(self, kv_table):
        with pytest.raises(ValueError):
            kv_table.aggregate(["key"], "value", "median", "m")

    def test_empty_input(self, kv_schema):
        empty = Table.empty(kv_schema)
        assert empty.aggregate(["key"], "value", "sum", "s").num_rows == 0
        assert empty.aggregate([], "value", "sum", "s").rows() == [(0,)]


class TestArithmetic:
    def test_column_scalar_ops(self, kv_table):
        assert kv_table.arithmetic("d", "value", "*", 2).column("d").tolist()[0] == 20
        assert kv_table.arithmetic("d", "value", "+", 5).column("d").tolist()[0] == 15
        assert kv_table.arithmetic("d", "value", "-", 5).column("d").tolist()[0] == 5

    def test_column_column_ops(self, kv_table):
        result = kv_table.arithmetic("prod", "key", "*", "value")
        assert result.column("prod").tolist() == [
            k * v for k, v in kv_table.rows()
        ]

    def test_division_is_float_and_handles_zero(self):
        table = make_table({"a": [10, 5], "b": [2, 0]})
        result = table.arithmetic("q", "a", "/", "b")
        assert result.schema["q"].ctype is ColumnType.FLOAT
        assert result.column("q").tolist() == [5.0, 0.0]

    def test_unknown_op_rejected(self, kv_table):
        with pytest.raises(ValueError):
            kv_table.arithmetic("x", "key", "%", 2)

    def test_enumerate_rows(self, kv_table):
        result = kv_table.enumerate_rows("idx")
        assert result.column("idx").tolist() == list(range(kv_table.num_rows))

    def test_shuffle_preserves_multiset(self, kv_table, rng):
        shuffled = kv_table.shuffle(rng)
        assert shuffled.equals_unordered(kv_table)

    def test_rename_columns(self, kv_table):
        renamed = kv_table.rename({"key": "k"})
        assert renamed.schema.names == ["k", "value"]


# -- property-based tests -----------------------------------------------------------------------

small_ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)


@given(
    rows=st.lists(st.tuples(st.integers(0, 5), small_ints), max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_grouped_sum_matches_python_reference(rows):
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    table = Table.from_rows(schema, rows)
    result = dict(table.aggregate(["key"], "value", "sum", "total").rows())
    expected: dict[int, int] = {}
    for k, v in rows:
        expected[k] = expected.get(k, 0) + v
    assert result == expected


@given(
    left=st.lists(st.tuples(st.integers(0, 4), small_ints), max_size=20),
    right=st.lists(st.tuples(st.integers(0, 4), small_ints), max_size=20),
)
@settings(max_examples=40, deadline=None)
def test_join_matches_nested_loop_reference(left, right):
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    lt = Table.from_rows(schema, left)
    rt = Table.from_rows(schema, right)
    joined = lt.join(rt, ["key"], ["key"])
    expected = sorted(
        (lk, lv, rv) for lk, lv in left for rk, rv in right if lk == rk
    )
    assert sorted(joined.rows()) == expected


@given(rows=st.lists(st.tuples(small_ints, small_ints), max_size=40))
@settings(max_examples=40, deadline=None)
def test_sort_is_permutation_and_ordered(rows):
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    table = Table.from_rows(schema, rows)
    ordered = table.sort_by(["key"])
    assert ordered.equals_unordered(table)
    keys = [r[0] for r in ordered.rows()]
    assert keys == sorted(keys)
