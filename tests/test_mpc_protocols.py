"""Tests for the oblivious relational operators over secret-shared tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.mpc import protocols
from repro.mpc.protocols import SharedTable
from repro.mpc.secretshare import SecretSharingEngine
from tests.conftest import PARTIES, make_table


def share(engine, table):
    return SharedTable.from_table(engine, table)


class TestShareAndReveal:
    def test_roundtrip(self, engine, kv_table):
        shared = share(engine, kv_table)
        assert shared.reveal() == kv_table

    def test_roundtrip_float_columns(self, engine):
        table = make_table({"x": [1.25, -2.5, 0.0]}, float_cols={"x"})
        shared = share(engine, table)
        assert np.allclose(shared.reveal().column("x"), [1.25, -2.5, 0.0])

    def test_reveal_to_single_party(self, engine, kv_table):
        shared = share(engine, kv_table)
        revealed = shared.reveal_to(PARTIES[1])
        assert revealed == kv_table

    def test_schema_width_mismatch_rejected(self, engine, kv_table):
        shared = share(engine, kv_table)
        with pytest.raises(ValueError):
            SharedTable(engine, kv_table.schema, shared.columns[:1])


class TestProjectConcat:
    def test_project(self, engine, kv_table):
        shared = share(engine, kv_table)
        projected = protocols.mpc_project(shared, ["value"])
        assert projected.reveal() == kv_table.project(["value"])

    def test_concat(self, engine, kv_table, other_kv_table):
        a, b = share(engine, kv_table), share(engine, other_kv_table)
        combined = protocols.mpc_concat([a, b])
        assert combined.reveal().equals_unordered(kv_table.concat(other_kv_table))

    def test_concat_incompatible_schemas_rejected(self, engine, kv_table):
        other = make_table({"a": [1]})
        with pytest.raises(ValueError):
            protocols.mpc_concat([share(engine, kv_table), share(engine, other)])

    def test_concat_across_engines_rejected(self, engine, kv_table):
        other_engine = SecretSharingEngine(["x", "y"], seed=0)
        with pytest.raises(ValueError):
            protocols.mpc_concat([share(engine, kv_table), share(other_engine, kv_table)])


class TestFilterSort:
    @pytest.mark.parametrize("op,value", [("==", 1), ("!=", 1), ("<", 3), (">", 2), ("<=", 2), (">=", 3)])
    def test_filter_matches_cleartext(self, engine, kv_table, op, value):
        shared = share(engine, kv_table)
        result = protocols.mpc_filter(shared, "key", op, value)
        assert result.reveal().equals_unordered(kv_table.filter("key", op, value))

    def test_filter_unknown_op_rejected(self, engine, kv_table):
        with pytest.raises(ValueError):
            protocols.mpc_filter(share(engine, kv_table), "key", "~", 1)

    def test_sort_matches_cleartext(self, engine, kv_table):
        shared = share(engine, kv_table)
        result = protocols.mpc_sort(shared, "value")
        assert result.reveal() == kv_table.sort_by(["value"])

    def test_sort_descending(self, engine, kv_table):
        shared = share(engine, kv_table)
        result = protocols.mpc_sort(shared, "value", ascending=False)
        assert result.reveal() == kv_table.sort_by(["value"], ascending=False)


class TestJoin:
    def test_join_matches_cleartext(self, engine, kv_table, other_kv_table):
        left, right = share(engine, kv_table), share(engine, other_kv_table)
        joined = protocols.mpc_join(left, right, "key", "key")
        expected = kv_table.join(other_kv_table, ["key"], ["key"])
        assert joined.reveal().equals_unordered(expected)
        assert joined.schema.names == expected.schema.names

    def test_join_cost_is_quadratic_comparisons(self, engine, kv_table, other_kv_table):
        left, right = share(engine, kv_table), share(engine, other_kv_table)
        before = engine.meter.comparisons
        protocols.mpc_join(left, right, "key", "key")
        assert engine.meter.comparisons - before >= kv_table.num_rows * other_kv_table.num_rows

    def test_join_empty_side(self, engine, kv_table, kv_schema):
        left = share(engine, kv_table)
        right = share(engine, Table.empty(kv_schema))
        joined = protocols.mpc_join(left, right, "key", "key")
        assert joined.num_rows == 0

    def test_join_across_engines_rejected(self, engine, kv_table):
        other_engine = SecretSharingEngine(["x", "y"], seed=0)
        with pytest.raises(ValueError):
            protocols.mpc_join(share(engine, kv_table), share(other_engine, kv_table), "key", "key")


class TestAggregate:
    def test_grouped_sum_matches_cleartext(self, engine, kv_table):
        shared = share(engine, kv_table)
        result = protocols.mpc_aggregate(shared, "key", "value", "sum", "total")
        expected = kv_table.aggregate(["key"], "value", "sum", "total")
        assert result.reveal().equals_unordered(expected)

    def test_grouped_count_matches_cleartext(self, engine, kv_table):
        shared = share(engine, kv_table)
        result = protocols.mpc_aggregate(shared, "key", None, "count", "cnt")
        expected = kv_table.aggregate(["key"], None, "count", "cnt")
        assert result.reveal().equals_unordered(expected)

    def test_scalar_sum_and_count(self, engine, kv_table):
        shared = share(engine, kv_table)
        total = protocols.mpc_aggregate(shared, None, "value", "sum", "s")
        count = protocols.mpc_aggregate(shared, None, None, "count", "c")
        assert total.reveal().rows() == [(210,)]
        assert count.reveal().rows() == [(6,)]

    def test_scalar_sum_requires_no_comparisons(self, engine, kv_table):
        shared = share(engine, kv_table)
        before = engine.meter.comparisons
        protocols.mpc_aggregate(shared, None, "value", "sum", "s")
        assert engine.meter.comparisons == before

    def test_presorted_aggregation_skips_sort(self, engine, kv_table):
        sorted_table = kv_table.sort_by(["key"])
        shared = share(engine, sorted_table)
        before = engine.meter.comparisons
        result = protocols.mpc_aggregate(shared, "key", "value", "sum", "t", presorted=True)
        presorted_cost = engine.meter.comparisons - before
        expected = kv_table.aggregate(["key"], "value", "sum", "t")
        assert result.reveal().equals_unordered(expected)

        engine2 = SecretSharingEngine(PARTIES, seed=5)
        shared2 = SharedTable.from_table(engine2, sorted_table)
        before2 = engine2.meter.comparisons
        protocols.mpc_aggregate(shared2, "key", "value", "sum", "t", presorted=False)
        unsorted_cost = engine2.meter.comparisons - before2
        assert presorted_cost < unsorted_cost

    def test_unsupported_grouped_function_rejected(self, engine, kv_table):
        with pytest.raises(ValueError):
            protocols.mpc_aggregate(share(engine, kv_table), "key", "value", "mean", "m")

    def test_empty_relation(self, engine, kv_schema):
        shared = share(engine, Table.empty(kv_schema))
        result = protocols.mpc_aggregate(shared, "key", "value", "sum", "t")
        assert result.num_rows == 0

    def test_distinct(self, engine, kv_table):
        shared = share(engine, kv_table)
        result = protocols.mpc_distinct(shared, ["key"])
        assert sorted(result.reveal().column("key").tolist()) == [1, 2, 3, 4]


class TestArithmetic:
    def test_multiply_by_scalar_and_column(self, engine, kv_table):
        shared = share(engine, kv_table)
        by_scalar = protocols.mpc_multiply(shared, "double", "value", 2)
        assert by_scalar.reveal().column("double").tolist() == [
            2 * v for _, v in kv_table.rows()
        ]
        by_column = protocols.mpc_multiply(shared, "prod", "key", "value")
        assert by_column.reveal().column("prod").tolist() == [
            k * v for k, v in kv_table.rows()
        ]

    def test_fixed_point_multiplication_rescales(self, engine):
        table = make_table({"a": [0.5, 1.5], "b": [0.5, 2.0]}, float_cols={"a", "b"})
        shared = share(engine, table)
        result = protocols.mpc_multiply(shared, "ab", "a", "b")
        assert np.allclose(result.reveal().column("ab"), [0.25, 3.0], atol=1e-4)

    def test_divide_matches_cleartext(self, engine, kv_table):
        shared = share(engine, kv_table)
        result = protocols.mpc_divide(shared, "ratio", "value", "key")
        expected = [v / k for k, v in kv_table.rows()]
        assert np.allclose(result.reveal().column("ratio"), expected, atol=1e-4)

    def test_divide_by_zero_gives_zero(self, engine):
        table = make_table({"a": [10], "b": [0]})
        shared = share(engine, table)
        result = protocols.mpc_divide(shared, "q", "a", "b")
        assert result.reveal().column("q").tolist() == [0.0]


# -- property-based equivalence with the cleartext reference ---------------------------------

rows_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(-100, 100)), min_size=1, max_size=12
)


@given(rows=rows_strategy)
@settings(max_examples=15, deadline=None)
def test_mpc_aggregate_equals_cleartext_property(rows):
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    table = Table.from_rows(schema, rows)
    engine = SecretSharingEngine(PARTIES, seed=11)
    shared = SharedTable.from_table(engine, table)
    result = protocols.mpc_aggregate(shared, "key", "value", "sum", "total")
    assert result.reveal().equals_unordered(table.aggregate(["key"], "value", "sum", "total"))


@given(left=rows_strategy, right=rows_strategy)
@settings(max_examples=10, deadline=None)
def test_mpc_join_equals_cleartext_property(left, right):
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    lt, rt = Table.from_rows(schema, left), Table.from_rows(schema, right)
    engine = SecretSharingEngine(PARTIES, seed=13)
    joined = protocols.mpc_join(
        SharedTable.from_table(engine, lt), SharedTable.from_table(engine, rt), "key", "key"
    )
    assert joined.reveal().equals_unordered(lt.join(rt, ["key"], ["key"]))
