"""Tests for the hybrid protocol runtimes (hybrid join, public join, hybrid aggregation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleartext.python_engine import PythonBackend
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.hybrid.hybrid_agg import hybrid_aggregate
from repro.hybrid.hybrid_join import hybrid_join
from repro.hybrid.public_join import public_join
from repro.hybrid.stp import LeakageReport, SelectivelyTrustedParty
from repro.mpc.sharemind import SharemindBackend
from repro.workloads.generators import uniform_key_value_table
from tests.conftest import PARTIES

STP_NAME = "stp.example"


@pytest.fixture
def backend():
    return SharemindBackend(PARTIES, seed=21)


@pytest.fixture
def stp():
    return SelectivelyTrustedParty(STP_NAME, PythonBackend())


def kv(rows, keys, seed):
    return uniform_key_value_table(rows, keys, seed=seed)


class TestHybridJoin:
    def test_matches_cleartext_join(self, backend, stp):
        left = kv(20, 6, seed=1)
        right = kv(15, 6, seed=2)
        result = hybrid_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key"
        )
        expected = left.join(right, ["key"], ["key"])
        assert result.reveal().equals_unordered(expected)
        assert result.schema.names == expected.schema.names

    def test_empty_result(self, backend, stp):
        schema = Schema([ColumnDef("key"), ColumnDef("value")])
        left = Table.from_rows(schema, [(1, 10)])
        right = Table.from_rows(schema, [(2, 20)])
        result = hybrid_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key"
        )
        assert result.num_rows == 0

    def test_leakage_records_key_reveal_and_cardinality(self, backend, stp):
        left, right = kv(10, 3, seed=3), kv(10, 3, seed=4)
        leakage = LeakageReport()
        hybrid_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key", leakage
        )
        reveals = leakage.column_reveals_to(STP_NAME)
        assert len(reveals) == 1
        assert set(reveals[0].columns) == {"key"}
        assert len(leakage.cardinality_events()) == 1

    def test_stp_never_sees_value_columns(self, backend, stp):
        left, right = kv(10, 3, seed=5), kv(10, 3, seed=6)
        leakage = LeakageReport()
        hybrid_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key", leakage
        )
        for event in leakage.column_reveals_to(STP_NAME):
            assert "value" not in event.columns

    def test_cheaper_than_oblivious_join(self):
        # Near-unique keys, as in the credit-card query: the hybrid join's
        # O((n+m) log(n+m)) work beats the MPC join's O(n*m) comparisons.
        left, right = kv(60, 60, seed=7), kv(60, 60, seed=8)
        hybrid_backend = SharemindBackend(PARTIES, seed=1)
        helper = SelectivelyTrustedParty(STP_NAME, PythonBackend())
        hybrid_join(
            hybrid_backend, helper,
            hybrid_backend.ingest(left), hybrid_backend.ingest(right), "key", "key",
        )
        mpc_backend = SharemindBackend(PARTIES, seed=1)
        mpc_backend.join(mpc_backend.ingest(left), mpc_backend.ingest(right), "key", "key")
        assert hybrid_backend.meter.comparisons < mpc_backend.meter.comparisons
        assert (
            hybrid_backend.cost_model.seconds(hybrid_backend.meter)
            < mpc_backend.cost_model.seconds(mpc_backend.meter)
        )

    @given(
        left_rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50)), min_size=1, max_size=10),
        right_rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50)), min_size=1, max_size=10),
    )
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property(self, left_rows, right_rows):
        schema = Schema([ColumnDef("key"), ColumnDef("value")])
        left, right = Table.from_rows(schema, left_rows), Table.from_rows(schema, right_rows)
        backend = SharemindBackend(PARTIES, seed=9)
        stp = SelectivelyTrustedParty(STP_NAME, PythonBackend())
        result = hybrid_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key"
        )
        assert result.reveal().equals_unordered(left.join(right, ["key"], ["key"]))


class TestPublicJoin:
    def test_matches_cleartext_join(self, backend, stp):
        left, right = kv(25, 8, seed=10), kv(20, 8, seed=11)
        result = public_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key"
        )
        assert result.reveal().equals_unordered(left.join(right, ["key"], ["key"]))

    def test_requires_no_oblivious_operations(self, backend, stp):
        left, right = kv(25, 8, seed=12), kv(20, 8, seed=13)
        left_h, right_h = backend.ingest(left), backend.ingest(right)
        backend.meter.comparisons = 0
        backend.meter.shuffled_elements = 0
        public_join(backend, stp, left_h, right_h, "key", "key")
        assert backend.meter.comparisons == 0
        assert backend.meter.shuffled_elements == 0

    def test_leakage_mentions_host_and_cardinality(self, backend, stp):
        left, right = kv(10, 4, seed=14), kv(10, 4, seed=15)
        leakage = LeakageReport()
        public_join(
            backend, stp, backend.ingest(left), backend.ingest(right), "key", "key", leakage
        )
        assert leakage.column_reveals_to(STP_NAME)
        assert leakage.cardinality_events()


class TestHybridAggregate:
    def test_sum_matches_cleartext(self, backend, stp):
        table = kv(30, 5, seed=16)
        result = hybrid_aggregate(
            backend, stp, backend.ingest(table), "key", "value", "sum", "total"
        )
        assert result.reveal().equals_unordered(
            table.aggregate(["key"], "value", "sum", "total")
        )

    def test_count_matches_cleartext(self, backend, stp):
        table = kv(30, 5, seed=17)
        result = hybrid_aggregate(
            backend, stp, backend.ingest(table), "key", None, "count", "cnt"
        )
        assert result.reveal().equals_unordered(
            table.aggregate(["key"], None, "count", "cnt")
        )

    def test_unsupported_function_rejected(self, backend, stp):
        table = kv(5, 2, seed=18)
        with pytest.raises(ValueError):
            hybrid_aggregate(
                backend, stp, backend.ingest(table), "key", "value", "mean", "m"
            )

    def test_empty_input(self, backend, stp):
        schema = Schema([ColumnDef("key"), ColumnDef("value")])
        result = hybrid_aggregate(
            backend, stp, backend.ingest(Table.empty(schema)), "key", "value", "sum", "t"
        )
        assert result.num_rows == 0

    def test_no_oblivious_comparisons_needed(self, backend, stp):
        table = kv(40, 6, seed=19)
        handle = backend.ingest(table)
        backend.meter.comparisons = 0
        hybrid_aggregate(backend, stp, handle, "key", "value", "sum", "total")
        assert backend.meter.comparisons == 0

    def test_cheaper_than_oblivious_aggregation(self):
        table = kv(40, 6, seed=20)
        hybrid_backend = SharemindBackend(PARTIES, seed=2)
        helper = SelectivelyTrustedParty(STP_NAME, PythonBackend())
        hybrid_aggregate(
            hybrid_backend, helper, hybrid_backend.ingest(table), "key", "value", "sum", "t"
        )
        mpc_backend = SharemindBackend(PARTIES, seed=2)
        mpc_backend.aggregate(mpc_backend.ingest(table), "key", "value", "sum", "t")
        assert (
            hybrid_backend.cost_model.seconds(hybrid_backend.meter)
            < mpc_backend.cost_model.seconds(mpc_backend.meter)
        )

    def test_leakage_records_group_column_and_output_size(self, backend, stp):
        table = kv(20, 4, seed=21)
        leakage = LeakageReport()
        hybrid_aggregate(
            backend, stp, backend.ingest(table), "key", "value", "sum", "t", leakage
        )
        reveals = leakage.column_reveals_to(STP_NAME)
        assert reveals and reveals[0].columns == ("key",)
        assert leakage.cardinality_events()

    @given(
        rows=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 40)), min_size=1, max_size=14)
    )
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property(self, rows):
        schema = Schema([ColumnDef("key"), ColumnDef("value")])
        table = Table.from_rows(schema, rows)
        backend = SharemindBackend(PARTIES, seed=31)
        stp = SelectivelyTrustedParty(STP_NAME, PythonBackend())
        result = hybrid_aggregate(
            backend, stp, backend.ingest(table), "key", "value", "sum", "total"
        )
        assert result.reveal().equals_unordered(
            table.aggregate(["key"], "value", "sum", "total")
        )


class TestLeakageReport:
    def test_summary_lists_all_events(self):
        report = LeakageReport()
        report.record("column_reveal", "rel_a", ["k"], ["p1"], "detail-1")
        report.record("cardinality", "rel_b", [], [], "42 rows")
        text = report.summary()
        assert "rel_a" in text and "rel_b" in text and "42 rows" in text
        assert len(report) == 2

    def test_filtering_helpers(self):
        report = LeakageReport()
        report.record("column_reveal", "rel", ["k"], ["p1"])
        report.record("column_reveal", "rel", ["k"], ["p2"])
        report.record("cardinality", "rel")
        assert len(report.column_reveals_to("p1")) == 1
        assert len(report.cardinality_events()) == 1
