"""End-to-end tests for the paper's evaluation queries (§2.1, §7).

Each query is compiled with the full pipeline, executed across simulated
parties on synthetic workload data, and compared against a single-machine
cleartext reference computation.
"""

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.operators import HybridAggregate, HybridJoin, PublicJoin
from repro.queries import (
    aspirin_count_query,
    comorbidity_query,
    credit_card_regulation_query,
    market_concentration_query,
)
from repro.workloads.credit import CreditWorkload
from repro.workloads.healthlnk import HealthLNKWorkload
from repro.workloads.taxi import TaxiWorkload


class TestMarketConcentration:
    def setup_method(self):
        self.workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.05, seed=17)
        self.spec = market_concentration_query(rows_per_party=60)
        self.tables = self.workload.party_tables(3, 60)
        self.inputs = {
            party: {f"trips_{i}": self.tables[i]} for i, party in enumerate(self.spec.parties)
        }

    def test_hhi_matches_cleartext_reference(self):
        result = cc.run_query(self.spec.context, self.inputs)
        hhi = result.outputs["hhi_result"].rows()[0][0]
        assert hhi == pytest.approx(self.workload.reference_hhi(self.tables), abs=1e-3)

    def test_aggregation_is_split_into_local_partials(self):
        compiled = cc.compile_query(self.spec.context)
        local_aggs = [
            n
            for n in compiled.dag.topological()
            if n.op_name == "aggregate" and not n.is_mpc and not n.run_at
        ]
        assert len(local_aggs) == 3
        assert compiled.report.push_down_rewrites >= 2

    def test_no_hybrid_operators_needed(self):
        compiled = cc.compile_query(self.spec.context)
        assert compiled.report.hybrid_rewrites == []

    def test_result_identical_with_and_without_pushdown(self):
        optimized = cc.run_query(self.spec.context, self.inputs)
        spec2 = market_concentration_query(rows_per_party=60)
        baseline = cc.run_query(
            spec2.context, self.inputs, CompilationConfig(enable_push_down=False)
        )
        a = optimized.outputs["hhi_result"].rows()[0][0]
        b = baseline.outputs["hhi_result"].rows()[0][0]
        assert a == pytest.approx(b, abs=1e-3)


class TestCreditCardRegulation:
    def setup_method(self):
        self.workload = CreditWorkload(num_zip_codes=15, seed=19)
        demo, agencies = self.workload.generate(num_people=90, rows_per_agency=40)
        self.demo, self.agencies = demo, agencies
        self.spec = credit_card_regulation_query(rows_demographics=90, rows_per_agency=40)
        regulator, bank_a, bank_b = self.spec.parties
        self.inputs = {
            regulator: {"demographics": demo},
            bank_a: {"scores_0": agencies[0]},
            bank_b: {"scores_1": agencies[1]},
        }

    def test_hybrid_join_and_aggregation_inserted_with_regulator_as_stp(self):
        compiled = cc.compile_query(self.spec.context)
        hybrid_joins = [n for n in compiled.dag.topological() if isinstance(n, HybridJoin)]
        hybrid_aggs = [n for n in compiled.dag.topological() if isinstance(n, HybridAggregate)]
        assert hybrid_joins and hybrid_aggs
        assert {n.stp for n in hybrid_joins + hybrid_aggs} == {self.spec.info["stp"]}

    def test_average_scores_match_cleartext_reference(self):
        result = cc.run_query(self.spec.context, self.inputs)
        output = result.outputs["avg_scores"]
        reference = self.workload.reference_average_scores(self.demo, self.agencies)
        ref_map = {row[0]: row[-1] for row in reference.rows()}
        got_map = {}
        for row in output.rows():
            values = dict(zip(output.schema.names, row))
            got_map[values["zip"]] = values["avg_score"]
        assert set(got_map) == set(ref_map)
        for zip_code, avg in got_map.items():
            assert avg == pytest.approx(ref_map[zip_code], abs=1e-2)

    def test_ssn_never_revealed_to_the_other_bank(self):
        result = cc.run_query(self.spec.context, self.inputs)
        regulator, bank_a, bank_b = self.spec.parties
        for bank in (bank_a, bank_b):
            for event in result.leakage.column_reveals_to(bank):
                assert "ssn" not in event.columns

    def test_hybrid_operators_disabled_still_correct(self):
        spec = credit_card_regulation_query(rows_demographics=90, rows_per_agency=40)
        config = CompilationConfig(enable_hybrid_operators=False)
        result = cc.run_query(spec.context, self.inputs, config)
        reference = self.workload.reference_average_scores(self.demo, self.agencies)
        assert result.outputs["avg_scores"].num_rows == reference.num_rows


class TestAspirinCount:
    def setup_method(self):
        self.workload = HealthLNKWorkload(patient_overlap=0.1, seed=23)
        self.diagnoses, self.medications = self.workload.aspirin_count_inputs(50)
        self.spec = aspirin_count_query(rows_per_relation=50)
        h1, h2 = self.spec.parties
        self.inputs = {
            h1: {"diagnoses_0": self.diagnoses[0], "medications_0": self.medications[0]},
            h2: {"diagnoses_1": self.diagnoses[1], "medications_1": self.medications[1]},
        }

    def test_public_join_is_used(self):
        compiled = cc.compile_query(self.spec.context)
        assert any(isinstance(n, PublicJoin) for n in compiled.dag.topological())

    def test_count_matches_cleartext_reference(self):
        result = cc.run_query(self.spec.context, self.inputs)
        expected = self.workload.reference_aspirin_count(self.diagnoses, self.medications)
        assert result.outputs["aspirin_count"].rows()[0][0] == expected

    def test_smcql_comparison_config_still_correct(self):
        spec = aspirin_count_query(rows_per_relation=50)
        config = CompilationConfig(push_down_private_filters=False)
        result = cc.run_query(spec.context, self.inputs, config)
        expected = self.workload.reference_aspirin_count(self.diagnoses, self.medications)
        assert result.outputs["aspirin_count"].rows()[0][0] == expected

    def test_diagnosis_values_never_revealed_to_other_hospital(self):
        result = cc.run_query(self.spec.context, self.inputs)
        h1, h2 = self.spec.parties
        for event in result.leakage.column_reveals_to(h2):
            assert "diagnosis" not in event.columns
            assert "medication" not in event.columns


class TestComorbidity:
    def setup_method(self):
        self.workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.15, seed=29)
        self.diagnoses = self.workload.comorbidity_inputs(60)
        self.spec = comorbidity_query(rows_per_relation=60, top_k=5)
        h1, h2 = self.spec.parties
        self.inputs = {
            h1: {"diagnoses_0": self.diagnoses[0]},
            h2: {"diagnoses_1": self.diagnoses[1]},
        }

    def test_top_k_matches_cleartext_reference(self):
        result = cc.run_query(self.spec.context, self.inputs)
        reference = self.workload.reference_comorbidity(self.diagnoses, top_k=5)
        got = sorted(result.outputs["comorbidity"].rows(), key=lambda r: (-r[1], r[0]))
        expected = sorted(reference.rows(), key=lambda r: (-r[1], r[0]))
        assert [count for _, count in got] == [count for _, count in expected]

    def test_aggregation_split_like_the_paper(self):
        compiled = cc.compile_query(self.spec.context)
        local_aggs = [
            n
            for n in compiled.dag.topological()
            if n.op_name == "aggregate" and not n.is_mpc
        ]
        secondary = [
            n
            for n in compiled.dag.topological()
            if n.op_name == "aggregate" and getattr(n, "is_secondary", False)
        ]
        assert len(local_aggs) >= 2
        assert secondary and all(n.is_mpc for n in secondary)

    def test_order_by_and_limit_stay_under_mpc(self):
        compiled = cc.compile_query(self.spec.context)
        sorts = [n for n in compiled.dag.topological() if n.op_name == "sort_by"]
        assert sorts and all(n.is_mpc for n in sorts)
