"""Differential tests: socket runtime (real per-party processes) vs. simulated.

For every paper example query, executing over ``runtime="sockets"`` — one OS
process per party, all cross-party traffic (including the secret-sharing
rounds) over real TCP connections — must produce byte-identical output
tables, identical MPC operator counts, and an identical MPC work/traffic
profile to the in-process simulated runtime.
"""

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner, SecurityError, run_query_from_csv
from repro.core.lang import QueryContext
from repro.data.csvio import write_csv
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.queries import (
    aspirin_count_query,
    comorbidity_query,
    credit_card_regulation_query,
    market_concentration_query,
)
from repro.runtime.coordinator import SocketCoordinator, run_query_sockets
from repro.workloads.credit import CreditWorkload
from repro.workloads.generators import uniform_key_value_table
from repro.workloads.healthlnk import HealthLNKWorkload
from repro.workloads.taxi import TaxiWorkload


def quickstart_query():
    """The quickstart example's three-party multi-aggregate query."""
    p1, p2, p3 = (
        cc.Party("alpha.example"), cc.Party("beta.example"), cc.Party("gamma.example"),
    )
    schema = [cc.Column("region", cc.INT), cc.Column("amount", cc.INT)]
    with QueryContext() as ctx:
        sales = [
            ctx.new_table(f"sales_{i}", schema, at=p) for i, p in enumerate((p1, p2, p3))
        ]
        paid = ctx.concat(sales).filter(cc.col("amount") > 0)
        per_region = paid.aggregate(
            group=["region"], aggs={"total": cc.SUM("amount"), "n": cc.COUNT()}
        )
        per_region.collect("totals_by_region", to=[p1])
    parties = [p.name for p in (p1, p2, p3)]
    rng = np.random.default_rng(0)
    table_schema = Schema([ColumnDef("region"), ColumnDef("amount")])
    inputs = {
        party: {
            f"sales_{i}": Table(
                table_schema, [rng.integers(0, 5, 40), rng.integers(-50, 500, 40)]
            )
        }
        for i, party in enumerate(parties)
    }
    return ctx, inputs, "totals_by_region"


def paper_query(name):
    """Build (context, inputs, output name) for one paper example query."""
    if name == "market_concentration":
        spec = market_concentration_query(rows_per_party=40)
        tables = TaxiWorkload(num_companies=3, zero_fare_fraction=0.05, seed=17).party_tables(3, 40)
        inputs = {p: {f"trips_{i}": tables[i]} for i, p in enumerate(spec.parties)}
    elif name == "credit_card_regulation":
        demo, agencies = CreditWorkload(num_zip_codes=12, seed=19).generate(
            num_people=60, rows_per_agency=30
        )
        spec = credit_card_regulation_query(rows_demographics=60, rows_per_agency=30)
        regulator, bank_a, bank_b = spec.parties
        inputs = {
            regulator: {"demographics": demo},
            bank_a: {"scores_0": agencies[0]},
            bank_b: {"scores_1": agencies[1]},
        }
    elif name == "aspirin_count":
        workload = HealthLNKWorkload(patient_overlap=0.1, seed=23)
        diagnoses, medications = workload.aspirin_count_inputs(40)
        spec = aspirin_count_query(rows_per_relation=40)
        h1, h2 = spec.parties
        inputs = {
            h1: {"diagnoses_0": diagnoses[0], "medications_0": medications[0]},
            h2: {"diagnoses_1": diagnoses[1], "medications_1": medications[1]},
        }
    elif name == "comorbidity":
        workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.15, seed=29)
        diagnoses = workload.comorbidity_inputs(40)
        spec = comorbidity_query(rows_per_relation=40, top_k=5)
        h1, h2 = spec.parties
        inputs = {h1: {"diagnoses_0": diagnoses[0]}, h2: {"diagnoses_1": diagnoses[1]}}
    else:
        return quickstart_query()
    return spec.context, inputs, spec.output_relation


PAPER_QUERIES = [
    "market_concentration",
    "credit_card_regulation",
    "aspirin_count",
    "comorbidity",
    "quickstart",
]


class TestSocketRuntimeMatchesSimulated:
    @pytest.mark.parametrize("name", PAPER_QUERIES)
    def test_paper_query_byte_identical_across_runtimes(self, name):
        ctx, inputs, output = paper_query(name)
        compiled = cc.compile_query(ctx)
        parties = sorted(compiled.dag.parties() | set(inputs))

        simulated = QueryRunner(parties, inputs, compiled.config, seed=11).run(compiled)
        socketed = SocketCoordinator(parties, inputs, compiled.config, seed=11).run(compiled)

        assert socketed.runtime == "sockets" and simulated.runtime == "simulated"
        assert set(simulated.outputs) == set(socketed.outputs)
        for rel in simulated.outputs:
            # Byte-identical: same schema, same rows, same row *order*.
            assert simulated.outputs[rel] == socketed.outputs[rel]
        # Identical MPC operator counts (same compiled plan drives both) and
        # identical joint work/traffic profile (multiplications, comparisons,
        # messages, bytes, rounds).
        assert compiled.mpc_operator_count() == cc.compile_query(
            paper_query(name)[0]
        ).mpc_operator_count()
        assert simulated.mpc_profile == socketed.mpc_profile
        assert output in simulated.outputs

    def test_leakage_and_timing_merge_across_agents(self):
        ctx, inputs, _ = paper_query("credit_card_regulation")
        compiled = cc.compile_query(ctx)
        parties = sorted(compiled.dag.parties() | set(inputs))
        simulated = QueryRunner(parties, inputs, compiled.config, seed=1).run(compiled)
        socketed = SocketCoordinator(parties, inputs, compiled.config, seed=1).run(compiled)
        # The distributed run records the same disclosures (as a multiset).
        assert sorted(e.kind for e in simulated.leakage.events) == sorted(
            e.kind for e in socketed.leakage.events
        )
        assert len(simulated.leakage) == len(socketed.leakage)
        assert socketed.simulated_seconds == pytest.approx(simulated.simulated_seconds)
        assert any(k.startswith("local:") for k in socketed.backend_seconds)
        assert any(k.startswith("mpc:") for k in socketed.backend_seconds)
        assert socketed.wall_seconds > 0

    def test_obliv_c_backend_over_sockets(self):
        pa, pb = cc.Party("a.example"), cc.Party("b.example")
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
            agg = ctx.concat([t0, t1]).aggregate(group=["k"], aggs={"total": cc.SUM("v")})
            agg.collect("out", to=[pa])
        config = CompilationConfig(mpc_backend="obliv-c")
        inputs = {
            pa.name: {"t0": uniform_key_value_table(20, 4, key_column="k", value_column="v", seed=0)},
            pb.name: {"t1": uniform_key_value_table(20, 4, key_column="k", value_column="v", seed=1)},
        }
        simulated = cc.run_query(ctx, inputs, config, seed=2)
        socketed = cc.run_query(ctx, inputs, config, seed=2, runtime="sockets")
        assert simulated.outputs["out"] == socketed.outputs["out"]
        assert simulated.mpc_profile == socketed.mpc_profile
        assert socketed.mpc_profile["backend"] == "obliv-c"

    def test_run_query_from_csv_sockets(self, tmp_path):
        ctx, inputs, output = paper_query("quickstart")
        compiled = cc.compile_query(ctx)
        dirs = {}
        for party, relations in inputs.items():
            party_dir = tmp_path / party
            party_dir.mkdir()
            for rel, table in relations.items():
                write_csv(table, party_dir / f"{rel}.csv")
            dirs[party] = str(party_dir)
        simulated = run_query_from_csv(compiled, dirs, seed=4)
        socketed = run_query_from_csv(compiled, dirs, seed=4, runtime="sockets")
        assert simulated.outputs[output] == socketed.outputs[output]

    def test_unknown_runtime_rejected(self):
        ctx, inputs, _ = paper_query("quickstart")
        with pytest.raises(ValueError, match="unknown runtime"):
            cc.run_query(ctx, inputs, runtime="carrier-pigeon")


class TestDistributedSecurityEnforcement:
    def test_tampered_plan_raises_security_error_across_processes(self):
        """Every agent checks authorisation; a tampered plan fails loudly."""
        pa, pb, pc = (
            cc.Party("a.example"), cc.Party("b.example"), cc.Party("c.example"),
        )
        with QueryContext() as ctx:
            tables = [
                ctx.new_table(f"t{i}", [cc.Column("k"), cc.Column("v")], at=p)
                for i, p in enumerate((pa, pb, pc))
            ]
            agg = ctx.concat(tables).aggregate(group=["k"], aggs={"total": cc.SUM("v")})
            agg.collect("out", to=[pa])
        compiled = cc.compile_query(ctx)
        for node in compiled.dag.topological():
            if node.is_mpc and node.op_name == "aggregate":
                node.is_mpc = False
                node.run_at = pb.name
        parties = [pa.name, pb.name, pc.name]
        inputs = {
            p: {f"t{i}": uniform_key_value_table(15, 4, key_column="k", value_column="v", seed=i)}
            for i, p in enumerate(parties)
        }
        with pytest.raises(SecurityError):
            SocketCoordinator(parties, inputs, compiled.config).run(compiled)

    def test_no_agent_processes_leak_after_failure(self):
        from repro.runtime.coordinator import active_agent_processes

        self.test_tampered_plan_raises_security_error_across_processes()
        assert active_agent_processes() == []


class TestRunQuerySocketsHelper:
    def test_helper_compiles_and_runs(self):
        ctx, inputs, output = paper_query("quickstart")
        result = run_query_sockets(ctx, inputs, seed=6)
        reference = cc.run_query(paper_query("quickstart")[0], inputs, seed=6)
        assert result.outputs[output] == reference.outputs[output]

    def test_run_spec_helper_supports_both_runtimes(self):
        from repro.queries import market_concentration_query, run_spec

        tables = TaxiWorkload(num_companies=3, zero_fare_fraction=0.05, seed=17).party_tables(3, 30)
        spec = market_concentration_query(rows_per_party=30)
        inputs = {p: {f"trips_{i}": tables[i]} for i, p in enumerate(spec.parties)}
        simulated = run_spec(spec, inputs, seed=8)
        spec2 = market_concentration_query(rows_per_party=30)
        socketed = run_spec(spec2, inputs, seed=8, runtime="sockets")
        assert simulated.outputs[spec.output_relation] == socketed.outputs[spec.output_relation]

    def test_single_party_query_over_sockets(self):
        """A mesh of one: no MPC backend, no peers, still works."""
        pa = cc.Party("solo.example")
        with QueryContext() as ctx:
            t = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t.filter(cc.col("v") > 5).aggregate(
                group=["k"], aggs={"s": cc.SUM("v")}
            ).collect("out", to=[pa])
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        inputs = {pa.name: {"t0": Table.from_rows(schema, [(1, 10), (1, 3), (2, 8)])}}
        simulated = cc.run_query(ctx, inputs)
        socketed = cc.run_query(ctx, inputs, runtime="sockets")
        assert simulated.outputs["out"] == socketed.outputs["out"]
        assert socketed.mpc_profile == {}


class TestWireAccounting:
    def test_session_wire_totals_are_symmetric_across_peers(self):
        """Every byte one party counts as sent, its peer counts as received.

        The agents report cumulative per-peer mesh traffic with each query
        result; after sequential (non-overlapping) queries the mesh is
        quiescent at every completion, so the ledgers must mirror exactly:
        A->B bytes_sent == B's bytes_received from A, for every ordered pair.
        """
        ctx, inputs, _output = quickstart_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(inputs, seed=11)
        try:
            for _ in range(2):
                session.submit(compiled, timeout=120)
            wire = session.stats["wire"]
            parties = sorted(inputs)
            assert sorted(wire) == parties
            total = 0
            for a in parties:
                for b in parties:
                    if a == b:
                        continue
                    sent = wire[a][b]["bytes_sent"]
                    assert sent == wire[b][a]["bytes_received"], (a, b, wire)
                    assert wire[a][b]["frames_sent"] == wire[b][a]["frames_received"]
                    total += sent
            assert total > 0, "an MPC query must move bytes between parties"
        finally:
            session.close()
