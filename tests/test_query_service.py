"""Tests for the persistent query service (long-lived sessions over one mesh).

Covers the service lifecycle (open once / submit many / close, context
manager, drain-on-close, idle timeout), warm-vs-cold byte-identity for every
paper example query, the per-session compiled-plan cache, concurrent
submission, the concurrency soak (no leaked processes, threads or sockets),
and the crash regression: a party-agent that dies must fail all in-flight
queries with a clean error instead of deadlocking on a dead socket.
"""

import threading
import time

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner, SecurityError
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.runtime.coordinator import SocketCoordinator
from repro.runtime.service import (
    AgentFailure,
    SessionClosed,
    active_agent_processes,
    active_sessions,
    plan_fingerprint,
)

from test_runtime_transport import PAPER_QUERIES, paper_query

PARTY_A = "a.example"
PARTY_B = "b.example"


def two_party_query(agg_extra: bool = False):
    """A small two-party MPC aggregate (compiled), with its inputs."""
    pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
    with QueryContext() as ctx:
        t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
        t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
        rel = ctx.concat([t0, t1])
        if agg_extra:
            rel = rel.with_column("w", cc.col("v") * 2)
            aggs = {"s": cc.SUM("w"), "n": cc.COUNT()}
        else:
            aggs = {"s": cc.SUM("v")}
        rel.aggregate(group=["k"], aggs=aggs).collect("out", to=[pa])
    schema = Schema([ColumnDef("k"), ColumnDef("v")])
    rng = np.random.default_rng(7 if agg_extra else 5)
    inputs = {
        PARTY_A: {"t0": Table(schema, [rng.integers(0, 6, 30), rng.integers(-40, 40, 30)])},
        PARTY_B: {"t1": Table(schema, [rng.integers(0, 6, 30), rng.integers(-40, 40, 30)])},
    }
    return ctx, inputs


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSessionLifecycle:
    def test_open_submit_many_close(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        reference = cc.run_query(ctx, inputs, seed=9)
        session = cc.open_session(inputs, seed=9)
        try:
            for _ in range(3):
                result = session.submit(compiled)
                assert result.outputs["out"] == reference.outputs["out"]
                assert result.mpc_profile == reference.mpc_profile
                assert result.runtime == "service"
        finally:
            session.close()
        assert session.closed
        assert active_agent_processes() == []

    def test_context_manager_and_submit_after_close(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        with cc.open_session(inputs) as session:
            result = session.submit(compiled)
            assert "out" in result.outputs
        assert session.closed
        with pytest.raises(SessionClosed):
            session.submit(compiled)

    def test_plan_cache_ships_each_plan_once(self):
        ctx, inputs = two_party_query()
        ctx2, _ = two_party_query(agg_extra=True)
        compiled, compiled2 = cc.compile_query(ctx), cc.compile_query(ctx2)
        assert plan_fingerprint(compiled) != plan_fingerprint(compiled2)
        with cc.open_session(inputs) as session:
            for _ in range(4):
                session.submit(compiled)
            session.submit(compiled2)
            assert session.stats["queries"] == 5
            assert session.stats["plan_cache_misses"] == 2
            assert session.stats["plan_cache_hits"] == 3

    def test_per_query_inputs_override_standing_inputs(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        fresh = {
            PARTY_A: {"t0": Table.from_rows(schema, [(1, 10)])},
            PARTY_B: {"t1": Table.from_rows(schema, [(1, 5), (2, 3)])},
        }
        with cc.open_session(inputs) as session:
            standing = session.submit(compiled)
            overridden = session.submit(compiled, inputs=fresh)
            again = session.submit(compiled)
        assert overridden.outputs["out"] == cc.run_query(ctx, fresh).outputs["out"]
        # The override was per-query: the standing inputs were untouched.
        assert standing.outputs["out"] == again.outputs["out"]
        assert standing.outputs["out"] != overridden.outputs["out"]

    def test_partial_inputs_override_keeps_other_parties_standing_inputs(self):
        """Overriding only one party's inputs must not wipe the others'."""
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        override_a = {PARTY_A: {"t0": Table.from_rows(schema, [(1, 100), (2, 200)])}}
        mixed_inputs = {**inputs, **override_a}
        with cc.open_session(inputs) as session:
            partial = session.submit(compiled, inputs=override_a)
        assert partial.outputs["out"] == cc.run_query(ctx, mixed_inputs).outputs["out"]

    def test_per_query_seed_and_config(self):
        ctx, inputs = two_party_query()
        with cc.open_session(inputs, seed=1) as session:
            obliv = session.submit(
                ctx, config=CompilationConfig(mpc_backend="obliv-c"), seed=4
            )
            shared = session.submit(cc.compile_query(ctx), seed=4)
        assert obliv.mpc_profile["backend"] == "obliv-c"
        assert shared.mpc_profile["backend"] == "sharemind"
        # Different MPC substrates may order output rows differently; the
        # relations themselves must agree.
        assert sorted(obliv.outputs["out"].rows()) == sorted(shared.outputs["out"].rows())

    @pytest.mark.parametrize("name", PAPER_QUERIES)
    def test_paper_query_byte_identical_simulated_cold_and_warm(self, name):
        """The acceptance matrix: simulated vs cold sockets vs warm session."""
        ctx, inputs, output = paper_query(name)
        compiled = cc.compile_query(ctx)
        parties = sorted(compiled.dag.parties() | set(inputs))

        simulated = QueryRunner(parties, inputs, compiled.config, seed=13).run(compiled)
        cold = SocketCoordinator(parties, inputs, compiled.config, seed=13).run(compiled)
        with cc.QuerySession(parties, inputs=inputs, config=compiled.config, seed=13) as session:
            warm_first = session.submit(compiled)
            warm_again = session.submit(compiled)

        for result in (cold, warm_first, warm_again):
            assert set(result.outputs) == set(simulated.outputs)
            for rel in simulated.outputs:
                assert result.outputs[rel] == simulated.outputs[rel]
            assert result.mpc_profile == simulated.mpc_profile
        assert output in warm_first.outputs
        assert cold.runtime == "sockets" and warm_first.runtime == "service"

    def test_run_query_service_runtime(self):
        ctx, inputs = two_party_query()
        reference = cc.run_query(ctx, inputs, seed=2)
        try:
            first = cc.run_query(ctx, inputs, seed=2, runtime="service")
            ctx2, _ = two_party_query()
            second = cc.run_query(ctx2, inputs, seed=2, runtime="service")
        finally:
            cc.close_shared_sessions()
        assert first.outputs["out"] == reference.outputs["out"]
        assert second.outputs["out"] == reference.outputs["out"]
        assert first.runtime == "service"

    def test_idle_timeout_retires_agents(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(inputs, idle_timeout=0.4)
        try:
            session.submit(compiled)  # the session serves while active
            assert wait_until(lambda: session.closed, timeout=15), (
                "agents did not retire after the idle timeout"
            )
            assert wait_until(lambda: active_agent_processes() == [], timeout=15)
            with pytest.raises(SessionClosed):
                session.submit(compiled)
            # Retirement releases coordinator-side resources without an
            # explicit close(): control sockets closed, registry dropped.
            assert wait_until(
                lambda: all(s.fileno() == -1 for s in session._pool._connections.values()),
                timeout=15,
            )
            from repro.runtime import service

            assert wait_until(lambda: session not in service._ACTIVE_SESSIONS, timeout=15)
        finally:
            session.close()


class TestCrashPropagation:
    """A dead party-agent must fail queries loudly, never deadlock."""

    def heavy_query(self):
        """An MPC-heavy plan (~seconds): filter kept under MPC by disabling
        push-down, so comparisons run on secret shares.  The batched
        share-vector protocols make per-row cost tiny, so the row count is
        large to keep the query running for a measurable beat."""
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
            ctx.concat([t0, t1]).filter(cc.col("v") > 0).aggregate(
                group=["k"], aggs={"s": cc.SUM("v")}
            ).collect("out", to=[pa])
        config = CompilationConfig(enable_push_down=False)
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        rng = np.random.default_rng(3)
        rows = 400_000
        inputs = {
            p: {t: Table(schema, [rng.integers(0, 9, rows), rng.integers(-50, 50, rows)])}
            for p, t in ((PARTY_A, "t0"), (PARTY_B, "t1"))
        }
        return cc.compile_query(ctx, config), config, inputs

    def test_crash_before_submit_is_a_clean_error(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(inputs)
        try:
            victim = session._pool._processes[PARTY_B]
            victim.kill()
            victim.join(timeout=10)
            with pytest.raises((AgentFailure, SessionClosed)):
                # Regression: PR 2-era code would block on the dead socket.
                session.submit(compiled, timeout=30)
            with pytest.raises(SessionClosed):
                session.submit(compiled, timeout=30)
        finally:
            session.close()
        assert active_agent_processes() == []

    def test_crash_fails_all_in_flight_queries(self):
        compiled, config, inputs = self.heavy_query()
        session = cc.QuerySession([PARTY_A, PARTY_B], inputs=inputs, config=config)
        try:
            handles = [session.submit_async(compiled, seed=i) for i in range(3)]
            assert session.in_flight() > 0
            session._pool._processes[PARTY_A].kill()
            for handle in handles:
                # A deadlock would surface as the timeout's AgentFailure
                # ("no result within ..."); a detected crash raises the
                # "died mid-session" one — assert on the message.
                with pytest.raises(AgentFailure, match="died mid-session"):
                    handle.result(timeout=60)
            assert session.closed
        finally:
            session.close()
        assert active_agent_processes() == []

    def test_result_timeout_raises_instead_of_hanging(self):
        """A bounded wait on a still-running query raises AgentFailure (the
        session stays usable and the query may finish later)."""
        compiled, config, inputs = self.heavy_query()
        with cc.QuerySession([PARTY_A, PARTY_B], inputs=inputs, config=config) as session:
            handle = session.submit_async(compiled)
            with pytest.raises(AgentFailure, match="no result within"):
                handle.result(timeout=0.05)
            # The same handle still resolves once the query completes.
            result = handle.result(timeout=120)
            assert "out" in result.outputs

    def test_unserializable_inputs_fail_only_that_query(self):
        """A submission whose frame cannot be pickled raises at the caller
        with nothing half-shipped; the session keeps serving."""
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        with cc.open_session(inputs) as session:
            with pytest.raises(Exception, match="pickle|serializ"):
                session.submit(compiled, inputs={PARTY_A: {"t0": lambda: None}})
            assert session.in_flight() == 0
            result = session.submit(compiled, timeout=60)
        assert result.outputs["out"] == cc.run_query(ctx, inputs).outputs["out"]

    def test_query_error_does_not_poison_the_session(self):
        """A failing query (tampered plan -> SecurityError at the agents)
        aborts cleanly; the same session then serves the next query."""
        ctx, inputs = two_party_query()
        good = cc.compile_query(ctx)
        ctx2, _ = two_party_query()
        tampered = cc.compile_query(ctx2)
        for node in tampered.dag.topological():
            if node.is_mpc and node.op_name == "aggregate":
                node.is_mpc = False
                node.run_at = PARTY_B
        with cc.open_session(inputs) as session:
            with pytest.raises(SecurityError):
                session.submit(tampered, timeout=60)
            result = session.submit(good, timeout=60)
        assert result.outputs["out"] == cc.run_query(ctx, inputs).outputs["out"]


class TestConcurrencySoak:
    """N concurrent queries on one session; nothing leaks afterwards."""

    ROUNDS = 3
    CONCURRENCY = 8

    def test_soak_no_leaked_processes_threads_or_sockets(self):
        baseline_threads = set(threading.enumerate())
        ctx, inputs = two_party_query()
        ctx2, _ = two_party_query(agg_extra=True)
        plans = [cc.compile_query(ctx), cc.compile_query(ctx2)]
        references = [
            {seed: cc.run_query(c, inputs, seed=seed).outputs["out"] for seed in range(3)}
            for c in (ctx, ctx2)
        ]

        session = cc.open_session(inputs)
        try:
            for _ in range(self.ROUNDS):
                handles = []
                for i in range(self.CONCURRENCY):
                    plan_index, seed = i % 2, i % 3
                    handles.append((plan_index, seed, session.submit_async(
                        plans[plan_index], seed=seed
                    )))
                for plan_index, seed, handle in handles:
                    result = handle.result(timeout=120)
                    assert result.outputs["out"] == references[plan_index][seed]
            assert session.stats["queries"] == self.ROUNDS * self.CONCURRENCY
            assert session.stats["plan_cache_misses"] == 2
        finally:
            session.close()

        # Processes: every agent exited (conftest would kill stragglers, but
        # a clean close must not need it).
        assert wait_until(lambda: active_agent_processes() == [], timeout=15)
        # Sessions: the registry is empty again.
        assert session not in active_sessions()
        # Sockets/ports: every control socket is closed (closed sockets have
        # fileno -1 and their ports are released with the dead agents).
        assert all(s.fileno() == -1 for s in session._pool._connections.values())
        # Threads: the per-party receiver threads wound down.
        def no_service_threads():
            extra = set(threading.enumerate()) - baseline_threads
            return not [t for t in extra if t.name.startswith("pool-recv-")]
        assert wait_until(no_service_threads, timeout=15), (
            f"leaked threads: {[t.name for t in set(threading.enumerate()) - baseline_threads]}"
        )

    def test_concurrent_submission_from_many_threads(self):
        """submit() itself is thread-safe (the analyst-facing entry point)."""
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        reference = cc.run_query(ctx, inputs, seed=0).outputs["out"]
        results, errors = [], []

        def worker():
            try:
                results.append(session.submit(compiled, seed=0, timeout=120))
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        with cc.open_session(inputs, seed=0) as session:
            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert not errors
        assert len(results) == 6
        for result in results:
            assert result.outputs["out"] == reference


class TestTeardownErrorAccounting:
    def test_swallowed_teardown_errors_are_counted_and_logged(self, caplog):
        import logging

        from repro.runtime import service

        before = service.teardown_errors()
        with caplog.at_level(logging.DEBUG, logger="repro.runtime.service"):
            service._count_teardown_error("unit-test", RuntimeError("boom"))
        assert service.teardown_errors() == before + 1
        assert any(
            "unit-test" in record.message and "boom" in record.message
            for record in caplog.records
        )
