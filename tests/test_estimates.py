"""Tests that the analytic cost formulas track the functional protocols.

The benchmark harness extrapolates large-scale runtimes from the formulas in
``repro.mpc.estimates``; these tests pin the formulas to the actual counts
the functional protocols record for small inputs, so the extrapolations stay
honest as the code evolves.
"""

import numpy as np
import pytest

from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.mpc import estimates, protocols
from repro.mpc.oblivious import oblivious_shuffle, oblivious_sort
from repro.mpc.protocols import SharedTable
from repro.mpc.secretshare import SecretSharingEngine
from tests.conftest import PARTIES


def fresh_engine():
    return SecretSharingEngine(PARTIES, seed=42)


def shared_kv(engine, n, keys=3):
    rng = np.random.default_rng(0)
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    table = Table(schema, [rng.integers(0, keys, n), rng.integers(0, 100, n)])
    return table, SharedTable.from_table(engine, table)


class TestComparatorCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 16, 33])
    def test_bitonic_comparator_count_matches_execution(self, n):
        engine = fresh_engine()
        key = engine.input_vector(np.arange(n, dtype=np.int64)[::-1].copy())
        before = engine.meter.comparisons
        oblivious_sort(engine, key, [])
        measured = engine.meter.comparisons - before
        assert measured == estimates.bitonic_comparator_count(n)

    def test_counts_grow_loglinearly(self):
        small = estimates.bitonic_comparator_count(1024)
        large = estimates.bitonic_comparator_count(2048)
        # doubling n should far less than quadruple the comparator count
        assert large < 3 * small

    def test_degenerate_sizes(self):
        assert estimates.bitonic_comparator_count(0) == 0
        assert estimates.bitonic_comparator_count(1) == 0
        assert estimates.bitonic_merge_comparator_count(1) == 0


class TestMeterFormulas:
    def test_shuffle_meter_matches_execution(self):
        engine = fresh_engine()
        _, shared = shared_kv(engine, 10)
        engine.meter.reset()
        engine.network.reset_stats()
        oblivious_shuffle(engine, shared.columns)
        expected = estimates.shuffle_meter(10, 2, num_parties=3)
        assert engine.meter.shuffled_elements == expected.shuffled_elements
        assert engine.network.stats.rounds == expected.network.rounds

    def test_join_meter_comparisons_match_execution(self):
        engine = fresh_engine()
        left_table, left = shared_kv(engine, 6)
        right_table, right = shared_kv(engine, 5)
        engine.meter.reset()
        protocols.mpc_join(left, right, "key", "key")
        expected = estimates.join_meter(6, 5, 3, num_parties=3)
        assert engine.meter.comparisons == expected.comparisons

    def test_aggregate_meter_comparisons_match_execution(self):
        engine = fresh_engine()
        _, shared = shared_kv(engine, 9)
        engine.meter.reset()
        protocols.mpc_aggregate(shared, "key", "value", "sum", "total")
        expected = estimates.aggregate_meter(9, num_parties=3)
        assert engine.meter.comparisons == expected.comparisons

    def test_scalar_aggregate_is_linear_and_cheap(self):
        meter = estimates.aggregate_meter(1000, scalar=True)
        assert meter.comparisons == 0
        assert meter.multiplications == 0
        assert meter.local_ops == 1000

    def test_presorted_aggregate_cheaper(self):
        sorted_meter = estimates.aggregate_meter(1000, presorted=True)
        unsorted_meter = estimates.aggregate_meter(1000, presorted=False)
        assert sorted_meter.comparisons < unsorted_meter.comparisons

    def test_share_and_reveal_meters(self):
        share = estimates.share_input_meter(100, 2, num_parties=3)
        reveal = estimates.reveal_meter(100, 2, num_parties=3)
        assert share.input_records == 200
        assert reveal.output_records == 200
        assert share.network.bytes_sent > 0
        assert reveal.network.bytes_sent > 0


class TestAsymptoticRelationships:
    def test_hybrid_join_beats_mpc_join_asymptotically(self):
        n = 50_000
        mpc = estimates.join_meter(n, n, 4)
        hybrid = estimates.hybrid_join_meter(n, n, n, 4)
        assert hybrid.comparisons < mpc.comparisons / 100

    def test_hybrid_aggregate_beats_mpc_aggregate(self):
        n = 50_000
        mpc = estimates.aggregate_meter(n)
        hybrid = estimates.hybrid_aggregate_meter(n, n // 10)
        assert hybrid.comparisons < mpc.comparisons / 10

    def test_oblivious_index_is_loglinear(self):
        n = 10_000
        meter = estimates.oblivious_index_meter(n, n, 1)
        assert meter.comparisons < n * n / 100
        assert meter.comparisons >= 2 * n

    def test_merge_cheaper_than_sort(self):
        n = 4096
        assert (
            estimates.bitonic_merge_comparator_count(n)
            < estimates.bitonic_comparator_count(n) / 2
        )

    def test_filter_meter_linear(self):
        small = estimates.filter_meter(1_000, 2)
        large = estimates.filter_meter(10_000, 2)
        assert 8 <= large.comparisons / small.comparisons <= 12


class TestCostMeter:
    def test_merge_accumulates_all_fields(self):
        a = estimates.share_input_meter(10, 1)
        b = estimates.reveal_meter(5, 1)
        a.merge(b)
        assert a.input_records == 10
        assert a.output_records == 5
        assert a.network.rounds == 2

    def test_copy_is_independent(self):
        a = estimates.share_input_meter(10, 1)
        b = a.copy()
        b.input_records += 5
        b.network.rounds += 1
        assert a.input_records == 10
        assert a.network.rounds == 1

    def test_reset(self):
        a = estimates.join_meter(10, 10, 3)
        a.reset()
        assert a.comparisons == 0
        assert a.network.bytes_sent == 0
