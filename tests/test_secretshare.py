"""Unit and property-based tests for additive secret sharing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.secretshare import (
    AdditiveSharing,
    SecretSharingEngine,
    TripleDealer,
)

int64s = st.integers(min_value=-(2**62), max_value=2**62 - 1)


class TestAdditiveSharing:
    def test_shares_reconstruct(self, rng):
        values = np.array([0, 1, -5, 2**40, -(2**40)], dtype=np.int64)
        shares = AdditiveSharing.share(values, 3, rng)
        assert len(shares) == 3
        assert np.array_equal(AdditiveSharing.reconstruct(shares), values)

    def test_individual_shares_look_random(self, rng):
        values = np.zeros(1000, dtype=np.int64)
        shares = AdditiveSharing.share(values, 3, rng)
        # A share of all-zeros should not itself be all zeros.
        assert np.any(shares[0] != 0)
        assert np.any(shares[1] != 0)

    def test_two_party_minimum(self, rng):
        with pytest.raises(ValueError):
            AdditiveSharing.share(np.array([1]), 1, rng)

    def test_reconstruct_empty_share_list_rejected(self):
        with pytest.raises(ValueError):
            AdditiveSharing.reconstruct([])

    @given(values=st.lists(int64s, min_size=1, max_size=50), parties=st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_share_reconstruct_roundtrip_property(self, values, parties):
        rng = np.random.default_rng(0)
        arr = np.array(values, dtype=np.int64)
        shares = AdditiveSharing.share(arr, parties, rng)
        assert np.array_equal(AdditiveSharing.reconstruct(shares), arr)


class TestTripleDealer:
    def test_triples_are_valid(self):
        dealer = TripleDealer(3, seed=5)
        triple = dealer.triples(100)
        a = AdditiveSharing.reconstruct(triple.a_shares).astype(np.uint64)
        b = AdditiveSharing.reconstruct(triple.b_shares).astype(np.uint64)
        c = AdditiveSharing.reconstruct(triple.c_shares).astype(np.uint64)
        assert np.array_equal(a * b, c)


class TestEngineArithmetic:
    def test_input_and_open(self, engine):
        values = np.array([3, -7, 11], dtype=np.int64)
        vec = engine.input_vector(values, contributor=engine.party_names[0])
        assert np.array_equal(vec.reveal(), values)
        assert engine.meter.input_records == 3
        assert engine.meter.output_records == 3

    def test_addition_and_subtraction(self, engine):
        x = engine.input_vector(np.array([1, 2, 3]))
        y = engine.input_vector(np.array([10, 20, 30]))
        assert np.array_equal((x + y).reveal(), [11, 22, 33])
        assert np.array_equal((y - x).reveal(), [9, 18, 27])

    def test_scalar_addition_and_scaling(self, engine):
        x = engine.input_vector(np.array([1, 2, 3]))
        assert np.array_equal((x + 5).reveal(), [6, 7, 8])
        assert np.array_equal((x - 1).reveal(), [0, 1, 2])
        assert np.array_equal(engine.scale(x, -2).reveal(), [-2, -4, -6])

    def test_multiplication_uses_beaver_triples(self, engine):
        x = engine.input_vector(np.array([2, -3, 5]))
        y = engine.input_vector(np.array([7, 7, -7]))
        product = x * y
        assert np.array_equal(product.reveal(), [14, -21, -35])
        assert engine.meter.multiplications == 3

    def test_multiplication_by_scalar_is_local(self, engine):
        x = engine.input_vector(np.array([2, 3]))
        before = engine.meter.multiplications
        assert np.array_equal((x * 4).reveal(), [8, 12])
        assert engine.meter.multiplications == before

    def test_empty_vector_multiplication(self, engine):
        x = engine.input_vector(np.array([], dtype=np.int64))
        y = engine.input_vector(np.array([], dtype=np.int64))
        assert len(x * y) == 0

    def test_length_mismatch_rejected(self, engine):
        x = engine.input_vector(np.array([1, 2]))
        y = engine.input_vector(np.array([1]))
        with pytest.raises(ValueError):
            engine.mul(x, y)

    def test_cross_engine_mixing_rejected(self, engine):
        other = SecretSharingEngine(["a", "b"], seed=0)
        x = engine.input_vector(np.array([1]))
        y = other.input_vector(np.array([1]))
        with pytest.raises(ValueError):
            engine.add(x, y)

    def test_constant_vectors_require_no_communication(self, engine):
        before = engine.network.stats.messages
        c = engine.constant(np.array([5, 6]))
        assert np.array_equal(AdditiveSharing.reconstruct(c.shares), [5, 6])
        assert engine.network.stats.messages == before

    @given(
        xs=st.lists(int64s, min_size=1, max_size=20),
        ys=st.lists(int64s, min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_multiplication_matches_cleartext_property(self, xs, ys):
        n = min(len(xs), len(ys))
        engine = SecretSharingEngine(["a", "b", "c"], seed=7)
        x = engine.input_vector(np.array(xs[:n], dtype=np.int64))
        y = engine.input_vector(np.array(ys[:n], dtype=np.int64))
        expected = (
            np.array(xs[:n], dtype=np.int64).astype(np.uint64)
            * np.array(ys[:n], dtype=np.int64).astype(np.uint64)
        ).astype(np.int64)
        assert np.array_equal((x * y).reveal(), expected)


class TestComparisonsAndSelect:
    def test_less_than_and_equals(self, engine):
        x = engine.input_vector(np.array([1, 5, 5, 9]))
        y = engine.input_vector(np.array([2, 5, 4, 3]))
        assert np.array_equal(engine.less_than(x, y).reveal(), [1, 0, 0, 0])
        assert np.array_equal(engine.equals(x, y).reveal(), [0, 1, 0, 0])

    def test_comparison_against_scalar(self, engine):
        x = engine.input_vector(np.array([1, 5, 9]))
        assert np.array_equal(engine.less_than(x, 5).reveal(), [1, 0, 0])
        assert np.array_equal(engine.equals(x, 5).reveal(), [0, 1, 0])

    def test_comparisons_are_metered(self, engine):
        x = engine.input_vector(np.array([1, 2, 3]))
        engine.less_than(x, 2)
        assert engine.meter.comparisons == 3

    def test_select_multiplexes(self, engine):
        flag = engine.input_vector(np.array([1, 0, 1]))
        a = engine.input_vector(np.array([10, 20, 30]))
        b = engine.input_vector(np.array([-1, -2, -3]))
        assert np.array_equal(engine.select(flag, a, b).reveal(), [10, -2, 30])

    def test_reveal_to_specific_party(self, engine):
        x = engine.input_vector(np.array([42]))
        values = engine.reveal_to(x, engine.party_names[1])
        assert values.tolist() == [42]

    def test_reveal_to_external_party_is_metered(self, engine):
        x = engine.input_vector(np.array([42, 43]))
        before = engine.network.stats.rounds
        engine.reveal_to(x, "external.example")
        assert engine.network.stats.rounds > before
