"""Correctness under every optimization configuration.

Every rewrite Conclave applies must preserve query semantics; these tests
run the paper's queries end to end under all combinations of the
optimization flags and check that the revealed outputs never change.
"""

import itertools

import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.queries import comorbidity_query, credit_card_regulation_query, market_concentration_query
from repro.workloads.credit import CreditWorkload
from repro.workloads.healthlnk import HealthLNKWorkload
from repro.workloads.taxi import TaxiWorkload

FLAG_NAMES = (
    "enable_push_down",
    "enable_push_up",
    "enable_hybrid_operators",
    "enable_sort_elimination",
)
ALL_COMBINATIONS = [
    dict(zip(FLAG_NAMES, values))
    for values in itertools.product([True, False], repeat=len(FLAG_NAMES))
]


def _config(flags: dict) -> CompilationConfig:
    return CompilationConfig(**flags)


class TestMarketQueryUnderAllConfigs:
    workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.05, seed=41)
    tables = workload.party_tables(3, 40)
    reference = workload.reference_hhi(tables)

    @pytest.mark.parametrize("flags", ALL_COMBINATIONS, ids=lambda f: "".join("1" if v else "0" for v in f.values()))
    def test_hhi_invariant_under_optimizations(self, flags):
        spec = market_concentration_query(rows_per_party=40)
        inputs = {
            party: {f"trips_{i}": self.tables[i]} for i, party in enumerate(spec.parties)
        }
        result = cc.run_query(spec.context, inputs, _config(flags))
        hhi = result.outputs["hhi_result"].rows()[0][0]
        assert hhi == pytest.approx(self.reference, abs=1e-3)


class TestCreditQueryUnderKeyConfigs:
    workload = CreditWorkload(num_zip_codes=10, seed=43)
    demo, agencies = workload.generate(num_people=60, rows_per_agency=25)
    reference = workload.reference_average_scores(demo, agencies)

    @pytest.mark.parametrize(
        "flags",
        [
            {"enable_hybrid_operators": True},
            {"enable_hybrid_operators": False},
            {"enable_hybrid_operators": True, "enable_push_up": False},
            {"enable_hybrid_operators": False, "enable_push_down": False},
        ],
        ids=["hybrid", "no-hybrid", "hybrid-no-pushup", "pure-mpc"],
    )
    def test_average_scores_invariant(self, flags):
        spec = credit_card_regulation_query(rows_demographics=60, rows_per_agency=25)
        regulator, bank_a, bank_b = spec.parties
        inputs = {
            regulator: {"demographics": self.demo},
            bank_a: {"scores_0": self.agencies[0]},
            bank_b: {"scores_1": self.agencies[1]},
        }
        result = cc.run_query(spec.context, inputs, CompilationConfig(**flags))
        output = result.outputs["avg_scores"]
        ref_map = {row[0]: row[-1] for row in self.reference.rows()}
        got_map = {
            dict(zip(output.schema.names, row))["zip"]: dict(zip(output.schema.names, row))["avg_score"]
            for row in output.rows()
        }
        assert set(got_map) == set(ref_map)
        for zip_code in ref_map:
            assert got_map[zip_code] == pytest.approx(ref_map[zip_code], abs=1e-2)


class TestComorbidityUnderKeyConfigs:
    workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.15, seed=47)
    diagnoses = workload.comorbidity_inputs(50)
    reference = workload.reference_comorbidity(diagnoses, top_k=5)

    @pytest.mark.parametrize(
        "flags",
        [
            {},
            {"enable_push_down": False},
            {"enable_sort_elimination": False},
            {"enable_push_down": False, "enable_sort_elimination": False},
        ],
        ids=["default", "no-pushdown", "no-sort-elim", "neither"],
    )
    def test_top_counts_invariant(self, flags):
        spec = comorbidity_query(rows_per_relation=50, top_k=5)
        h1, h2 = spec.parties
        inputs = {h1: {"diagnoses_0": self.diagnoses[0]}, h2: {"diagnoses_1": self.diagnoses[1]}}
        result = cc.run_query(spec.context, inputs, CompilationConfig(**flags))
        got_counts = sorted((row[1] for row in result.outputs["comorbidity"].rows()), reverse=True)
        expected_counts = sorted((row[1] for row in self.reference.rows()), reverse=True)
        assert got_counts == expected_counts


class TestCompilationReportAndExplain:
    def test_explain_mentions_rewrites_dag_and_partitioning(self):
        spec = credit_card_regulation_query(rows_demographics=100, rows_per_agency=50)
        compiled = cc.compile_query(spec.context)
        text = compiled.explain()
        assert "hybrid_join" in text
        assert "operator DAG" in text
        assert "sub-plan" in text

    def test_report_counts_are_consistent_with_dag(self):
        spec = market_concentration_query(rows_per_party=100)
        compiled = cc.compile_query(spec.context)
        local_aggs = [
            n
            for n in compiled.dag.topological()
            if n.op_name == "aggregate" and not n.is_mpc and not getattr(n, "is_secondary", False)
        ]
        assert compiled.report.push_down_rewrites >= 2
        assert len(local_aggs) == 3
