"""Tests for the party-to-party network and its pluggable transports."""

import pytest

from repro.mpc.network import Network, NetworkStats
from repro.runtime.transport import Message, SimulatedTransport


@pytest.fixture
def net():
    return Network(["a", "b", "c"])


def test_send_and_recv(net):
    net.send("a", "b", {"x": 1}, size_bytes=16)
    assert net.recv("b") == {"x": 1}


def test_recv_filtered_by_sender(net):
    net.send("a", "c", "from-a", 8)
    net.send("b", "c", "from-b", 8)
    assert net.recv("c", sender="b") == "from-b"
    assert net.recv("c", sender="a") == "from-a"


def test_recv_without_pending_message_raises(net):
    with pytest.raises(LookupError):
        net.recv("a")


def test_self_send_rejected(net):
    with pytest.raises(ValueError):
        net.send("a", "a", "loop", 1)


def test_unknown_party_rejected(net):
    with pytest.raises(KeyError):
        net.send("a", "zzz", "x", 1)
    with pytest.raises(KeyError):
        net.recv("zzz")


def test_duplicate_party_names_rejected():
    with pytest.raises(ValueError):
        Network(["a", "a"])


def test_stats_count_messages_and_bytes(net):
    net.send("a", "b", "m1", 100)
    net.send("a", "c", "m2", 50)
    assert net.stats.messages == 2
    assert net.stats.bytes_sent == 150


def test_barrier_counts_rounds_only_when_traffic_happened(net):
    net.barrier()
    assert net.stats.rounds == 0
    net.send("a", "b", "x", 1)
    net.send("b", "c", "y", 1)
    net.barrier()
    assert net.stats.rounds == 1
    net.barrier()
    assert net.stats.rounds == 1


def test_broadcast_reaches_all_other_parties(net):
    net.broadcast("a", "hello", 10)
    assert net.pending("b") == 1
    assert net.pending("c") == 1
    assert net.pending("a") == 0
    assert net.stats.bytes_sent == 20


def test_account_rounds_analytical(net):
    net.account_rounds(3, 1000, messages_per_round=2)
    assert net.stats.rounds == 3
    assert net.stats.messages == 6
    assert net.stats.bytes_sent == 3000


def test_account_rounds_rejects_negative(net):
    with pytest.raises(ValueError):
        net.account_rounds(-1, 10)


def test_reset_stats(net):
    net.send("a", "b", "x", 1)
    net.barrier()
    net.reset_stats()
    assert net.stats.messages == 0
    assert net.stats.rounds == 0
    assert net.stats.bytes_sent == 0


def test_stats_merge_and_copy():
    a = NetworkStats(messages=1, bytes_sent=10, rounds=2)
    b = NetworkStats(messages=2, bytes_sent=5, rounds=1)
    c = a.copy()
    a.merge(b)
    assert (a.messages, a.bytes_sent, a.rounds) == (3, 15, 3)
    assert (c.messages, c.bytes_sent, c.rounds) == (1, 10, 2)


class TestTransportAbstraction:
    def test_default_transport_is_simulated(self, net):
        assert isinstance(net.transport, SimulatedTransport)
        assert net.reference_party == "a"

    def test_explicit_simulated_transport_behaves_identically(self):
        explicit = Network(["a", "b"], transport=SimulatedTransport(["a", "b"]))
        implicit = Network(["a", "b"])
        for n in (explicit, implicit):
            n.send("a", "b", "x", 7)
            n.barrier()
        assert explicit.stats == implicit.stats
        assert explicit.recv("b") == implicit.recv("b") == "x"

    def test_transport_party_mismatch_rejected(self):
        with pytest.raises(ValueError, match="do not match"):
            Network(["a", "b"], transport=SimulatedTransport(["a", "c"]))

    def test_transport_pop_returns_messages_in_fifo_order(self):
        transport = SimulatedTransport(["a", "b"])
        transport.deliver(Message("a", "b", "first", 1))
        transport.deliver(Message("a", "b", "second", 1))
        assert transport.pop("b").payload == "first"
        assert transport.pop("b", sender="a").payload == "second"
        with pytest.raises(LookupError):
            transport.pop("b")
