"""The columnar vectorized execution engine: batches, kernels, wiring.

The engine's end-to-end byte-identity with the row oracle lives in
``test_differential.py`` (all 50 random plans, all four backend configs);
this module covers the pieces in isolation — :class:`ColumnBatch`
invariants, kernel edge cases (including the bit-exactness recipes for
float aggregation and join ordering), executor selection, the share-vector
protocols' wire-round flatness, the ``bind_host`` endpoint handshake, and
the per-query ``rows_processed``/``mpc_rounds`` session counters.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.dispatch import QueryRunner
from repro.core.lang import QueryContext
from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.exec import ColumnarBackend, ColumnBatch
from repro.exec.kernels import (
    arithmetic,
    combine_bool,
    compare,
    distinct_indices,
    filter_flags,
    group_slices,
    hash_join_indices,
    segment_reduce,
    sort_indices,
)
from repro.runtime.mesh import _endpoint, bind_listener

PARTY_A = "alpha.example"
PARTY_B = "beta.example"


def small_table():
    schema = Schema([ColumnDef("k"), ColumnDef("v"), ColumnDef("f", ColumnType.FLOAT)])
    return Table(schema, [[3, 1, 2, 1], [10, 20, 30, 40], [0.5, 1.5, -2.5, 3.5]])


class TestColumnBatch:
    def test_round_trip_preserves_table(self):
        table = small_table()
        assert ColumnBatch.from_table(table).to_table() == table

    def test_narrow_masks_lazily_and_compact_materialises(self):
        batch = ColumnBatch.from_table(small_table())
        narrowed = batch.narrow(np.array([True, False, True, False]))
        assert narrowed.lane_count == 4  # lanes survive; the mask filters
        assert narrowed.num_rows == 2
        assert narrowed.compact().lane_count == 2
        assert narrowed.to_table().rows() == [(3, 10, 0.5), (2, 30, -2.5)]

    def test_column_values_excludes_masked_lanes(self):
        batch = ColumnBatch.from_table(small_table())
        narrowed = batch.narrow(np.array([False, True, True, True]))
        assert narrowed.column_values("k").tolist() == [1, 2, 1]

    def test_project_and_rename_preserve_mask(self):
        batch = ColumnBatch.from_table(small_table()).narrow(
            np.array([True, True, False, False])
        )
        projected = batch.project(["v"]).rename({"v": "value"})
        assert projected.schema.names == ["value"]
        assert projected.to_table().rows() == [(10,), (20,)]

    def test_with_column_infers_float_type(self):
        batch = ColumnBatch.from_table(small_table())
        extended = batch.with_column("half", batch.column("v") / 2.0)
        assert extended.schema["half"].ctype is ColumnType.FLOAT

    def test_mismatched_column_lengths_raise(self):
        schema = Schema([ColumnDef("a"), ColumnDef("b")])
        with pytest.raises(ValueError):
            ColumnBatch(schema, [np.array([1, 2]), np.array([1])])

    def test_bad_mask_length_raises(self):
        schema = Schema([ColumnDef("a")])
        with pytest.raises(ValueError):
            ColumnBatch(schema, [np.array([1, 2])], mask=np.array([True]))


class TestKernels:
    def test_compare_returns_int64_flags(self):
        flags = compare(np.array([1, 5, 3]), ">", 2)
        assert flags.dtype == np.int64
        assert flags.tolist() == [0, 1, 1]

    def test_filter_flags_and_bool_ops(self):
        a = np.array([1, 0, 1], dtype=np.int64)
        b = np.array([1, 1, 0], dtype=np.int64)
        assert combine_bool("and", [a, b]).tolist() == [1, 0, 0]
        assert combine_bool("or", [a, b]).tolist() == [1, 1, 1]
        assert combine_bool("not", [a]).tolist() == [0, 1, 0]
        assert filter_flags(np.array([5, -1, 2]), "<", 3).tolist() == [False, True, True]

    def test_bool_not_requires_exactly_one_operand(self):
        a = np.array([1], dtype=np.int64)
        with pytest.raises(ValueError):
            combine_bool("not", [a, a])

    def test_divide_by_zero_yields_zero(self):
        out = arithmetic(np.array([10, 20]), "/", np.array([2, 0]))
        assert out.tolist() == [5.0, 0.0]

    def test_hash_join_matches_row_engine_order(self):
        left = Table(Schema([ColumnDef("k"), ColumnDef("v")]), [[2, 1, 2, 9], [1, 2, 3, 4]])
        right = Table(Schema([ColumnDef("k"), ColumnDef("w")]), [[2, 2, 1], [10, 20, 30]])
        expected = left.join(right, left_on=["k"], right_on=["k"]).rows()
        li, ri = hash_join_indices(left.column("k"), right.column("k"))
        got = [
            (left.column("k")[l], left.column("v")[l], right.column("w")[r])
            for l, r in zip(li, ri)
        ]
        assert [tuple(int(x) for x in row) for row in got] == expected

    def test_group_slices_cover_all_rows(self):
        key = np.array([3, 1, 3, 1, 2])
        order, starts, ends = group_slices(key)
        assert sorted(order.tolist()) == list(range(5))
        assert (ends - starts).sum() == 5
        assert key[order[starts]].tolist() == [1, 2, 3]  # group keys ascend

    def test_float_sum_is_bit_identical_to_per_group_numpy_sum(self):
        # The row engine sums each group's float column with np.sum over the
        # group's values; the kernel must reproduce that bit pattern, not
        # just be numerically close.
        rng = np.random.default_rng(11)
        key = rng.integers(0, 7, 500)
        values = rng.normal(size=500)
        order, starts, ends = group_slices(key)
        got = segment_reduce(values[order], starts, ends, "sum")
        expected = np.array(
            [values[order][s:e].sum() for s, e in zip(starts, ends)]
        )
        assert got.tobytes() == expected.tobytes()

    def test_distinct_keeps_first_occurrence_order(self):
        cols = [np.array([1, 2, 1, 3, 2]), np.array([0, 0, 0, 1, 0])]
        idx = distinct_indices(cols)
        assert idx.tolist() == [0, 1, 3]

    def test_sort_indices_descending_mirrors_table_sort(self):
        key = np.array([3, 1, 2, 1])
        assert key[sort_indices(key, ascending=True)].tolist() == [1, 1, 2, 3]
        table = Table(Schema([ColumnDef("k")]), [key])
        expected = table.sort_by(["k"], ascending=False).column("k").tolist()
        assert key[sort_indices(key, ascending=False)].tolist() == expected


class TestColumnarBackend:
    def test_concat_requires_compatible_schemas(self):
        backend = ColumnarBackend()
        a = backend.ingest(small_table(), PARTY_A)
        other = Table(Schema([ColumnDef("x")]), [[1]])
        b = backend.ingest(other, PARTY_A)
        with pytest.raises(ValueError):
            backend.concat([a, b])

    def test_scalar_aggregate_on_empty_input_is_zero(self):
        backend = ColumnarBackend()
        empty = backend.ingest(
            Table(Schema([ColumnDef("v")]), [np.array([], dtype=np.int64)]), PARTY_A
        )
        out = backend.collect(
            backend.aggregate(empty, None, "v", "sum", "total")
        )
        assert out.rows() == [(0,)]

    def test_limit_and_enumerate(self):
        backend = ColumnarBackend()
        handle = backend.ingest(small_table(), PARTY_A)
        limited = backend.limit(handle, 2)
        numbered = backend.enumerate_rows(limited, "rid")
        out = backend.collect(numbered)
        assert out.column("rid").tolist() == [0, 1]
        assert out.num_rows == 2


class TestExecutorSelection:
    def one_party_query(self):
        pa = cc.Party(PARTY_A)
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t0.aggregate(group=["k"], aggs={"s": cc.SUM("v")}).collect("out", to=[pa])
        inputs = {PARTY_A: {"t0": small_table().project(["k", "v"])}}
        return ctx, inputs

    def test_columnar_matches_row_engine(self):
        ctx, inputs = self.one_party_query()
        row = cc.run_query(ctx, inputs)
        col = cc.run_query(ctx, inputs, executor="columnar")
        assert col.outputs["out"] == row.outputs["out"]

    def test_unknown_executor_raises(self):
        ctx, inputs = self.one_party_query()
        with pytest.raises(ValueError, match="unknown executor"):
            cc.run_query(ctx, inputs, executor="vectorised")


class TestWireRoundFlatness:
    """The batched share-vector protocols exchange whole columns per round,
    so the number of real (barrier-delimited) exchanges must not depend on
    the relation size — only the analytic round figure may grow."""

    def mpc_run(self, rows: int):
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
            ctx.concat([t0, t1]).filter(cc.col("v") > 0).aggregate(
                group=["k"], aggs={"s": cc.SUM("v")}
            ).collect("out", to=[pa])
        rng = np.random.default_rng(5)
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        inputs = {
            p: {t: Table(schema, [rng.integers(0, 6, rows), rng.integers(-40, 40, rows)])}
            for p, t in ((PARTY_A, "t0"), (PARTY_B, "t1"))
        }
        config = CompilationConfig(enable_push_down=False)
        return cc.run_query(ctx, inputs, config, seed=1)

    def test_wire_rounds_independent_of_row_count(self):
        small = self.mpc_run(40).mpc_profile
        large = self.mpc_run(400).mpc_profile
        assert small["wire_rounds"] == large["wire_rounds"]
        assert large["rounds"] > small["rounds"]  # analytic cost still scales
        assert large["bytes_sent"] > small["bytes_sent"]


class TestBindHost:
    def test_endpoint_normaliser(self):
        with pytest.warns(DeprecationWarning, match="bare advertised ports"):
            assert _endpoint(4000) == ("127.0.0.1", 4000)
        assert _endpoint(("10.0.0.7", 4000)) == ("10.0.0.7", 4000)
        assert _endpoint(["10.0.0.7", 4000]) == ("10.0.0.7", 4000)

    def test_bind_listener_honours_host(self):
        listener = bind_listener(5.0, "127.0.0.1")
        try:
            host, port = listener.getsockname()
            assert host == "127.0.0.1" and port > 0
        finally:
            listener.close()

    def test_agents_advertise_full_endpoints(self):
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        inputs = {
            PARTY_A: {"t0": Table(schema, [[1, 2], [10, 20]])},
            PARTY_B: {"t1": Table(schema, [[1, 2], [30, 40]])},
        }
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
            ctx.concat([t0, t1]).aggregate(
                group=["k"], aggs={"s": cc.SUM("v")}
            ).collect("out", to=[pa])
        config = CompilationConfig(bind_host="127.0.0.1")
        with cc.QuerySession([PARTY_A, PARTY_B], inputs=inputs, config=config) as session:
            for party, endpoint in session._pool._ports.items():
                host, port = endpoint
                assert host == "127.0.0.1" and port > 0, (party, endpoint)
            result = session.submit(ctx, timeout=60)
        expected = cc.run_query(ctx, inputs)
        assert result.outputs["out"] == expected.outputs["out"]


class TestSessionCounters:
    def test_rows_processed_and_mpc_rounds_accumulate(self):
        schema = Schema([ColumnDef("k"), ColumnDef("v")])
        inputs = {
            PARTY_A: {"t0": Table(schema, [[1, 2, 1], [10, 20, 30]])},
            PARTY_B: {"t1": Table(schema, [[2, 2], [5, 5]])},
        }
        pa, pb = cc.Party(PARTY_A), cc.Party(PARTY_B)
        with QueryContext() as ctx:
            t0 = ctx.new_table("t0", [cc.Column("k"), cc.Column("v")], at=pa)
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=pb)
            ctx.concat([t0, t1]).aggregate(
                group=["k"], aggs={"s": cc.SUM("v")}
            ).collect("out", to=[pa])
        with cc.QuerySession([PARTY_A, PARTY_B], inputs=inputs) as session:
            first = session.submit(ctx, timeout=60)
            stats_one = session.stats
            session.submit(ctx, timeout=60)
            stats_two = session.stats
        out_rows = first.outputs["out"].num_rows
        assert stats_one["rows_processed"] == out_rows
        assert stats_two["rows_processed"] == 2 * out_rows
        assert stats_one["mpc_rounds"] > 0
        assert stats_two["mpc_rounds"] == 2 * stats_one["mpc_rounds"]
        prom = session.render_prometheus()
        assert "conclave_rows_processed_total" in prom
        assert "conclave_mpc_rounds_total" in prom
