"""Tests for the cleartext backends (sequential Python and the Spark simulator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleartext.python_engine import PythonBackend
from repro.cleartext.spark_sim import PartitionedRelation, SparkBackend, SparkCostModel
from repro.data.schema import ColumnDef, Schema
from repro.data.table import Table
from repro.workloads.generators import uniform_key_value_table


@pytest.fixture(params=["python", "spark"])
def backend(request):
    if request.param == "python":
        return PythonBackend()
    return SparkBackend(default_partitions=4)


class TestEngineEquivalence:
    """Both engines must produce exactly the Table-reference results."""

    def setup_method(self):
        self.table = uniform_key_value_table(50, 5, seed=1)
        self.other = uniform_key_value_table(30, 5, seed=2)

    def test_project(self, backend):
        h = backend.ingest(self.table)
        assert backend.collect(backend.project(h, ["value"])).equals_unordered(
            self.table.project(["value"])
        )

    def test_filter(self, backend):
        h = backend.ingest(self.table)
        assert backend.collect(backend.filter(h, "value", ">", 500)).equals_unordered(
            self.table.filter("value", ">", 500)
        )

    def test_join(self, backend):
        h, o = backend.ingest(self.table), backend.ingest(self.other)
        assert backend.collect(backend.join(h, o, "key", "key")).equals_unordered(
            self.table.join(self.other, ["key"], ["key"])
        )

    def test_grouped_aggregate(self, backend):
        h = backend.ingest(self.table)
        assert backend.collect(
            backend.aggregate(h, "key", "value", "sum", "total")
        ).equals_unordered(self.table.aggregate(["key"], "value", "sum", "total"))

    def test_grouped_count(self, backend):
        h = backend.ingest(self.table)
        assert backend.collect(
            backend.aggregate(h, "key", None, "count", "cnt")
        ).equals_unordered(self.table.aggregate(["key"], None, "count", "cnt"))

    def test_scalar_aggregate(self, backend):
        h = backend.ingest(self.table)
        assert backend.collect(backend.aggregate(h, None, "value", "sum", "s")).rows() == [
            (self.table.column("value").sum(),)
        ]

    def test_concat(self, backend):
        h, o = backend.ingest(self.table), backend.ingest(self.other)
        assert backend.collect(backend.concat([h, o])).equals_unordered(
            self.table.concat(self.other)
        )

    def test_sort_and_limit(self, backend):
        h = backend.ingest(self.table)
        top = backend.collect(backend.limit(backend.sort_by(h, "value", ascending=False), 5))
        expected = self.table.sort_by(["value"], ascending=False).limit(5)
        assert top == expected

    def test_distinct(self, backend):
        h = backend.ingest(self.table)
        got = backend.collect(backend.distinct(h, ["key"]))
        assert sorted(got.column("key").tolist()) == sorted(
            self.table.distinct(["key"]).column("key").tolist()
        )

    def test_arithmetic(self, backend):
        # Engines may reorder rows (partitioning), so compare whole rows as
        # multisets against the reference computation.
        h = backend.ingest(self.table)
        doubled = backend.collect(backend.multiply(h, "d", "value", 2))
        assert doubled.equals_unordered(self.table.arithmetic("d", "value", "*", 2))
        ratio = backend.collect(backend.divide(h, "r", "value", "key"))
        expected = self.table.arithmetic("r", "value", "/", "key")
        assert sorted(np.round(ratio.column("r"), 6).tolist()) == sorted(
            np.round(expected.column("r"), 6).tolist()
        )

    def test_enumerate_rows_unique_and_contiguous(self, backend):
        h = backend.ingest(self.table)
        ids = sorted(backend.collect(backend.enumerate_rows(h, "rid")).column("rid").tolist())
        assert ids == list(range(self.table.num_rows))


class TestSparkSpecifics:
    def test_ingest_partitions_data(self):
        backend = SparkBackend(default_partitions=4)
        handle = backend.ingest(uniform_key_value_table(20, 3, seed=3))
        assert handle.num_partitions == 4
        assert handle.num_rows == 20

    def test_small_tables_do_not_create_empty_partitions(self):
        backend = SparkBackend(default_partitions=8)
        handle = backend.ingest(uniform_key_value_table(3, 3, seed=3))
        assert handle.num_partitions == 3

    def test_hash_shuffle_groups_keys_into_same_partition(self):
        backend = SparkBackend(default_partitions=4)
        handle = backend.ingest(uniform_key_value_table(40, 6, seed=4))
        aggregated = backend.aggregate(handle, "key", "value", "sum", "t")
        seen: dict[int, int] = {}
        for p_index, part in enumerate(aggregated.partitions):
            for key in part.column("key").tolist():
                assert key not in seen, "a key appeared in two partitions after the shuffle"
                seen[key] = p_index

    def test_stats_accumulate_jobs_stages_tasks(self):
        backend = SparkBackend(default_partitions=2)
        h = backend.ingest(uniform_key_value_table(10, 3, seed=5))
        backend.project(h, ["key"])
        assert backend.stats.jobs == 1
        assert backend.stats.stages >= 2
        assert backend.stats.tasks >= 2

    def test_shuffle_volume_counted_for_wide_ops(self):
        backend = SparkBackend(default_partitions=2)
        h = backend.ingest(uniform_key_value_table(10, 3, seed=6))
        before = backend.stats.records_shuffled
        backend.aggregate(h, "key", "value", "sum", "t")
        assert backend.stats.records_shuffled > before

    def test_cost_model_parallelism(self):
        stats_heavy = SparkBackend(cost_model=SparkCostModel(total_cores=1))
        stats_light = SparkBackend(cost_model=SparkCostModel(total_cores=32))
        table = uniform_key_value_table(5000, 5, seed=7)
        for backend in (stats_heavy, stats_light):
            h = backend.ingest(table)
            backend.aggregate(h, "key", "value", "sum", "t")
        assert stats_heavy.elapsed_seconds() > stats_light.elapsed_seconds()

    def test_empty_relation_handling(self):
        backend = SparkBackend()
        schema = Schema([ColumnDef("key"), ColumnDef("value")])
        handle = backend.ingest(Table.empty(schema))
        assert backend.collect(backend.filter(handle, "key", ">", 0)).num_rows == 0
        assert backend.collect(backend.aggregate(handle, "key", "value", "sum", "t")).num_rows == 0

    def test_collect_of_empty_partitioned_relation(self):
        schema = Schema([ColumnDef("key")])
        relation = PartitionedRelation(schema, [Table.empty(schema)])
        assert relation.collect().num_rows == 0

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(ValueError):
            SparkBackend(default_partitions=0)

    def test_reset_meter(self):
        backend = SparkBackend()
        backend.ingest(uniform_key_value_table(10, 3, seed=8))
        backend.reset_meter()
        assert backend.stats.jobs == 0
        assert backend.elapsed_seconds() == pytest.approx(0.0)


class TestPythonSpecifics:
    def test_elapsed_zero_before_any_work(self):
        assert PythonBackend().elapsed_seconds() == 0.0

    def test_elapsed_grows_with_records(self):
        backend = PythonBackend()
        h = backend.ingest(uniform_key_value_table(1000, 3, seed=9))
        backend.project(h, ["key"])
        small = backend.elapsed_seconds()
        backend.project(h, ["key"])
        assert backend.elapsed_seconds() > small

    def test_reset_meter(self):
        backend = PythonBackend()
        h = backend.ingest(uniform_key_value_table(10, 3, seed=10))
        backend.project(h, ["key"])
        backend.reset_meter()
        assert backend.elapsed_seconds() == 0.0


@given(
    rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50)), min_size=1, max_size=30),
    partitions=st.integers(1, 5),
)
@settings(max_examples=25, deadline=None)
def test_spark_aggregation_equals_reference_property(rows, partitions):
    schema = Schema([ColumnDef("key"), ColumnDef("value")])
    table = Table.from_rows(schema, rows)
    backend = SparkBackend(default_partitions=partitions)
    result = backend.collect(backend.aggregate(backend.ingest(table), "key", "value", "sum", "t"))
    assert result.equals_unordered(table.aggregate(["key"], "value", "sum", "t"))
