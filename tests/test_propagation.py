"""Tests for ownership and trust-set propagation (§5.1)."""

import pytest

import repro as cc
from repro.core.lang import QueryContext
from repro.core.propagation import (
    intersect_trust,
    mark_mpc_frontier,
    propagate_ownership,
    propagate_trust,
)
from repro.data.schema import PUBLIC

PA, PB, PC = cc.Party("a.example"), cc.Party("b.example"), cc.Party("c.example")


def prepare(dag):
    propagate_ownership(dag)
    mark_mpc_frontier(dag)
    propagate_trust(dag)
    return dag


class TestIntersectTrust:
    def test_public_acts_as_universe(self):
        assert intersect_trust(frozenset({PUBLIC}), frozenset({"a"})) == {"a"}
        assert intersect_trust(frozenset({"a"}), frozenset({PUBLIC})) == {"a"}
        assert intersect_trust(frozenset({PUBLIC}), frozenset({PUBLIC})) == {PUBLIC}

    def test_plain_intersection(self):
        assert intersect_trust(frozenset({"a", "b"}), frozenset({"b", "c"})) == {"b"}
        assert intersect_trust(frozenset({"a"}), frozenset({"b"})) == frozenset()


class TestOwnership:
    def test_single_party_chain_keeps_owner(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", [cc.Column("k"), cc.Column("v")], at=PA)
            result = t.project(["k"]).filter("k", ">", 0).aggregate("c", cc.COUNT, group=["k"])
            result.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        for node in dag.topological():
            assert node.out_rel.owner == PA.name
            assert not node.is_mpc

    def test_combining_two_parties_loses_owner_and_needs_mpc(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=PA)
            t2 = ctx.new_table("t2", [cc.Column("k"), cc.Column("v")], at=PB)
            combined = ctx.concat([t1, t2])
            agg = combined.aggregate("total", cc.SUM, group=["k"], over="v")
            agg.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        assert combined.node.out_rel.owner is None
        assert combined.node.is_mpc
        assert agg.node.is_mpc
        assert combined.node.out_rel.stored_with == {PA.name, PB.name}

    def test_join_of_two_owners_needs_mpc(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=PA)
            t2 = ctx.new_table("t2", [cc.Column("k"), cc.Column("w")], at=PB)
            joined = t1.join(t2, left=["k"], right=["k"])
            joined.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        assert joined.node.is_mpc
        assert joined.node.out_rel.owner is None

    def test_collect_runs_at_recipient(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", [cc.Column("k")], at=PA)
            t2 = ctx.new_table("t2", [cc.Column("k")], at=PB)
            out = ctx.concat([t1, t2]).collect("out", to=[PC])
            dag = prepare(ctx.build_dag())
        collect = dag.outputs()[0]
        assert not collect.is_mpc
        assert collect.run_at == PC.name
        assert collect.out_rel.stored_with == {PC.name}

    def test_row_estimates_propagate(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", [cc.Column("k"), cc.Column("v")], at=PA, estimated_rows=100)
            t2 = ctx.new_table("t2", [cc.Column("k"), cc.Column("v")], at=PB, estimated_rows=50)
            combined = ctx.concat([t1, t2])
            filtered = combined.filter("v", ">", 0)
            agg = filtered.aggregate("c", cc.COUNT, group=["k"])
            agg.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        assert combined.node.out_rel.estimated_rows == 150
        assert filtered.node.out_rel.estimated_rows == 75
        assert agg.node.out_rel.estimated_rows == 7

    def test_unknown_input_rows_propagate_as_none(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", [cc.Column("k")], at=PA)
            out = t1.project(["k"])
            out.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        assert out.node.out_rel.estimated_rows is None


class TestTrustPropagation:
    def build_credit_like_dag(self):
        with QueryContext() as ctx:
            demo = ctx.new_table("demo", [cc.Column("ssn"), cc.Column("zip")], at=PA)
            s1 = ctx.new_table(
                "s1", [cc.Column("ssn", trust=[PA]), cc.Column("score")], at=PB
            )
            s2 = ctx.new_table(
                "s2", [cc.Column("ssn", trust=[PA]), cc.Column("score")], at=PC
            )
            scores = ctx.concat([s1, s2])
            joined = demo.join(scores, left=["ssn"], right=["ssn"])
            agg = joined.aggregate("total", cc.SUM, group=["zip"], over="score")
            agg.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        return dag, scores, joined, agg

    def test_concat_intersects_trust(self):
        _, scores, _, _ = self.build_credit_like_dag()
        # Both banks trust the regulator (PA) with ssn; the intersection drops
        # each bank's implicit self-trust.
        assert scores.node.out_rel.column_trust("ssn") == {PA.name}
        assert scores.node.out_rel.column_trust("score") == frozenset()

    def test_join_key_trust_flows_to_output_columns(self):
        _, _, joined, _ = self.build_credit_like_dag()
        rel = joined.node.out_rel
        assert rel.column_trust("ssn") == {PA.name}
        # Non-key columns are filtered by the join key, so they inherit the
        # key's trust intersection as well.
        assert rel.column_trust("zip") == {PA.name}
        assert rel.column_trust("score") == frozenset()

    def test_aggregate_group_and_value_trust(self):
        _, _, _, agg = self.build_credit_like_dag()
        rel = agg.node.out_rel
        assert rel.column_trust("zip") == {PA.name}
        assert rel.column_trust("total") == frozenset()

    def test_public_columns_stay_public_through_operators(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table(
                "t1", [cc.Column("pid", public=True), cc.Column("diag")], at=PA
            )
            t2 = ctx.new_table(
                "t2", [cc.Column("pid", public=True), cc.Column("med")], at=PB
            )
            joined = t1.join(t2, left=["pid"], right=["pid"])
            joined.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        rel = joined.node.out_rel
        assert PUBLIC in rel.column_trust("pid")
        # Private columns joined on a public key keep only their own trust.
        assert rel.column_trust("diag") == {PA.name}
        assert rel.column_trust("med") == {PB.name}

    def test_filter_column_trust_restricts_other_columns(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table(
                "t1", [cc.Column("k", trust=[PB]), cc.Column("v", public=True)], at=PA
            )
            t2 = ctx.new_table(
                "t2", [cc.Column("k", trust=[PB]), cc.Column("v", public=True)], at=PB
            )
            filtered = ctx.concat([t1, t2]).filter("k", ">", 0)
            filtered.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        rel = filtered.node.out_rel
        # v was public, but its rows are now selected by the private column k,
        # so its trust set shrinks to k's trust set.
        assert rel.column_trust("v") == {PB.name}

    def test_arithmetic_trust_intersection(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table(
                "t1",
                [cc.Column("a", trust=[PB, PC]), cc.Column("b", trust=[PB])],
                at=PA,
            )
            t2 = ctx.new_table(
                "t2",
                [cc.Column("a", trust=[PB, PC]), cc.Column("b", trust=[PB])],
                at=PB,
            )
            combined = ctx.concat([t1, t2])
            product = combined.multiply("ab", "a", "b")
            scaled = product.multiply("a2", "a", 2)
            scaled.collect("out", to=[PA])
            dag = prepare(ctx.build_dag())
        rel = product.node.out_rel
        assert rel.column_trust("ab") == {PB.name}
        assert scaled.node.out_rel.column_trust("a2") == {PB.name, PC.name}
