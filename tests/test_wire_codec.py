"""Property tests for the self-describing wire codec and wire-layer bugfixes.

Mirrors :mod:`tests.test_wire_props` (seeded generation, no external
property-testing dependency) but targets the codec layer itself: every
frame kind the runtime ships round-trips byte-exactly (including >64 KiB
NumPy payloads, repro dataclasses, enums, exception envelopes, shared
references and cycles), truncated or corrupted codec payloads are rejected
with :class:`WireError` rather than silently misdecoded, and the legacy
pickle fallback can be switched off entirely.

Also holds the regression tests for the three wire-layer bugfixes:

* ``RestrictedUnpickler.find_class`` must never *import* a module while
  resolving an exception class — hostile frames naming an importable
  module used to trigger its import side effects on every party;
* ``send_torn_frame`` must always leave the receiver genuinely mid-frame
  (header plus at least one payload byte, never the whole frame) and
  refuse frames too small to tear — tiny frames used to send the header
  only;
* ``mesh._endpoint`` must not silently rewrite a bare advertised port to
  loopback: it now warns on loopback sessions and raises on multi-host
  ones, where the silent rewrite dialled the wrong machine.
"""

import pickle
import socket
import sys
import threading

import numpy as np
import pytest

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.runtime.mesh import _endpoint
from repro.runtime.transport import TransportError
from repro.runtime.wire import (
    CODEC_MAGIC,
    FrameDecoder,
    UnsupportedPayload,
    WireError,
    decode_payload,
    encode_frame,
    encode_payload,
    recv_frame,
    restricted_loads,
    send_torn_frame,
    set_pickle_fallback,
)
from repro.runtime import wire

SEED = 20260808


@pytest.fixture
def no_pickle():
    """Run the enclosed test with the legacy pickle fallback disabled."""
    set_pickle_fallback(False)
    try:
        yield
    finally:
        set_pickle_fallback(None)


def roundtrip(obj):
    data = encode_payload(obj)
    assert data[0] == CODEC_MAGIC
    return decode_payload(data)


def deep_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return (
            isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return type(a) is type(b) and len(a) == len(b) and all(
            deep_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and set(a) == set(b)
            and all(deep_equal(a[k], b[k]) for k in a)
        )
    if isinstance(a, float) and a != a:
        return isinstance(b, float) and b != b
    return type(a) is type(b) and a == b


# -- round-trips of every frame kind ---------------------------------------------------------


PRIMITIVES = [
    None, True, False, 0, 1, -1, 2**80, -(2**80), 0.0, -1.5, float("inf"),
    complex(1.5, -2.5), "", "héllo wörld", "x" * 5000, b"", b"\x00\xff" * 300,
    [], (), {}, set(), frozenset(), [1, [2, [3]]], (1, (2, (3,))),
    {"k": 1, 2: "v", None: (1, 2)}, {1, 2, 3}, frozenset({"a", "b"}),
]


@pytest.mark.parametrize("value", PRIMITIVES, ids=[repr(v)[:30] for v in PRIMITIVES])
def test_primitive_round_trips(value, no_pickle):
    assert deep_equal(roundtrip(value), value)


def test_nan_round_trips(no_pickle):
    got = roundtrip(float("nan"))
    assert isinstance(got, float) and got != got


def test_bytearray_round_trips(no_pickle):
    got = roundtrip(bytearray(b"abc"))
    assert isinstance(got, bytearray) and got == b"abc"


@pytest.mark.parametrize("case", range(10))
def test_random_ndarrays_round_trip(case, no_pickle):
    rng = np.random.default_rng(SEED + case)
    dtype = rng.choice(["int64", "uint64", "int32", "float64", "complex128", "bool"])
    shape = tuple(int(rng.integers(0, 7)) for _ in range(int(rng.integers(0, 4))))
    arr = (rng.integers(-100, 100, size=shape) if dtype != "bool"
           else rng.integers(0, 2, size=shape)).astype(dtype)
    got = roundtrip(arr)
    assert deep_equal(got, arr)


def test_large_ndarray_round_trips(no_pickle):
    """Arrays well past one 64 KiB socket buffer are ordinary payloads."""
    rng = np.random.default_rng(SEED)
    arr = rng.integers(0, 2**63, size=(1 << 14,), dtype=np.uint64)  # 128 KiB
    assert arr.nbytes > (1 << 16)
    assert deep_equal(roundtrip(arr), arr)


def test_non_contiguous_and_zero_dim_arrays(no_pickle):
    base = np.arange(24, dtype=np.int64).reshape(4, 6)
    views = [base[:, ::2], base.T, np.array(7, dtype=np.int64)]
    for view in views:
        got = roundtrip(view)
        assert got.shape == view.shape and np.array_equal(got, view)


def test_numpy_scalars_round_trip(no_pickle):
    for scalar in (np.int64(-9), np.uint64(2**63), np.float64(1.25),
                   np.bool_(True), np.datetime64("2026-08-08")):
        got = roundtrip(scalar)
        assert got == scalar and got.dtype == scalar.dtype


def test_repro_dataclasses_and_enums_round_trip(no_pickle):
    table = Table(Schema([ColumnDef("k"), ColumnDef("v", ColumnType.FLOAT)]),
                  [np.arange(5), np.arange(5) * 0.5])
    got = roundtrip({"outputs": {"out": table}, "type": ColumnType.FLOAT})
    out = got["outputs"]["out"]
    assert type(out) is Table
    assert out.schema.names == table.schema.names
    assert sorted(out.rows()) == sorted(table.rows())
    assert got["type"] is ColumnType.FLOAT


def test_exception_envelopes_round_trip(no_pickle):
    exc = TransportError("mesh link died")
    exc.party = "P1"
    got = roundtrip(("error", 7, exc, "traceback..."))
    assert type(got[2]) is TransportError
    assert got[2].args == ("mesh link died",)
    assert got[2].party == "P1"
    builtin = roundtrip(TimeoutError("t", 42))
    assert type(builtin) is TimeoutError and builtin.args == ("t", 42)


def test_unresolvable_exception_decodes_to_runtimeerror(no_pickle):
    """An exception class the receiver cannot resolve (without importing
    anything) degrades to a descriptive RuntimeError, never an import."""
    data = bytearray(encode_payload(ValueError("x")))
    # Rewrite the module string "builtins" to an equal-length name that is
    # certainly not loaded.
    idx = bytes(data).find(b"builtins")
    data[idx:idx + 8] = b"evil_mod"
    got = decode_payload(bytes(data))
    assert isinstance(got, RuntimeError)
    assert "evil_mod" in str(got)
    assert "evil_mod" not in sys.modules


def test_shared_references_are_preserved(no_pickle):
    shared = [1, 2, 3]
    arr = np.arange(4)
    obj = {"a": shared, "b": shared, "t": (shared, arr), "u": [arr]}
    got = roundtrip(obj)
    assert got["a"] is got["b"] is got["t"][0]
    assert got["t"][1] is got["u"][0]


def test_cycles_round_trip(no_pickle):
    cyc = {"name": "root"}
    cyc["self"] = cyc
    lst = [cyc]
    cyc["list"] = lst
    got = roundtrip(cyc)
    assert got["self"] is got
    assert got["list"][0] is got


def test_mesh_frame_shapes_round_trip(no_pickle):
    frames = [
        (3, "msg", 1, ("P1", "P2", ("open-share", np.arange(9, dtype=np.uint64)), 72)),
        (4, "table", 2, ("rel", Table(Schema([ColumnDef("x")]), [np.arange(3)]))),
        (5, "abort", 1, "executor failed"),
        ("hello", "P1", "a" * 32),
        ("rejoin-hello", "P2", 3, "a" * 32),
    ]
    decoder = FrameDecoder()
    blob = b"".join(encode_frame(f) for f in frames)
    got = decoder.feed(blob)
    decoder.eof()
    assert len(got) == len(frames)
    for sent, received in zip(frames, got):
        assert type(received) is tuple and len(received) == len(sent)


# -- corruption and truncation rejection -----------------------------------------------------


@pytest.mark.parametrize("case", range(10))
def test_truncated_codec_payloads_are_rejected(case, no_pickle):
    rng = np.random.default_rng(SEED + case)
    payload = encode_payload({"k": list(range(50)), "arr": np.arange(100)})
    cut = int(rng.integers(1, len(payload) - 1))
    with pytest.raises(WireError):
        decode_payload(payload[:cut])


def test_trailing_bytes_are_rejected(no_pickle):
    with pytest.raises(WireError, match="trailing"):
        decode_payload(encode_payload([1, 2]) + b"\x00")


def test_unknown_tag_is_rejected(no_pickle):
    with pytest.raises(WireError, match="unknown tag"):
        decode_payload(bytes([CODEC_MAGIC, 0x7E]))


def test_dangling_memo_reference_is_rejected(no_pickle):
    with pytest.raises(WireError, match="memo"):
        decode_payload(bytes([CODEC_MAGIC, 0x13, 0x05]))


def test_object_dtype_is_rejected_both_ways(no_pickle):
    with pytest.raises(UnsupportedPayload):
        encode_payload(np.array([object()], dtype=object))
    # A forged frame claiming an object dtype must be refused at decode.
    forged = bytearray(encode_payload(np.arange(2)))
    idx = bytes(forged).find(b"<i8")
    forged[idx:idx + 3] = b"|O8"
    with pytest.raises(WireError):
        decode_payload(bytes(forged))


def test_non_repro_class_is_rejected_both_ways(no_pickle):
    class Outside:
        pass

    with pytest.raises(WireError, match="pickle\\s+fallback is disabled"):
        encode_frame(Outside())
    # A forged OBJ frame naming a non-repro class must be refused at decode.
    table = Table(Schema([ColumnDef("x")]), [np.arange(2)])
    forged = bytes(encode_payload(table)).replace(b"repro.data.table", b"subprocess.abcde")
    with pytest.raises(WireError, match="non-repro"):
        decode_payload(forged)


def test_pickle_frames_are_rejected_when_fallback_disabled(no_pickle):
    data = pickle.dumps({"k": 1}, protocol=pickle.HIGHEST_PROTOCOL)
    header = len(data).to_bytes(4, "big")
    decoder = FrameDecoder()
    with pytest.raises(WireError, match="pickle"):
        decoder.feed(header + data)


def test_pickle_disable_via_environment(monkeypatch):
    monkeypatch.setenv("REPRO_WIRE_PICKLE", "0")
    with pytest.raises(WireError, match="disabled"):
        encode_frame(_OutsideCodec())
    monkeypatch.setenv("REPRO_WIRE_PICKLE", "1")
    assert isinstance(encode_frame(_OutsideCodec()), bytes)


class _OutsideCodec:
    """A class outside the repro package: forces the pickle fallback."""

    def __init__(self):
        self.marker = 41


def test_interleaved_codec_and_legacy_pickle_frames_decode_when_fallback_enabled():
    """A legacy peer's pickle frames interleave with codec frames on one link."""
    set_pickle_fallback(True)
    try:
        legacy = pickle.dumps(
            {"k": [1, 2], "arr": "legacy"}, protocol=pickle.HIGHEST_PROTOCOL
        )
        blob = (
            encode_frame(1) + len(legacy).to_bytes(4, "big") + legacy + encode_frame("after")
        )
        decoder = FrameDecoder()
        got = decoder.feed(blob)
        decoder.eof()
        assert got == [1, {"k": [1, 2], "arr": "legacy"}, "after"]
    finally:
        set_pickle_fallback(None)


# -- bugfix regression: find_class must not import modules -----------------------------------


class TestFindClassNeverImports:
    def _hostile_pickle(self, module: str, name: str) -> bytes:
        # A raw GLOBAL opcode naming module.name, exactly what a hostile
        # frame would carry: protocol 2 prefix, then c<module>\n<name>\n.
        return b"\x80\x02c" + module.encode() + b"\n" + name.encode() + b"\n."

    def test_unloaded_module_is_never_imported(self, tmp_path, monkeypatch):
        """Resolving an exception class must consult sys.modules only —
        naming an importable-but-unloaded module must not import it (the
        pre-fix unpickler ran the module's top-level code here)."""
        marker = tmp_path / "imported.marker"
        mod_name = "wire_codec_hostile_mod"
        (tmp_path / f"{mod_name}.py").write_text(
            "from pathlib import Path\n"
            f"Path({str(marker)!r}).write_text('imported')\n"
            "class Boom(Exception):\n    pass\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        sys.modules.pop(mod_name, None)
        with pytest.raises(WireError, match="forbidden global"):
            restricted_loads(self._hostile_pickle(mod_name, "Boom"))
        assert mod_name not in sys.modules
        assert not marker.exists(), "hostile frame triggered a module import"

    def test_loaded_module_exception_still_resolves(self):
        got = restricted_loads(pickle.dumps(TimeoutError("t")))
        assert isinstance(got, TimeoutError)

    def test_loaded_module_non_exception_still_rejected(self):
        with pytest.raises(WireError, match="forbidden global"):
            restricted_loads(self._hostile_pickle("threading", "Thread"))


# -- bugfix regression: send_torn_frame must tear inside the payload -------------------------


class TestSendTornFrame:
    def test_tiny_frame_raises_instead_of_sending_header_only(self, monkeypatch):
        """A frame with a 1-byte payload cannot be torn mid-payload; the
        pre-fix code sent the 4-byte header only and returned."""
        monkeypatch.setattr(wire, "encode_frame", lambda obj: b"\x00\x00\x00\x01X")
        a, b = socket.socketpair()
        try:
            with pytest.raises(WireError, match="too small to tear"):
                send_torn_frame(a, "ignored")
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.6, 0.99, 1.0])
    def test_cut_always_lands_inside_the_payload(self, fraction):
        payload = {"k": np.arange(64)}
        full = len(encode_frame(payload))
        a, b = socket.socketpair()
        try:
            sent = send_torn_frame(a, payload, fraction)
            assert 5 <= sent <= full - 1, "tear must keep >=1 and omit >=1 payload byte"
            a.close()
            b.settimeout(5.0)
            with pytest.raises(WireError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_receiver_is_inside_the_frame_even_for_minimal_frames(self, monkeypatch):
        monkeypatch.setattr(wire, "encode_frame", lambda obj: b"\x00\x00\x00\x02XY")
        a, b = socket.socketpair()
        try:
            sent = send_torn_frame(a, "ignored")
            assert sent == 5  # header + exactly one of the two payload bytes
            a.close()
            b.settimeout(5.0)
            with pytest.raises(WireError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()


# -- bugfix regression: _endpoint must not silently assume loopback --------------------------


class TestEndpointNormalisation:
    def test_bare_port_on_loopback_session_warns(self):
        with pytest.warns(DeprecationWarning, match="bare advertised ports"):
            assert _endpoint(4000) == ("127.0.0.1", 4000)
        with pytest.warns(DeprecationWarning):
            assert _endpoint(4000, "localhost") == ("127.0.0.1", 4000)

    def test_bare_port_on_multi_host_session_raises(self):
        """Pre-fix, a stale bare-port hello on a routable session silently
        dialled 127.0.0.1 — the wrong machine."""
        with pytest.raises(WireError, match="multi-host"):
            _endpoint(4000, "10.0.0.7")

    def test_full_endpoints_pass_through_unwarned(self, recwarn):
        assert _endpoint(("10.0.0.7", 4000), "10.0.0.7") == ("10.0.0.7", 4000)
        assert _endpoint(["192.168.1.9", 81], "127.0.0.1") == ("192.168.1.9", 81)
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]
