"""Shared fixtures for the test suite."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.mpc.secretshare import SecretSharingEngine

PARTIES = ["alpha.example", "beta.example", "gamma.example"]


@pytest.fixture(autouse=True)
def _no_leaked_agent_processes():
    """Close leaked sessions and kill leaked agent processes after each test.

    The socket runtime spawns one OS process per party, and service mode
    keeps them alive inside sessions; a test that fails mid-handshake or
    forgets to close a session could otherwise leave agents blocked on
    socket reads.  Every agent is daemonic and every blocking read has a
    timeout, but this guard makes leaks impossible regardless: sessions
    (including the shared ``runtime="service"`` ones) are closed first, then
    anything still alive is killed.
    """
    yield
    from repro.runtime import service
    from repro.runtime.coordinator import active_agent_processes

    service.close_shared_sessions()
    for session in list(service._ACTIVE_SESSIONS):
        try:
            session.close(drain=False)
        except Exception:
            pass

    leaked = list(active_agent_processes())
    leaked += [
        p for p in multiprocessing.active_children()
        if p.name.startswith("conclave-agent-") and p not in leaked
    ]
    for proc in leaked:
        proc.terminate()
        proc.join(timeout=5)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5)


@pytest.fixture
def kv_schema() -> Schema:
    """A simple (key, value) integer schema."""
    return Schema([ColumnDef("key"), ColumnDef("value")])


@pytest.fixture
def kv_table(kv_schema) -> Table:
    """A small (key, value) table with duplicate keys."""
    return Table.from_rows(
        kv_schema,
        [(1, 10), (2, 20), (1, 30), (3, 40), (2, 50), (4, 60)],
    )


@pytest.fixture
def other_kv_table(kv_schema) -> Table:
    """A second (key, value) table for join tests."""
    return Table.from_rows(kv_schema, [(1, 100), (2, 200), (5, 500)])


@pytest.fixture
def engine() -> SecretSharingEngine:
    """A three-party secret-sharing engine with a fixed seed."""
    return SecretSharingEngine(PARTIES, seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)


def make_table(columns: dict[str, list[int]], float_cols: set[str] | None = None) -> Table:
    """Helper for building small tables inline in tests."""
    float_cols = float_cols or set()
    defs = [
        ColumnDef(name, ColumnType.FLOAT if name in float_cols else ColumnType.INT)
        for name in columns
    ]
    return Table(Schema(defs), [np.asarray(v) for v in columns.values()])
