"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.mpc.secretshare import SecretSharingEngine

PARTIES = ["alpha.example", "beta.example", "gamma.example"]


@pytest.fixture
def kv_schema() -> Schema:
    """A simple (key, value) integer schema."""
    return Schema([ColumnDef("key"), ColumnDef("value")])


@pytest.fixture
def kv_table(kv_schema) -> Table:
    """A small (key, value) table with duplicate keys."""
    return Table.from_rows(
        kv_schema,
        [(1, 10), (2, 20), (1, 30), (3, 40), (2, 50), (4, 60)],
    )


@pytest.fixture
def other_kv_table(kv_schema) -> Table:
    """A second (key, value) table for join tests."""
    return Table.from_rows(kv_schema, [(1, 100), (2, 200), (5, 500)])


@pytest.fixture
def engine() -> SecretSharingEngine:
    """A three-party secret-sharing engine with a fixed seed."""
    return SecretSharingEngine(PARTIES, seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)


def make_table(columns: dict[str, list[int]], float_cols: set[str] | None = None) -> Table:
    """Helper for building small tables inline in tests."""
    float_cols = float_cols or set()
    defs = [
        ColumnDef(name, ColumnType.FLOAT if name in float_cols else ColumnType.INT)
        for name in columns
    ]
    return Table(Schema(defs), [np.asarray(v) for v in columns.values()])
