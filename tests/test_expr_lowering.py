"""Expression lowering: AST structure, backend parity, and plan invariants.

Covers the expression-API tentpole:

* AST construction and structural analyses (columns, conjuncts, booleans);
* lowering of compound predicates, arithmetic, multi-key joins and
  multi-aggregate group-bys into the fixed operator vocabulary;
* the same expression query executed on every backend combination
  (PythonBackend, SparkBackend, Sharemind-style and Obliv-C-style MPC)
  produces identical outputs and an unchanged LeakageReport;
* acceptance invariants: the credit-card query is one aggregate call with
  two aggregates plus a compound filter variant, compiles with the same MPC
  operator count as the pre-redesign plan, and all four paper queries give
  byte-identical outputs under the new API;
* concurrency safety of query construction (ContextVar stack) and eager
  validation of filter operators.
"""

import threading
import warnings

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.expr import BooleanOp, Comparison, Negation, col, conjuncts, lit
from repro.core.lang import QueryContext
from repro.core.operators import BoolOp, Compare, Filter, Map, Multiply
from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table
from repro.queries import (
    aspirin_count_query,
    comorbidity_query,
    credit_card_regulation_query,
    market_concentration_query,
)
from repro.workloads.credit import CreditWorkload
from repro.workloads.healthlnk import HealthLNKWorkload
from repro.workloads.taxi import TaxiWorkload

PA, PB = cc.Party("alpha.example"), cc.Party("beta.example")

ABC_SCHEMA = Schema([ColumnDef("a"), ColumnDef("b"), ColumnDef("c")])
ABC_ROWS = [(1, 10, 2), (2, 20, 3), (1, 30, 2), (3, 40, 5), (2, 50, 3), (4, 0, 7)]


def abc_columns():
    return [cc.Column("a", cc.INT), cc.Column("b", cc.INT), cc.Column("c", cc.INT)]


class TestExpressionAst:
    def test_columns_of_compound_expression(self):
        expression = ((col("a") + 1) * col("b") > 3) & ~(col("c") == 0)
        assert expression.columns() == {"a", "b", "c"}

    def test_conjunction_flattens(self):
        expression = (col("a") > 0) & (col("b") > 1) & (col("c") > 2)
        assert len(conjuncts(expression)) == 3

    def test_boolean_operators_require_predicates(self):
        with pytest.raises(TypeError):
            col("a") & col("b")
        with pytest.raises(TypeError):
            ~col("a")
        # Both operand positions are validated.
        with pytest.raises(TypeError):
            col("a") | (col("b") > 1)
        with pytest.raises(TypeError):
            (col("b") > 1) & col("a")
        with pytest.raises(TypeError):
            BooleanOp("or", (col("a"), col("b") > 1))

    def test_expressions_have_no_truth_value(self):
        with pytest.raises(TypeError, match="no truth value"):
            bool(col("a") > 0)

    def test_comparison_normalises_literal_to_the_right(self):
        norm = (lit(5) > col("a")).normalised()
        assert norm.op == "<" and norm.left.name == "a"

    def test_negation_and_disjunction_build_expected_nodes(self):
        expression = (col("a") == 1) | ~(col("b") == 2)
        assert isinstance(expression, BooleanOp) and expression.op == "or"
        assert isinstance(expression.operands[1], Negation)
        assert isinstance(expression.operands[0], Comparison)

    def test_lit_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            lit("nope")
        with pytest.raises(TypeError):
            col("a") + "nope"


class TestFilterLowering:
    def build(self, predicate):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            out = t.filter(predicate)
        return ctx, out

    def test_simple_predicate_lowers_to_one_filter(self):
        _, out = self.build(col("b") > 10)
        assert isinstance(out.node, Filter)
        assert (out.node.column, out.node.op, out.node.value) == ("b", ">", 10)
        assert out.schema.names == ["a", "b", "c"]

    def test_conjunction_lowers_to_filter_chain(self):
        _, out = self.build((col("b") > 10) & (col("a") == 1))
        assert isinstance(out.node, Filter)
        assert isinstance(out.node.parent, Filter)
        assert out.schema.names == ["a", "b", "c"]

    def test_disjunction_lowers_to_mask_and_projects_temporaries_away(self):
        _, out = self.build((col("b") > 10) | (col("a") == 1))
        # Final schema is clean: the mask and compare temporaries are gone.
        assert out.schema.names == ["a", "b", "c"]
        # A BoolOp and Compare appear in the lowered chain.
        ops = set()
        node = out.node
        while node.parents:
            ops.add(type(node).__name__)
            node = node.parents[0]
        assert {"Project", "Filter", "BoolOp", "Compare"} <= ops

    def test_negated_simple_comparison_lowers_to_complementary_filter(self):
        _, out = self.build(~(col("a") == 1))
        assert isinstance(out.node, Filter)
        assert (out.node.column, out.node.op, out.node.value) == ("a", "!=", 1)
        _, out = self.build((col("b") > 10) & ~(col("a") >= 3))
        assert isinstance(out.node, Filter)
        assert (out.node.op, out.node.value) == ("<", 3)
        assert isinstance(out.node.parent, Filter)

    def test_ordering_comparisons_exact_at_boundaries_under_mpc(self):
        """'>' and '<=' (single-comparison lowering) are exact at v and v±1."""
        rows = [(1, 9, 0), (2, 10, 0), (3, 11, 0)]
        for op, expected_b in (
            (col("b") > 10, {11}),
            (col("b") <= 10, {9, 10}),
            (col("b") >= 10, {10, 11}),
            (col("b") < 10, {9}),
        ):
            with QueryContext() as ctx:
                t1 = ctx.new_table("t1", abc_columns(), at=PA)
                t2 = ctx.new_table("t2", abc_columns(), at=PB)
                ctx.concat([t1, t2]).filter(op).collect("out", to=[PA])
            inputs = {
                PA.name: {"t1": Table.from_rows(ABC_SCHEMA, rows)},
                PB.name: {"t2": Table.from_rows(ABC_SCHEMA, rows)},
            }
            config = CompilationConfig(enable_push_down=False)
            out = cc.run_query(ctx, inputs, config).outputs["out"]
            assert set(out.column("b").tolist()) == expected_b

    def test_fractional_constant_agrees_across_backends(self):
        """INT column vs fractional constant: MPC matches cleartext exactly."""
        rows = [(1, 2, 0), (2, 3, 0)]
        outputs = {}
        for mpc in ("sharemind", "obliv-c"):
            with QueryContext() as ctx:
                t1 = ctx.new_table("t1", abc_columns(), at=PA)
                t2 = ctx.new_table("t2", abc_columns(), at=PB)
                kept = ctx.concat([t1, t2]).filter((col("b") < 2.5) | (col("b") == 2.5))
                kept.collect("out", to=[PA])
            config = CompilationConfig(mpc_backend=mpc, enable_push_down=False)
            inputs = {
                PA.name: {"t1": Table.from_rows(ABC_SCHEMA, rows)},
                PB.name: {"t2": Table.from_rows(ABC_SCHEMA, rows)},
            }
            outputs[mpc] = sorted(
                cc.run_query(ctx, inputs, config).outputs["out"].rows()
            )
        expected = sorted([r for r in rows + rows if r[1] < 2.5])
        assert outputs["sharemind"] == expected
        assert outputs["obliv-c"] == expected

    def test_mixed_conjunction_keeps_simple_tests_on_the_filter_fast_path(self):
        _, out = self.build((col("a") > 0) & ((col("b") > 10) | (col("c") == 7)))
        # The simple conjunct becomes a classic Filter *below* the mask
        # machinery, so it shrinks rows before any Compare/BoolOp runs.
        chain = []
        node = out.node
        while node.parents:
            chain.append(node)
            node = node.parents[0]
        filters = [n for n in chain if isinstance(n, Filter)]
        assert any((f.column, f.op, f.value) == ("a", ">", 0) for f in filters)
        compares = [n for n in chain if n.op_name == "compare"]
        assert all(n.left != "a" for n in compares)
        assert out.schema.names == ["a", "b", "c"]

    def test_column_vs_column_comparison_is_supported(self):
        _, out = self.build(col("b") > col("a"))
        assert out.schema.names == ["a", "b", "c"]
        reference = Table.from_rows(ABC_SCHEMA, ABC_ROWS)
        result = cc.run_query(
            self._collected(col("b") > col("a")), {PA.name: {"t": reference}}
        ).outputs["out"]
        expected = [r for r in reference.rows() if r[1] > r[0]]
        assert sorted(result.rows()) == sorted(expected)

    def _collected(self, predicate):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            t.filter(predicate).collect("out", to=[PA])
        return ctx

    def test_filter_validates_columns_eagerly(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            with pytest.raises(KeyError, match="nope"):
                t.filter(col("nope") > 0)

    def test_legacy_filter_validates_operator_eagerly(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                with pytest.raises(ValueError, match=r"=>.*supported operators.*<="):
                    t.filter("a", "=>", 1)


class TestWithColumnLowering:
    def run_with_column(self, expression, rows=ABC_ROWS):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            t.with_column("x", expression).collect("out", to=[PA])
        table = Table.from_rows(ABC_SCHEMA, rows)
        return cc.run_query(ctx, {PA.name: {"t": table}}).outputs["out"]

    def test_schema_is_input_plus_one_column(self):
        out = self.run_with_column(col("a") * col("b") + 1)
        assert out.schema.names == ["a", "b", "c", "x"]

    def test_arithmetic_values(self):
        out = self.run_with_column((col("a") + col("b")) * 2 - col("c"))
        for a, b, c_val, x in out.rows():
            assert x == (a + b) * 2 - c_val

    def test_scalar_minus_column(self):
        out = self.run_with_column(100 - col("b"))
        for _, b, _, x in out.rows():
            assert x == 100 - b

    def test_scalar_divided_by_column(self):
        out = self.run_with_column(lit(10) / col("c"))
        for _, _, c_val, x in out.rows():
            assert x == pytest.approx(10 / c_val, abs=1e-6)

    def test_constant_folding_produces_single_operator(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            out = t.with_column("x", col("a") * (lit(2) + lit(3)))
        assert isinstance(out.node, Multiply)
        assert out.node.right == 5

    def test_literal_column(self):
        out = self.run_with_column(lit(7))
        assert set(out.column("x").tolist()) == {7}

    def test_boolean_expression_as_column(self):
        out = self.run_with_column((col("b") > 10) & (col("c") == 3))
        for _, b, c_val, x in out.rows():
            assert x == int(b > 10 and c_val == 3)

    def test_with_column_name_lands_on_the_result_relation(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            single = t.with_column("x", col("a") * 2, name="doubled")
            compound = t.with_column("y", col("a") + col("b") * 2, name="scored")
        assert single.name == "doubled"
        assert compound.name == "scored"

    def test_with_column_rejects_existing_name(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            with pytest.raises(ValueError, match="already exists"):
                t.with_column("a", col("b") + 1)


class TestMultiKeyJoin:
    def test_two_column_join_matches_cleartext_reference(self):
        left_rows = [(1, 2, 10), (1, 3, 20), (2, 2, 30), (4, 4, 40)]
        right_rows = [(1, 2, 100), (2, 2, 200), (1, 9, 300)]
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table(
                "t2",
                [cc.Column("a", cc.INT), cc.Column("b", cc.INT), cc.Column("d", cc.INT)],
                at=PB,
            )
            joined = t1.join(t2, on=["a", "b"])
            joined.collect("out", to=[PA, PB])
        assert joined.schema.names == ["a", "b", "c", "d"]

        inputs = {
            PA.name: {"t1": Table.from_rows(ABC_SCHEMA, left_rows)},
            PB.name: {
                "t2": Table.from_rows(
                    Schema([ColumnDef("a"), ColumnDef("b"), ColumnDef("d")]), right_rows
                )
            },
        }
        result = cc.run_query(ctx, inputs).outputs["out"]
        reference = inputs[PA.name]["t1"].join(inputs[PB.name]["t2"], ["a", "b"], ["a", "b"])
        assert sorted(result.rows()) == sorted(reference.rows())

    def test_differently_named_key_pairs(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table(
                "t2",
                [cc.Column("x", cc.INT), cc.Column("y", cc.INT), cc.Column("d", cc.INT)],
                at=PB,
            )
            joined = t1.join(t2, on=[("a", "x"), ("b", "y")])
        assert joined.schema.names == ["a", "b", "c", "d"]

    def test_single_key_on_form_produces_plain_join(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table("t2", abc_columns(), at=PB)
            joined = t1.join(t2, on="a")
        assert joined.node.op_name == "join"
        assert joined.schema.names == ["a", "b", "c", "b_r", "c_r"]

    def test_bare_tuple_on_is_rejected_as_ambiguous(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table("t2", abc_columns(), at=PB)
            with pytest.raises(TypeError, match="ambiguous"):
                t1.join(t2, on=("a", "b"))
            # Both disambiguated forms work.
            pair = t1.join(t2, on=[("a", "b")])
            assert (pair.node.left_on, pair.node.right_on) == ("a", "b")
            multi = t1.join(t2, on=["a", "b"])
            assert multi.schema.names == ["a", "b", "c", "c_r"]

    def test_composite_key_overflow_rejected_at_build_time(self):
        wide = [cc.Column(n, cc.INT) for n in "abcd"]
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", wide, at=PA)
            t2 = ctx.new_table("t2", wide, at=PB)
            # 4 key columns at the default 2**20 base would need 2**80 of
            # key space — must be rejected, not silently wrapped mod 2**64.
            with pytest.raises(ValueError, match="overflows the 64-bit"):
                t1.join(t2, on=["a", "b", "c", "d"])
            # A base sized to the domain makes the same join legal.
            joined = t1.join(t2, on=["a", "b", "c", "d"], key_base=1 << 15)
            assert joined.schema.names == ["a", "b", "c", "d"]

    def test_aggregate_accepts_key_base_for_wide_group_domains(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            stats = t.aggregate(
                group=["a", "c"], aggs={"n": cc.COUNT()}, key_base=1 << 30
            )
            stats.collect("out", to=[PA])
        table = Table.from_rows(ABC_SCHEMA, [(2_000_000, 1, 9), (2_000_000, 2, 9), (5, 3, 9)])
        result = cc.run_query(ctx, {PA.name: {"t": table}}).outputs["out"]
        got = {(row[0], row[1]): row[2] for row in result.rows()}
        assert got == {(2_000_000, 9): 2, (5, 9): 1}

    def test_join_keys_validated_eagerly(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table("t2", abc_columns(), at=PB)
            with pytest.raises(KeyError):
                t1.join(t2, on=[("a", "missing")])


class TestMultiAggregate:
    def test_two_aggs_one_group_column(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            stats = t.aggregate(
                group=["a"], aggs={"total": cc.SUM("b"), "n": cc.COUNT()}
            )
            stats.collect("out", to=[PA])
        assert stats.schema.names == ["a", "total", "n"]
        table = Table.from_rows(ABC_SCHEMA, ABC_ROWS)
        result = cc.run_query(ctx, {PA.name: {"t": table}}).outputs["out"]
        expected = {}
        for a, b, _ in ABC_ROWS:
            total, n = expected.get(a, (0, 0))
            expected[a] = (total + b, n + 1)
        got = {row[0]: (row[1], row[2]) for row in result.rows()}
        assert got == expected

    def test_multi_group_columns(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            stats = t.aggregate(
                group=["a", "c"], aggs={"total": cc.SUM("b"), "n": cc.COUNT()}
            )
            stats.collect("out", to=[PA])
        assert stats.schema.names == ["a", "c", "total", "n"]
        table = Table.from_rows(ABC_SCHEMA, ABC_ROWS)
        result = cc.run_query(ctx, {PA.name: {"t": table}}).outputs["out"]
        reference = {}
        for a, b, c_val in ABC_ROWS:
            total, n = reference.get((a, c_val), (0, 0))
            reference[(a, c_val)] = (total + b, n + 1)
        got = {(row[0], row[1]): (row[2], row[3]) for row in result.rows()}
        assert got == reference

    def test_scalar_multi_aggregate(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            stats = t.aggregate(aggs={"total": cc.SUM("b"), "n": cc.COUNT(), "top": cc.MAX("b")})
            stats.collect("out", to=[PA])
        assert stats.schema.names == ["total", "n", "top"]
        table = Table.from_rows(ABC_SCHEMA, ABC_ROWS)
        result = cc.run_query(ctx, {PA.name: {"t": table}}).outputs["out"]
        values = dict(zip(result.schema.names, result.rows()[0]))
        assert values == {
            "total": sum(r[1] for r in ABC_ROWS),
            "n": len(ABC_ROWS),
            "top": max(r[1] for r in ABC_ROWS),
        }

    def test_min_max_specs_cross_parties(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table("t2", abc_columns(), at=PB)
            stats = ctx.concat([t1, t2]).aggregate(
                group=["a"], aggs={"lo": cc.MIN("b"), "hi": cc.MAX("b")}
            )
            stats.collect("out", to=[PA])
        rows_b = [(1, 5, 0), (2, 70, 0)]
        inputs = {
            PA.name: {"t1": Table.from_rows(ABC_SCHEMA, ABC_ROWS)},
            PB.name: {"t2": Table.from_rows(ABC_SCHEMA, rows_b)},
        }
        result = cc.run_query(ctx, inputs).outputs["out"]
        combined = ABC_ROWS + rows_b
        expected = {}
        for a, b, _ in combined:
            lo, hi = expected.get(a, (b, b))
            expected[a] = (min(lo, b), max(hi, b))
        got = {row[0]: (row[1], row[2]) for row in result.rows()}
        assert got == expected

    def test_agg_spec_must_be_called(self):
        with QueryContext() as ctx:
            t = ctx.new_table("t", abc_columns(), at=PA)
            with pytest.raises(TypeError, match="calling an aggregation"):
                t.aggregate(group=["a"], aggs={"total": 42})


BACKENDS = [
    ("python", "sharemind"),
    ("spark", "sharemind"),
    ("python", "obliv-c"),
    ("spark", "obliv-c"),
]


class TestBackendParity:
    """The same expression query on every backend: identical outputs and leakage."""

    @staticmethod
    def expression_query():
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table("t2", abc_columns(), at=PB)
            combined = ctx.concat([t1, t2])
            kept = combined.filter((col("b") > 5) | (col("c") == 7))
            scored = kept.with_column("score", col("b") * 2 + col("c"))
            stats = scored.aggregate(
                group=["a"], aggs={"total": cc.SUM("score"), "n": cc.COUNT()}
            )
            stats.collect("out", to=[PA])
        return ctx

    @staticmethod
    def run_on(cleartext: str, mpc: str):
        config = CompilationConfig(cleartext_backend=cleartext, mpc_backend=mpc)
        inputs = {
            PA.name: {"t1": Table.from_rows(ABC_SCHEMA, ABC_ROWS)},
            PB.name: {"t2": Table.from_rows(ABC_SCHEMA, [(1, 6, 7), (9, 4, 7), (2, 8, 1)])},
        }
        result = cc.run_query(TestBackendParity.expression_query(), inputs, config)
        leakage = [
            (e.kind, e.relation, tuple(e.columns), tuple(sorted(e.parties)))
            for e in result.leakage.events
        ]
        return result.outputs["out"], leakage

    @pytest.mark.parametrize("cleartext,mpc", BACKENDS, ids=["+".join(b) for b in BACKENDS])
    def test_backends_agree_with_reference(self, cleartext, mpc):
        output, _ = self.run_on(cleartext, mpc)
        reference_rows = ABC_ROWS + [(1, 6, 7), (9, 4, 7), (2, 8, 1)]
        expected = {}
        for a, b, c_val in reference_rows:
            if not (b > 5 or c_val == 7):
                continue
            score = b * 2 + c_val
            total, n = expected.get(a, (0, 0))
            expected[a] = (total + score, n + 1)
        got = {row[0]: (row[1], row[2]) for row in output.rows()}
        assert got == expected

    def test_all_backends_identical_outputs_and_leakage(self):
        baseline_output, baseline_leakage = self.run_on(*BACKENDS[0])
        for cleartext, mpc in BACKENDS[1:]:
            output, leakage = self.run_on(cleartext, mpc)
            assert sorted(output.rows()) == sorted(baseline_output.rows()), (cleartext, mpc)
            assert output.schema.names == baseline_output.schema.names
            assert leakage == baseline_leakage, (cleartext, mpc)


class TestPaperQueryAcceptance:
    """Acceptance criteria of the redesign issue."""

    def test_credit_query_mpc_operator_count_matches_pre_redesign_plan(self):
        spec = credit_card_regulation_query(rows_demographics=90, rows_per_agency=40)
        compiled = cc.compile_query(spec.context)

        # The pre-redesign construction, via the deprecation shims, ordered
        # exactly as queries.py now lowers it.
        regulator, *agencies = spec.parties
        p_reg = cc.Party(regulator)
        p_agencies = [cc.Party(a) for a in agencies]
        demo_schema = [cc.Column("ssn", cc.INT), cc.Column("zip", cc.INT)]
        bank_schema = [cc.Column("ssn", cc.INT, trust=[p_reg]), cc.Column("score", cc.INT)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with QueryContext() as legacy:
                demo = legacy.new_table("demographics", demo_schema, at=p_reg, estimated_rows=90)
                scores = [
                    legacy.new_table(f"scores_{i}", bank_schema, at=p, estimated_rows=40)
                    for i, p in enumerate(p_agencies)
                ]
                joined = demo.join(legacy.concat(scores), left=["ssn"], right=["ssn"])
                total = joined.aggregate("total", cc.SUM, group=["zip"], over="score")
                cnt = joined.aggregate("cnt", cc.COUNT, group=["zip"])
                avg = total.join(cnt, left=["zip"], right=["zip"]).divide(
                    "avg_score", "total", by="cnt"
                )
                avg.collect("avg_scores", to=[p_reg])
        legacy_compiled = cc.compile_query(legacy)

        assert compiled.mpc_operator_count() == legacy_compiled.mpc_operator_count()
        assert compiled.operator_count() == legacy_compiled.operator_count()

    def test_credit_variant_with_compound_filter_is_expressible(self):
        """Score-range filtering + two aggregates in one call compiles and runs."""
        regulator = "mpc.ftc.gov"
        agencies = ["mpc.bank-a.com", "mpc.bank-b.cash"]
        p_reg = cc.Party(regulator)
        p_agencies = [cc.Party(a) for a in agencies]
        demo_schema = [cc.Column("ssn", cc.INT), cc.Column("zip", cc.INT)]
        bank_schema = [cc.Column("ssn", cc.INT, trust=[p_reg]), cc.Column("score", cc.INT)]
        with QueryContext() as ctx:
            demo = ctx.new_table("demographics", demo_schema, at=p_reg)
            scores = [
                ctx.new_table(f"scores_{i}", bank_schema, at=p)
                for i, p in enumerate(p_agencies)
            ]
            joined = demo.join(ctx.concat(scores), on="ssn")
            plausible = joined.filter((col("score") >= 300) & (col("score") <= 850))
            stats = plausible.aggregate(
                group=["zip"], aggs={"total": cc.SUM("score"), "cnt": cc.COUNT()}
            )
            stats.with_column("avg_score", col("total") / col("cnt")).collect(
                "avg_scores", to=[p_reg]
            )
        compiled = cc.compile_query(ctx)

        workload = CreditWorkload(num_zip_codes=10, seed=3)
        demo_t, agency_tables = workload.generate(num_people=60, rows_per_agency=30)
        inputs = {
            regulator: {"demographics": demo_t},
            agencies[0]: {"scores_0": agency_tables[0]},
            agencies[1]: {"scores_1": agency_tables[1]},
        }
        runner = cc.QueryRunner([regulator, *agencies], inputs)
        result = runner.run(compiled)
        output = result.outputs["avg_scores"]
        assert output.schema.names == ["zip", "total", "cnt", "avg_score"]
        for row in output.rows():
            values = dict(zip(output.schema.names, row))
            assert values["avg_score"] == pytest.approx(
                values["total"] / values["cnt"], abs=1e-3
            )

    @pytest.mark.parametrize("query", ["market", "credit", "aspirin", "comorbidity"])
    def test_paper_queries_byte_identical_to_legacy_construction(self, query):
        new_spec, legacy_ctx, inputs = _paper_query_pair(query)
        new_result = cc.run_query(new_spec.context, inputs)
        legacy_result = cc.run_query(legacy_ctx, inputs)
        name = new_spec.output_relation
        assert new_result.outputs[name] == legacy_result.outputs[name]


def _paper_query_pair(query: str):
    """The new-API spec, the shim-built legacy equivalent, and shared inputs."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if query == "market":
            spec = market_concentration_query(rows_per_party=60)
            tables = TaxiWorkload(num_companies=3, seed=17).party_tables(3, 60)
            inputs = {p: {f"trips_{i}": tables[i]} for i, p in enumerate(spec.parties)}
            parties = [cc.Party(p) for p in spec.parties]
            schema = [cc.Column("companyID", cc.INT), cc.Column("price", cc.INT)]
            with QueryContext() as legacy:
                ins = [
                    legacy.new_table(f"trips_{i}", schema, at=p, estimated_rows=60)
                    for i, p in enumerate(parties)
                ]
                nonzero = legacy.concat(ins, name="taxi_data").filter("price", ">", 0)
                rev = nonzero.project(["companyID", "price"]).aggregate(
                    "local_rev", cc.SUM, group=["companyID"], over="price"
                )
                size = rev.aggregate("total_rev", cc.SUM, over="local_rev")
                rev_k = rev.multiply("mkey", "companyID", 0)
                size_k = size.multiply("mkey", "total_rev", 0)
                share = rev_k.join(size_k, left=["mkey"], right=["mkey"]).divide(
                    "m_share", "local_rev", by="total_rev"
                )
                hhi = share.multiply("ms_squared", "m_share", "m_share").aggregate(
                    "hhi", cc.SUM, over="ms_squared"
                )
                hhi.collect("hhi_result", to=[parties[0]])
            return spec, legacy, inputs
        if query == "credit":
            spec = credit_card_regulation_query(rows_demographics=90, rows_per_agency=40)
            workload = CreditWorkload(num_zip_codes=15, seed=19)
            demo_t, agency_tables = workload.generate(num_people=90, rows_per_agency=40)
            regulator, bank_a, bank_b = spec.parties
            inputs = {
                regulator: {"demographics": demo_t},
                bank_a: {"scores_0": agency_tables[0]},
                bank_b: {"scores_1": agency_tables[1]},
            }
            p_reg = cc.Party(regulator)
            p_banks = [cc.Party(bank_a), cc.Party(bank_b)]
            demo_schema = [cc.Column("ssn", cc.INT), cc.Column("zip", cc.INT)]
            bank_schema = [cc.Column("ssn", cc.INT, trust=[p_reg]), cc.Column("score", cc.INT)]
            with QueryContext() as legacy:
                demo = legacy.new_table("demographics", demo_schema, at=p_reg, estimated_rows=90)
                scores = [
                    legacy.new_table(f"scores_{i}", bank_schema, at=p, estimated_rows=40)
                    for i, p in enumerate(p_banks)
                ]
                joined = demo.join(legacy.concat(scores), left=["ssn"], right=["ssn"])
                total = joined.aggregate("total", cc.SUM, group=["zip"], over="score")
                cnt = joined.aggregate("cnt", cc.COUNT, group=["zip"])
                avg = total.join(cnt, left=["zip"], right=["zip"]).divide(
                    "avg_score", "total", by="cnt"
                )
                avg.collect("avg_scores", to=[p_reg])
            return spec, legacy, inputs
        if query == "aspirin":
            spec = aspirin_count_query(rows_per_relation=50)
            workload = HealthLNKWorkload(patient_overlap=0.1, seed=23)
            diagnoses, medications = workload.aspirin_count_inputs(50)
            h1, h2 = spec.parties
            inputs = {
                h1: {"diagnoses_0": diagnoses[0], "medications_0": medications[0]},
                h2: {"diagnoses_1": diagnoses[1], "medications_1": medications[1]},
            }
            hospitals = [cc.Party(h) for h in spec.parties]
            diag_schema = [cc.Column("patient_id", cc.INT, public=True), cc.Column("diagnosis", cc.INT)]
            med_schema = [cc.Column("patient_id", cc.INT, public=True), cc.Column("medication", cc.INT)]
            with QueryContext() as legacy:
                diags = [
                    legacy.new_table(f"diagnoses_{i}", diag_schema, at=p, estimated_rows=50)
                    for i, p in enumerate(hospitals)
                ]
                meds = [
                    legacy.new_table(f"medications_{i}", med_schema, at=p, estimated_rows=50)
                    for i, p in enumerate(hospitals)
                ]
                joined = legacy.concat(diags).join(
                    legacy.concat(meds), left=["patient_id"], right=["patient_id"]
                )
                heart = joined.filter("diagnosis", "==", 414)
                aspirin = heart.filter("medication", "==", 1191)
                count = aspirin.distinct(["patient_id"]).aggregate("aspirin_count", cc.COUNT)
                count.collect("aspirin_count", to=[hospitals[0]])
            return spec, legacy, inputs
        # comorbidity
        spec = comorbidity_query(rows_per_relation=50)
        workload = HealthLNKWorkload(patient_overlap=0.1, seed=29)
        diagnoses, _ = workload.aspirin_count_inputs(50)
        h1, h2 = spec.parties
        inputs = {h1: {"diagnoses_0": diagnoses[0]}, h2: {"diagnoses_1": diagnoses[1]}}
        hospitals = [cc.Party(h) for h in spec.parties]
        diag_schema = [cc.Column("patient_id", cc.INT, public=True), cc.Column("diagnosis", cc.INT)]
        with QueryContext() as legacy:
            diags = [
                legacy.new_table(f"diagnoses_{i}", diag_schema, at=p, estimated_rows=50)
                for i, p in enumerate(hospitals)
            ]
            counts = legacy.concat(diags).aggregate("cnt", cc.COUNT, group=["diagnosis"])
            counts.sort_by("cnt", ascending=False).limit(10).collect(
                "comorbidity", to=[hospitals[0]]
            )
        return spec, legacy, inputs


class TestConcurrentQueryConstruction:
    """The ContextVar stack keeps concurrent construction isolated."""

    def test_threads_do_not_share_the_context_stack(self):
        errors = []
        barrier = threading.Barrier(4)

        def build(tag: int):
            try:
                with QueryContext() as ctx:
                    barrier.wait(timeout=10)
                    # Module-level helpers resolve to *this* thread's context.
                    t = cc.new_table(f"t_{tag}", abc_columns(), at=PA)
                    barrier.wait(timeout=10)
                    t.filter(col("b") > tag).collect(f"out_{tag}", to=[PA])
                    dag = ctx.build_dag()
                names = [n.out_rel.name for n in dag.topological()]
                assert f"t_{tag}" in names
                assert all(f"t_{other}" not in names for other in range(4) if other != tag)
                assert len(dag.inputs()) == 1
            except Exception as exc:  # pragma: no cover - surfaced via errors list
                errors.append((tag, exc))

        threads = [threading.Thread(target=build, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_nested_contexts_still_stack_within_one_thread(self):
        with QueryContext() as outer:
            assert QueryContext.current() is outer
            with QueryContext() as inner:
                assert QueryContext.current() is inner
            assert QueryContext.current() is outer
        with pytest.raises(RuntimeError):
            QueryContext.current()


class TestNewOperatorsUnderMpc:
    def test_compound_predicate_inside_mpc(self):
        """A disjunction over a joint relation executes under MPC correctly."""
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", abc_columns(), at=PA)
            t2 = ctx.new_table("t2", abc_columns(), at=PB)
            joined = t1.join(t2, on="a")
            kept = joined.filter((col("b") > 20) | (col("b_r") > 20))
            kept.collect("out", to=[PA, PB])
        config = CompilationConfig(enable_push_down=False, enable_push_up=False)
        rows_b = [(1, 25, 0), (2, 5, 0), (3, 1, 1)]
        inputs = {
            PA.name: {"t1": Table.from_rows(ABC_SCHEMA, ABC_ROWS)},
            PB.name: {"t2": Table.from_rows(ABC_SCHEMA, rows_b)},
        }
        result = cc.run_query(ctx, inputs, config)
        reference = (
            inputs[PA.name]["t1"]
            .join(inputs[PB.name]["t2"], ["a"], ["a"])
            .filter_predicate(lambda row: row[1] > 20 or row[3] > 20)
        )
        got = sorted(result.outputs["out"].rows())
        assert got == sorted(reference.rows())
