"""Tests for the reusable query builders in :mod:`repro.queries`."""

import pytest

import repro as cc
from repro.data.schema import PUBLIC
from repro.queries import (
    aspirin_count_query,
    comorbidity_query,
    credit_card_regulation_query,
    market_concentration_query,
)


class TestSpecMetadata:
    def test_market_spec_lists_one_input_per_party(self):
        spec = market_concentration_query(rows_per_party=10)
        assert len(spec.parties) == 3
        for i, party in enumerate(spec.parties):
            assert spec.input_relations[party] == [f"trips_{i}"]
        assert spec.output_relation == "hhi_result"

    def test_credit_spec_names_the_stp(self):
        spec = credit_card_regulation_query()
        assert spec.info["stp"] == spec.parties[0]
        assert spec.input_relations[spec.parties[0]] == ["demographics"]
        assert spec.input_relations[spec.parties[1]] == ["scores_0"]

    def test_aspirin_spec_has_two_relations_per_hospital(self):
        spec = aspirin_count_query()
        for i, hospital in enumerate(spec.parties):
            assert spec.input_relations[hospital] == [f"diagnoses_{i}", f"medications_{i}"]

    def test_comorbidity_spec_records_top_k(self):
        spec = comorbidity_query(top_k=7)
        assert spec.info["top_k"] == 7


class TestSpecAnnotations:
    def test_credit_query_trusts_only_the_regulator_with_ssn(self):
        spec = credit_card_regulation_query()
        dag = spec.context.build_dag()
        regulator = spec.parties[0]
        for create in dag.inputs():
            rel = create.out_rel
            if rel.name.startswith("scores"):
                assert regulator in rel.trust["ssn"]
                assert spec.parties[2] not in rel.trust["ssn"] or rel.owner == spec.parties[2]
                assert rel.trust["score"] == {rel.owner}

    def test_aspirin_query_patient_ids_are_public(self):
        spec = aspirin_count_query()
        dag = spec.context.build_dag()
        for create in dag.inputs():
            assert PUBLIC in create.out_rel.trust["patient_id"]
            private_col = "diagnosis" if "diagnoses" in create.out_rel.name else "medication"
            assert PUBLIC not in create.out_rel.trust[private_col]

    def test_market_query_has_no_trust_annotations(self):
        spec = market_concentration_query()
        dag = spec.context.build_dag()
        for create in dag.inputs():
            for column, trust in create.out_rel.trust.items():
                assert trust == {create.out_rel.owner}

    def test_row_hints_propagate_to_create_nodes(self):
        spec = market_concentration_query(rows_per_party=1234)
        dag = spec.context.build_dag()
        assert all(c.out_rel.estimated_rows == 1234 for c in dag.inputs())


class TestSpecCompilation:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: market_concentration_query(rows_per_party=100),
            lambda: credit_card_regulation_query(rows_demographics=100, rows_per_agency=50),
            lambda: aspirin_count_query(rows_per_relation=100),
            lambda: comorbidity_query(rows_per_relation=100),
        ],
        ids=["market", "credit", "aspirin", "comorbidity"],
    )
    def test_every_spec_compiles_and_partitions(self, spec_factory):
        spec = spec_factory()
        compiled = cc.compile_query(spec.context)
        assert compiled.operator_count() > 0
        assert compiled.subplans and compiled.jobs
        # Every query output is produced by some job.
        produced = {name for job in compiled.jobs for name in (s.out_rel.name for s in job.steps)}
        assert spec.output_relation in produced

    def test_custom_party_names_are_respected(self):
        spec = market_concentration_query(party_names=["x.one", "y.two", "z.three"])
        dag = spec.context.build_dag()
        assert dag.parties() == {"x.one", "y.two", "z.three"}
