"""Tests for the SMCQL baseline and the synthetic workload generators."""

import numpy as np
import pytest

from repro.baselines.smcql import SMCQLBaseline, SMCQLCostParams
from repro.workloads.credit import CreditWorkload
from repro.workloads.generators import (
    random_integers_table,
    split_across_parties,
    uniform_key_value_table,
)
from repro.workloads.healthlnk import ASPIRIN_CODE, HEART_DISEASE_CODE, HealthLNKWorkload
from repro.workloads.taxi import TaxiWorkload


class TestSMCQLAspirinCount:
    def setup_method(self):
        self.workload = HealthLNKWorkload(patient_overlap=0.1, seed=31)
        self.diagnoses, self.medications = self.workload.aspirin_count_inputs(60)
        self.smcql = SMCQLBaseline()

    def test_result_matches_cleartext_reference(self):
        result = self.smcql.run_aspirin_count(self.diagnoses, self.medications)
        expected = self.workload.reference_aspirin_count(self.diagnoses, self.medications)
        assert result.value == expected

    def test_slices_partition_into_local_and_mpc(self):
        result = self.smcql.run_aspirin_count(self.diagnoses, self.medications)
        assert result.mpc_slices > 0
        assert result.local_slices > 0
        assert result.mpc_gates > 0

    def test_two_parties_required(self):
        with pytest.raises(ValueError):
            self.smcql.run_aspirin_count(self.diagnoses[:1], self.medications[:1])

    def test_runtime_grows_with_overlap(self):
        sparse = HealthLNKWorkload(patient_overlap=0.02, seed=33)
        dense = HealthLNKWorkload(patient_overlap=0.5, seed=33)
        d_sparse = self.smcql.run_aspirin_count(*sparse.aspirin_count_inputs(80))
        d_dense = self.smcql.run_aspirin_count(*dense.aspirin_count_inputs(80))
        assert d_dense.simulated_seconds > d_sparse.simulated_seconds

    def test_estimate_tracks_execution_order_of_magnitude(self):
        executed = self.smcql.run_aspirin_count(self.diagnoses, self.medications)
        estimated = self.smcql.estimate_aspirin_count(60, patient_overlap=0.1)
        assert estimated == pytest.approx(executed.simulated_seconds, rel=2.0)

    def test_estimate_scales_roughly_linearly(self):
        small = self.smcql.estimate_aspirin_count(10_000)
        large = self.smcql.estimate_aspirin_count(100_000)
        assert 5 < large / small < 20

    def test_paper_anchor_smcql_is_slow_at_200k(self):
        """Figure 7a: SMCQL runs for over an hour at 200k rows per party."""
        assert self.smcql.estimate_aspirin_count(200_000, patient_overlap=0.02) > 3600


class TestSMCQLComorbidity:
    def setup_method(self):
        self.workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.1, seed=37)
        self.diagnoses = self.workload.comorbidity_inputs(80)
        self.smcql = SMCQLBaseline()

    def test_result_matches_cleartext_reference(self):
        result = self.smcql.run_comorbidity(self.diagnoses, top_k=5)
        reference = self.workload.reference_comorbidity(self.diagnoses, top_k=5)
        got_counts = sorted(row[1] for row in result.value.rows())
        expected_counts = sorted(row[1] for row in reference.rows())
        assert got_counts == expected_counts

    def test_runtime_dominated_by_mpc_merge(self):
        result = self.smcql.run_comorbidity(self.diagnoses)
        assert result.mpc_gates > 0

    def test_estimate_grows_superlinearly(self):
        small = self.smcql.estimate_comorbidity(10_000)
        large = self.smcql.estimate_comorbidity(100_000)
        assert large / small > 10

    def test_paper_anchor_smcql_exceeds_hour_at_100k_per_party(self):
        """Figure 7b: SMCQL takes over an hour once ~20k rows enter MPC."""
        assert self.smcql.estimate_comorbidity(100_000, distinct_fraction=0.1) > 3600

    def test_cost_params_influence_runtime(self):
        cheap = SMCQLBaseline(cost_params=SMCQLCostParams(per_slice_overhead_seconds=0.0))
        expensive = SMCQLBaseline(cost_params=SMCQLCostParams(per_slice_overhead_seconds=10.0))
        diag, meds = HealthLNKWorkload(patient_overlap=0.2, seed=39).aspirin_count_inputs(40)
        assert (
            expensive.run_aspirin_count(diag, meds).simulated_seconds
            > cheap.run_aspirin_count(diag, meds).simulated_seconds
        )


class TestGenerators:
    def test_random_integers_table_shape_and_range(self):
        table = random_integers_table(100, ["a", "b"], low=0, high=50, seed=1)
        assert table.num_rows == 100
        assert table.schema.names == ["a", "b"]
        assert table.column("a").max() < 50
        assert table.column("a").min() >= 0

    def test_uniform_key_value_table_key_cardinality(self):
        table = uniform_key_value_table(500, 7, seed=2)
        assert set(table.column("key").tolist()) <= set(range(7))
        assert len(set(table.column("key").tolist())) == 7

    def test_uniform_key_value_rejects_zero_keys(self):
        with pytest.raises(ValueError):
            uniform_key_value_table(10, 0)

    def test_split_across_parties_partitions_all_rows(self):
        table = uniform_key_value_table(200, 5, seed=3)
        parts = split_across_parties(table, 3, seed=4)
        assert sum(p.num_rows for p in parts) == 200
        combined = parts[0].concat(*parts[1:])
        assert combined.equals_unordered(table)

    def test_generators_are_deterministic_per_seed(self):
        a = uniform_key_value_table(50, 5, seed=9)
        b = uniform_key_value_table(50, 5, seed=9)
        c = uniform_key_value_table(50, 5, seed=10)
        assert a == b
        assert a != c


class TestTaxiWorkload:
    def test_trip_schema_and_zero_fares(self):
        workload = TaxiWorkload(zero_fare_fraction=0.3, seed=5)
        table = workload.party_table(0, 1000)
        assert table.schema.names == ["companyID", "price"]
        zero_fraction = (table.column("price") == 0).mean()
        assert 0.2 < zero_fraction < 0.4

    def test_company_ids_within_range(self):
        workload = TaxiWorkload(num_companies=4, seed=6)
        table = workload.party_table(1, 500)
        assert set(table.column("companyID").tolist()) <= set(range(4))

    def test_reference_hhi_bounds(self):
        workload = TaxiWorkload(seed=7)
        tables = workload.party_tables(3, 400)
        hhi = workload.reference_hhi(tables)
        assert 1.0 / 3 - 0.05 <= hhi <= 1.0

    def test_skewed_shares_increase_hhi(self):
        uniform = TaxiWorkload(share_skew=50.0, seed=8)
        skewed = TaxiWorkload(share_skew=0.2, seed=8)
        hhi_uniform = uniform.reference_hhi(uniform.party_tables(3, 2000))
        hhi_skewed = skewed.reference_hhi(skewed.party_tables(3, 2000))
        assert hhi_skewed > hhi_uniform


class TestCreditWorkload:
    def test_demographics_unique_ssns(self):
        workload = CreditWorkload(seed=9)
        demo = workload.demographics(500)
        assert len(set(demo.column("ssn").tolist())) == 500

    def test_agency_scores_within_range(self):
        workload = CreditWorkload(min_score=300, max_score=850, seed=10)
        scores = workload.agency_scores(0, 200, 500)
        assert scores.column("score").min() >= 300
        assert scores.column("score").max() <= 850

    def test_join_hit_rate_controls_matches(self):
        full = CreditWorkload(join_hit_rate=1.0, seed=11)
        half = CreditWorkload(join_hit_rate=0.5, seed=11)
        demo_full, agencies_full = full.generate(400, 200)
        demo_half, agencies_half = half.generate(400, 200)
        matches_full = demo_full.join(agencies_full[0], ["ssn"], ["ssn"]).num_rows
        matches_half = demo_half.join(agencies_half[0], ["ssn"], ["ssn"]).num_rows
        assert matches_full > matches_half

    def test_reference_average_scores_has_avg_column(self):
        workload = CreditWorkload(num_zip_codes=10, seed=12)
        demo, agencies = workload.generate(100, 50)
        reference = workload.reference_average_scores(demo, agencies)
        assert "avg_score" in reference.schema.names
        assert reference.num_rows <= 10


class TestHealthLNKWorkload:
    def test_overlap_fraction_respected(self):
        workload = HealthLNKWorkload(patient_overlap=0.1, seed=13)
        p0 = set(workload.hospital_patients(0, 1000).tolist())
        p1 = set(workload.hospital_patients(1, 1000).tolist())
        overlap = len(p0 & p1)
        assert 50 <= overlap <= 150

    def test_diagnoses_contain_heart_disease_and_aspirin_codes(self):
        workload = HealthLNKWorkload(heart_disease_fraction=0.3, aspirin_fraction=0.3, seed=14)
        diag = workload.diagnoses(0, 500)
        meds = workload.medications(0, 500)
        assert (diag.column("diagnosis") == HEART_DISEASE_CODE).mean() > 0.2
        assert (meds.column("medication") == ASPIRIN_CODE).mean() > 0.2

    def test_comorbidity_distinct_fraction(self):
        workload = HealthLNKWorkload(distinct_diagnosis_fraction=0.1, seed=15)
        diag = workload.comorbidity_diagnoses(0, 1000)
        distinct = len(set(diag.column("diagnosis").tolist()))
        assert 50 <= distinct <= 110

    def test_reference_comorbidity_is_sorted_descending(self):
        workload = HealthLNKWorkload(seed=16)
        reference = workload.reference_comorbidity(workload.comorbidity_inputs(200), top_k=5)
        counts = [row[1] for row in reference.rows()]
        assert counts == sorted(counts, reverse=True)
        assert reference.num_rows == 5

    def test_reference_aspirin_count_nonnegative(self):
        workload = HealthLNKWorkload(patient_overlap=0.3, seed=17)
        diag, meds = workload.aspirin_count_inputs(100)
        assert workload.reference_aspirin_count(diag, meds) >= 0
