"""Supervision & recovery tests: crash detection, restart, rejoin, retry.

Everything here runs against *real* agent processes under deterministic
fault injection (:mod:`repro.runtime.faults`): seeded kills at exact query
indices, mesh frames dropped / duplicated / delayed / torn at exact frame
counts.  The properties asserted:

* a killed agent is restarted, rejoined to the surviving mesh, re-armed
  with the standing inputs, and the interrupted query is retried — with
  **byte-identical** results (outputs including row order, plus the MPC
  work/traffic profile) to a fault-free run;
* an agent that keeps dying exhausts its restart budget and the session
  breaks with a *structured* :class:`AgentFailure` carrying the attempt
  history — it never hangs;
* duplicated frames are invisible (per-link sequence numbers), delayed
  frames only cost latency, dropped frames surface as retryable timeouts,
  torn frames look like the process death they are;
* a wedged (SIGSTOPped) agent is detected by heartbeats and recycled;
* the gateway's shed hint (``QueryRejected.retry_after_seconds``) tracks
  observed queue waits and ``submit(retries=...)`` honours it;
* interpreter exit never leaks agent processes (the atexit hook);
* the 50-plan differential corpus replayed through a session under a
  seeded fault plan stays byte-identical to the simulated runtime.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import Future

import pytest

import repro as cc
from repro.core.config import CompilationConfig, GatewayConfig, RestartPolicy, RetryPolicy
from repro.core.dispatch import QueryRunner
from repro.runtime.faults import FaultInjector, FaultPlan, KillFault, LinkFault
from repro.runtime.gateway import QueryRejected
from repro.runtime.service import AgentCrashed, AgentFailure

from test_query_service import PARTY_A, PARTY_B, two_party_query, wait_until


def supervised_session(inputs, *, seed=9, timeout=30.0, faults=None, **overrides):
    """An open session with fast supervision/retry policies for tests."""
    restart = overrides.pop(
        "restart",
        RestartPolicy(
            backoff_seconds=0.05,
            max_backoff_seconds=0.5,
            heartbeat_interval_seconds=None,
        ),
    )
    retry = overrides.pop("retry", RetryPolicy(max_attempts=3, backoff_seconds=0.05))
    return cc.open_session(
        inputs,
        seed=seed,
        timeout=timeout,
        restart=restart,
        retry=retry,
        faults=faults,
        **overrides,
    )


class TestPolicyValidation:
    def test_restart_policy_rejects_bad_values(self):
        for bad in (
            RestartPolicy(max_restarts=0),
            RestartPolicy(window_seconds=-1),
            RestartPolicy(backoff_multiplier=0.5),
            RestartPolicy(heartbeat_interval_seconds=0),
            RestartPolicy(heartbeat_misses=0),
        ):
            with pytest.raises(ValueError):
                bad.validate()
        RestartPolicy().validate()
        RestartPolicy(heartbeat_interval_seconds=None).validate()

    def test_retry_policy_rejects_bad_values(self):
        for bad in (
            RetryPolicy(max_attempts=0),
            RetryPolicy(backoff_seconds=-0.1),
            RetryPolicy(backoff_multiplier=0),
        ):
            with pytest.raises(ValueError):
                bad.validate()
        RetryPolicy().validate()

    def test_fault_plan_rejects_bad_values(self):
        for bad in (
            FaultPlan(kills=(KillFault(PARTY_A, at_query=0),)),
            FaultPlan(kills=(KillFault(PARTY_A, at_query=1, after_mesh_frames=-1),)),
            FaultPlan(links=(LinkFault(PARTY_A, "explode", 1),)),
            FaultPlan(links=(LinkFault(PARTY_A, "drop", 0),)),
            FaultPlan(links=(LinkFault(PARTY_A, "delay", 1),)),
        ):
            with pytest.raises(ValueError):
                bad.validate()
        FaultPlan(
            kills=(KillFault(PARTY_A, at_query=2, after_mesh_frames=3),),
            links=(LinkFault(PARTY_B, "delay", 0, delay_seconds=0.1),),
        ).validate()

    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(42, [PARTY_A, PARTY_B], queries=20, kills=2, link_faults=3)
        b = FaultPlan.seeded(42, [PARTY_A, PARTY_B], queries=20, kills=2, link_faults=3)
        assert a == b and bool(a)
        assert a.for_party("nobody.example") is None
        sub = a.for_party(a.kills[0].party)
        assert sub is not None and all(k.party == a.kills[0].party for k in sub.kills)

    def test_injector_counts_per_process(self):
        plan = FaultPlan(links=(LinkFault(PARTY_A, "dup", 2),))
        injector = FaultInjector(plan, PARTY_A)
        assert injector.on_mesh_send(PARTY_B, 1) is None
        fault = injector.on_mesh_send(PARTY_B, 1)
        assert fault is not None and fault.action == "dup"
        assert injector.on_mesh_send(PARTY_B, 1) is None


class TestCrashRecovery:
    def test_seeded_kill_mid_stream_is_byte_identical(self):
        """The acceptance scenario: a seeded kill fault takes one agent down
        in the middle of query 2's MPC exchange; the stream completes
        byte-identically with >= 1 restart and >= 1 retry in the stats."""
        ctx, inputs = two_party_query()
        reference = cc.run_query(ctx, inputs, seed=9)
        faults = FaultPlan(kills=(KillFault(PARTY_B, at_query=2, after_mesh_frames=3),))
        with supervised_session(inputs, faults=faults) as session:
            results = [session.submit(ctx, timeout=60) for _ in range(3)]
            for result in results:
                assert result.outputs["out"] == reference.outputs["out"]
                assert result.mpc_profile == reference.mpc_profile
            stats = session.stats
        assert stats["restarts"] >= 1
        assert stats["retries"] >= 1
        assert stats["retries_exhausted"] == 0

    def test_real_process_kill_recovers(self):
        """A genuine SIGKILL (no injection) between queries: the supervisor
        restarts the agent and later queries keep working byte-identically."""
        ctx, inputs = two_party_query()
        reference = cc.run_query(ctx, inputs, seed=9)
        with supervised_session(inputs) as session:
            first = session.submit(ctx, timeout=60)
            assert first.outputs["out"] == reference.outputs["out"]
            session._pool._processes[PARTY_B].kill()
            second = session.submit(ctx, timeout=60)
            assert second.outputs["out"] == reference.outputs["out"]
            assert second.mpc_profile == reference.mpc_profile
            assert wait_until(lambda: session.stats["restarts"] >= 1)

    def test_recovery_metrics_are_exposed(self):
        ctx, inputs = two_party_query()
        faults = FaultPlan(kills=(KillFault(PARTY_A, at_query=2, after_mesh_frames=2),))
        with supervised_session(inputs, faults=faults) as session:
            session.submit(ctx, timeout=60)
            session.submit(ctx, timeout=60)
            stats = session.stats
            assert stats["restarts"] >= 1
            assert "recovery_seconds" in stats["latency"]
            assert stats["latency"]["recovery_seconds"]["count"] >= 1
            assert stats["latency"]["recovery_seconds"]["p50"] > 0
            text = session.metrics.render_prometheus()
        assert "conclave_agent_restarts_total" in text
        assert "conclave_recovery_seconds_bucket" in text

    def test_restarted_agent_reships_cached_plans(self):
        """Plan-cache coherence across a restart: the replacement has an
        empty cache, so previously shipped fingerprints must be re-shipped
        (not referenced), and the stream stays byte-identical."""
        ctx, inputs = two_party_query()
        other, _ = two_party_query(agg_extra=True)
        reference = cc.run_query(ctx, inputs, seed=9)
        with supervised_session(inputs) as session:
            session.submit(ctx, timeout=60)
            session.submit(other, timeout=60)
            session._pool._processes[PARTY_A].kill()
            assert wait_until(lambda: session.stats["restarts"] >= 1)
            again = session.submit(ctx, timeout=60)
            assert again.outputs["out"] == reference.outputs["out"]
            stats = session.stats
        assert stats["plan_cache_hits"] + stats["plan_cache_misses"] == stats["queries"]


class TestFaultMatrix:
    """One targeted test per link-fault action, each against a fault-free
    reference run of the same query."""

    def _run(self, faults, *, queries=2, timeout=30.0, retry=None):
        ctx, inputs = two_party_query()
        reference = cc.run_query(ctx, inputs, seed=9)
        kwargs = {} if retry is None else {"retry": retry}
        with supervised_session(inputs, faults=faults, timeout=timeout, **kwargs) as session:
            for _ in range(queries):
                result = session.submit(ctx, timeout=60)
                assert result.outputs["out"] == reference.outputs["out"]
                assert result.mpc_profile == reference.mpc_profile
            return session.stats

    def test_duplicated_frame_is_suppressed(self):
        stats = self._run(FaultPlan(links=(LinkFault(PARTY_A, "dup", 3),)))
        assert stats["retries"] == 0 and stats["restarts"] == 0

    def test_delayed_frame_only_costs_latency(self):
        stats = self._run(
            FaultPlan(links=(LinkFault(PARTY_B, "delay", 2, delay_seconds=0.3),))
        )
        assert stats["retries"] == 0 and stats["restarts"] == 0

    def test_slow_link_every_frame(self):
        stats = self._run(
            FaultPlan(links=(LinkFault(PARTY_A, "delay", 0, delay_seconds=0.01),)),
            queries=1,
        )
        assert stats["retries"] == 0 and stats["restarts"] == 0

    def test_dropped_frame_times_out_and_retries(self):
        stats = self._run(
            FaultPlan(links=(LinkFault(PARTY_A, "drop", 3),)),
            timeout=6.0,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.05, retry_transport_errors=True),
        )
        assert stats["retries"] >= 1
        assert stats["retries_exhausted"] == 0

    def test_torn_frame_is_a_process_death(self):
        # 9 mesh frames per party per query (the batched share-vector
        # protocols exchange whole columns per round, including the
        # environment-open rounds): frame 12 tears mid-query-2, and the
        # replacement's replay (9 frames, fresh per-process counter)
        # finishes below the trigger instead of dying again.
        stats = self._run(FaultPlan(links=(LinkFault(PARTY_B, "torn", 12),)))
        assert stats["restarts"] >= 1
        assert stats["retries"] >= 1


class TestBudgetExhaustion:
    def test_permanent_failure_is_structured_and_never_hangs(self):
        """``KillFault(at_query=1)`` kills every replacement at its first
        query intake, so the restart budget drains; the session must break
        with an AgentFailure carrying the attempt history — within a bounded
        time, never a hang."""
        ctx, inputs = two_party_query()
        faults = FaultPlan(kills=(KillFault(PARTY_B, at_query=1),))
        restart = RestartPolicy(
            max_restarts=2,
            window_seconds=60.0,
            backoff_seconds=0.05,
            max_backoff_seconds=0.2,
            heartbeat_interval_seconds=None,
        )
        retry = RetryPolicy(max_attempts=6, backoff_seconds=0.05)
        started = time.monotonic()
        with supervised_session(
            inputs, faults=faults, restart=restart, retry=retry, timeout=20.0
        ) as session:
            with pytest.raises(AgentFailure) as info:
                session.submit(ctx, timeout=60)
            assert time.monotonic() - started < 60
            failure = info.value
            assert not isinstance(failure, AgentCrashed)
            history = getattr(failure, "attempts", ())
            assert history, "permanent failure must carry the attempt history"
            assert any(r.get("outcome") == "budget-exhausted" for r in history) or any(
                "attempt" in r for r in history
            )
            # The pool is broken for good: later submissions fail fast with
            # the same structured error instead of waiting out a timeout.
            before = time.monotonic()
            with pytest.raises((AgentFailure, RuntimeError)):
                session.submit(ctx, timeout=60)
            assert time.monotonic() - before < 5

    def test_attempt_history_has_restarts_then_exhaustion(self):
        ctx, inputs = two_party_query()
        faults = FaultPlan(kills=(KillFault(PARTY_A, at_query=1),))
        restart = RestartPolicy(
            max_restarts=1,
            backoff_seconds=0.05,
            max_backoff_seconds=0.2,
            heartbeat_interval_seconds=None,
        )
        with supervised_session(
            inputs, faults=faults, restart=restart,
            retry=RetryPolicy(max_attempts=4, backoff_seconds=0.05), timeout=20.0,
        ) as session:
            with pytest.raises(AgentFailure) as info:
                session.submit(ctx, timeout=60)
            history = list(getattr(info.value, "attempts", ()))
            assert len(history) >= 2
            outcomes = [r.get("outcome", r.get("error", "")) for r in history]
            assert any(o == "restarted" for o in outcomes)


class TestHeartbeat:
    def test_wedged_agent_is_detected_and_recycled(self):
        """SIGSTOP an agent: it answers nothing, heartbeats pile up, the
        supervisor kills and restarts it, and the session keeps serving."""
        ctx, inputs = two_party_query()
        reference = cc.run_query(ctx, inputs, seed=9)
        restart = RestartPolicy(
            backoff_seconds=0.05,
            max_backoff_seconds=0.2,
            heartbeat_interval_seconds=0.2,
            heartbeat_misses=3,
        )
        with supervised_session(inputs, restart=restart) as session:
            first = session.submit(ctx, timeout=60)
            assert first.outputs["out"] == reference.outputs["out"]
            os.kill(session._pool._processes[PARTY_B].pid, signal.SIGSTOP)
            assert wait_until(lambda: session.stats["restarts"] >= 1, timeout=20.0)
            second = session.submit(ctx, timeout=60)
            assert second.outputs["out"] == reference.outputs["out"]
            assert second.mpc_profile == reference.mpc_profile


class TestRetryHints:
    def test_rejection_hint_tracks_observed_queue_wait(self):
        """The shed hint is the observed median queue wait, clamped."""
        from repro.runtime.gateway import QueryGateway

        gateway = QueryGateway(
            GatewayConfig(max_in_flight=1, max_queue_depth=1),
        )
        for _ in range(8):
            gateway.metrics.observe("queue_wait_seconds", 2.0)
        hog, queued = Future(), Future()
        gateway.submit("hog", lambda: hog)
        gateway.submit("hog", lambda: queued)
        with pytest.raises(QueryRejected) as info:
            gateway.submit("victim", lambda: Future())
        # Geometric buckets interpolate, so the estimate is coarse — the
        # property that matters is that the hint tracks the ~2 s observed
        # waits instead of the cold-start 0.1 s default.
        assert 1.0 <= info.value.retry_after_seconds <= 2.1
        hog.set_result(None)
        queued.set_result(None)

    def test_cold_gateway_hints_a_small_default(self):
        from repro.runtime.gateway import QueryGateway

        gateway = QueryGateway(GatewayConfig(max_in_flight=1, max_queue_depth=1))
        hog, queued = Future(), Future()
        gateway.submit("hog", lambda: hog)
        gateway.submit("hog", lambda: queued)
        with pytest.raises(QueryRejected) as info:
            gateway.submit("victim", lambda: Future())
        assert 0.0 < info.value.retry_after_seconds <= 1.0
        hog.set_result(None)
        queued.set_result(None)

    def test_submit_retries_honour_the_hint(self):
        """``submit(retries=N)`` sleeps the hint and resubmits after a shed,
        succeeding once the congestion clears."""
        ctx, inputs = two_party_query()
        reference = cc.run_query(ctx, inputs, seed=9)
        with cc.open_session(
            inputs, seed=9, gateway=GatewayConfig(max_in_flight=1, max_queue_depth=1)
        ) as session:
            hog, queued = Future(), Future()
            session.gateway.submit("hog", lambda: hog)
            session.gateway.submit("hog", lambda: queued)
            with pytest.raises(QueryRejected):
                session.submit(ctx, timeout=60)
            threading.Timer(0.1, hog.set_result, args=(None,)).start()
            threading.Timer(0.3, queued.set_result, args=(None,)).start()
            result = session.submit(ctx, timeout=60, retries=10)
            assert result.outputs["out"] == reference.outputs["out"]
            assert session.stats["queries_rejected"] >= 1


class TestAtexitCleanup:
    def test_interpreter_exit_leaks_no_agents(self):
        """A script that opens a session, submits, and exits WITHOUT closing
        must still terminate promptly and cleanly: the atexit hook closes
        every active session (and with it every agent process)."""
        script = """
import sys
import repro as cc
from test_query_service import two_party_query

ctx, inputs = two_party_query()
session = cc.open_session(inputs, seed=9)
result = session.submit(ctx)
pids = [p.pid for p in session._pool._processes.values()]
print("PIDS", " ".join(str(p) for p in pids))
print("OK", len(result.outputs["out"].rows()))
# no session.close(), no context manager: atexit must clean up
"""
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo, "src"), os.path.join(repo, "tests")]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        lines = dict(
            line.split(" ", 1) for line in proc.stdout.splitlines() if " " in line
        )
        assert "OK" in lines
        for pid in (int(p) for p in lines["PIDS"].split()):
            # The agent processes died with the interpreter.
            assert not _pid_alive(pid), f"agent pid {pid} leaked past interpreter exit"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Still a live entry: it may be a zombie being reaped; give it a moment.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        time.sleep(0.1)
    return True


class TestChaosDifferential:
    def test_fifty_plan_corpus_survives_a_seeded_fault_plan(self):
        """The full differential corpus (test_differential's 50 seeded random
        plans) replayed through ONE supervised session under a seeded fault
        plan: two kills plus dup/delay link noise.  Every recovered query
        must be byte-identical (outputs including row order, plus the MPC
        profile) to the simulated runtime — i.e. to a fault-free run."""
        from test_differential import NUM_PLANS, SEED, build_query, generate_spec
        from test_differential import PARTY_A as DIFF_A, PARTY_B as DIFF_B

        config = CompilationConfig(cleartext_backend="python", mpc_backend="sharemind")
        faults = FaultPlan.seeded(
            SEED,
            [DIFF_A, DIFF_B],
            queries=NUM_PLANS,
            kills=2,
            link_faults=3,
            actions=("dup", "delay"),
            delay_seconds=0.05,
        )
        assert faults.kills, "the seeded plan must schedule at least one kill"
        restart = RestartPolicy(
            backoff_seconds=0.05, max_backoff_seconds=0.5, heartbeat_interval_seconds=None
        )
        retry = RetryPolicy(max_attempts=4, backoff_seconds=0.05)
        with cc.QuerySession(
            [DIFF_A, DIFF_B], config=config, seed=3,
            restart=restart, retry=retry, faults=faults, timeout=60.0,
        ) as session:
            for plan in range(NUM_PLANS):
                spec = generate_spec(SEED + plan)
                ctx, inputs = build_query(spec)
                compiled = cc.compile_query(ctx, config)
                simulated = QueryRunner([DIFF_A, DIFF_B], inputs, config, seed=3).run(compiled)
                chaotic = session.submit(compiled, inputs=inputs, timeout=120)
                assert chaotic.outputs["out"] == simulated.outputs["out"], (
                    f"plan {plan} (seed {spec['seed']}): result under faults is not "
                    f"byte-identical to the fault-free simulated runtime"
                )
                assert chaotic.mpc_profile == simulated.mpc_profile, (
                    f"plan {plan} (seed {spec['seed']}): MPC work/traffic profile "
                    f"changed under faults"
                )
            stats = session.stats
        assert stats["restarts"] >= 1, "the seeded kills never fired"
        assert stats["retries"] >= 1
        assert stats["retries_exhausted"] == 0
