"""Property-based round-trip tests for the wire framing and mesh multiplexing.

Seeded random generation (no external property-testing dependency) drives
the frame codec through the properties service mode leans on: arbitrary
payloads round-trip byte-exactly regardless of how the stream is chunked;
empty and >64 KiB payloads are ordinary frames; frames of interleaved query
ids demultiplex into per-query FIFO order; and a stream that ends mid-frame
is *rejected* as truncated, never silently dropped.
"""

import socket
import threading

import numpy as np
import pytest

from repro.runtime.mesh import PeerMesh
from repro.runtime.transport import TransportError
from repro.runtime.wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    WireError,
    encode_frame,
    recv_frame,
    send_frame,
)

SEED = 20260730


def random_payload(rng: np.random.Generator):
    """One random payload: mixed types, sizes from empty to >64 KiB."""
    kind = int(rng.integers(0, 6))
    if kind == 0:
        return b""
    if kind == 1:
        return bytes(rng.integers(0, 256, int(rng.integers(1, 200)), dtype=np.uint8))
    if kind == 2:  # comfortably above one 64 KiB socket buffer
        return bytes(rng.integers(0, 256, int(rng.integers(1 << 16, 1 << 17)), dtype=np.uint8))
    if kind == 3:
        return {"k": int(rng.integers(-1000, 1000)), "nested": [None, ("t", 1.5)]}
    if kind == 4:
        return "x" * int(rng.integers(0, 5000))
    return rng.integers(-100, 100, int(rng.integers(0, 1000)))


def payloads_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return isinstance(b, np.ndarray) and np.array_equal(a, b)
    return a == b


# -- codec round-trips ----------------------------------------------------------------------


@pytest.mark.parametrize("case", range(20))
def test_random_frame_sequences_round_trip_under_random_chunking(case):
    """Any frame sequence decodes identically however the bytes are split."""
    rng = np.random.default_rng(SEED + case)
    frames = [random_payload(rng) for _ in range(int(rng.integers(1, 8)))]
    stream = b"".join(encode_frame(f) for f in frames)

    decoder = FrameDecoder()
    decoded = []
    position = 0
    while position < len(stream):
        step = int(rng.integers(1, max(2, len(stream) // 3)))
        decoded.extend(decoder.feed(stream[position:position + step]))
        position += step
    decoder.eof()  # ended exactly on a frame boundary

    assert len(decoded) == len(frames)
    for got, expected in zip(decoded, frames):
        assert payloads_equal(got, expected)


def test_empty_payload_is_an_ordinary_frame():
    for empty in (b"", "", (), [], {}, None):
        decoder = FrameDecoder()
        (got,) = decoder.feed(encode_frame(empty))
        assert payloads_equal(got, empty)
        decoder.eof()


def test_large_frame_round_trips_over_a_real_socket():
    """A >64 KiB frame crosses a socket in multiple recv() chunks."""
    left, right = socket.socketpair()
    try:
        left.settimeout(10)
        right.settimeout(10)
        payload = bytes(np.random.default_rng(SEED).integers(0, 256, 300_000, dtype=np.uint8))
        sender = threading.Thread(target=send_frame, args=(left, ("big", payload)))
        sender.start()
        tag, got = recv_frame(right)
        sender.join(timeout=10)
        assert tag == "big" and got == payload
    finally:
        left.close()
        right.close()


# -- query-id interleaving ------------------------------------------------------------------


def test_interleaved_query_ids_demultiplex_in_per_query_order():
    """Frames of many queries interleaved on one stream keep per-query FIFO order."""
    rng = np.random.default_rng(SEED)
    expected: dict[int, list] = {qid: [] for qid in (1, 2, 7)}
    stream = bytearray()
    for _ in range(60):
        qid = int(rng.choice(list(expected)))
        payload = random_payload(rng)
        expected[qid].append(payload)
        stream.extend(encode_frame(("msg", qid, payload)))

    decoder = FrameDecoder()
    got: dict[int, list] = {qid: [] for qid in expected}
    for kind, qid, payload in decoder.feed(bytes(stream)):
        assert kind == "msg"
        got[qid].append(payload)
    decoder.eof()

    for qid in expected:
        assert len(got[qid]) == len(expected[qid])
        for a, b in zip(got[qid], expected[qid]):
            assert payloads_equal(a, b)


def make_mesh_pair(timeout: float = 5.0) -> tuple[PeerMesh, PeerMesh]:
    """Two connected single-link meshes (parties ``a`` and ``b``)."""
    sock_a, sock_b = socket.socketpair()
    sock_a.settimeout(timeout)
    sock_b.settimeout(timeout)
    return PeerMesh("a", {"b": sock_a}, timeout=timeout), PeerMesh("b", {"a": sock_b}, timeout=timeout)


def test_mesh_channels_isolate_concurrent_queries():
    """Messages of two queries interleaved on one socket reach their channels."""
    mesh_a, mesh_b = make_mesh_pair()
    try:
        rng = np.random.default_rng(SEED + 1)
        sent: dict[int, list] = {1: [], 2: []}
        for i in range(40):
            qid = int(rng.integers(1, 3))
            message = ("round", qid, i)
            sent[qid].append(message)
            mesh_b.channel(qid).send_message("a", message)
        for qid in (1, 2):
            channel = mesh_a.channel(qid)
            for expected in sent[qid]:
                assert channel.receive_message("b") == expected
        # Tables travel the same multiplexed link, checked by relation name.
        mesh_b.channel(9).send_table("a", "rel", {"rows": 3})
        assert mesh_a.channel(9).receive_table("b", "rel") == {"rows": 3}
        with pytest.raises(TransportError, match="diverged"):
            mesh_b.channel(9).send_table("a", "other", {"rows": 1})
            mesh_a.channel(9).receive_table("b", "rel")
    finally:
        mesh_a.close()
        mesh_b.close()


def test_channel_abort_poisons_only_that_query():
    mesh_a, mesh_b = make_mesh_pair()
    try:
        mesh_b.channel(5).send_message("a", "alive")
        mesh_b.channel(3).abort("boom at b")
        # Query 3 fails immediately — existing and future receives alike.
        with pytest.raises(TransportError, match="aborted query 3"):
            mesh_a.channel(3).receive_message("b")
        with pytest.raises(TransportError, match="aborted query 3"):
            mesh_a.channel(3).receive_table("b", "rel")
        # Query 5 is untouched.
        assert mesh_a.channel(5).receive_message("b") == "alive"
    finally:
        mesh_a.close()
        mesh_b.close()


def test_released_query_drops_late_frames_instead_of_accumulating():
    """Frames racing a channel release are discarded — a long-lived mesh
    must not grow per-finished-query state (the slow-leak regression)."""
    mesh_a, mesh_b = make_mesh_pair()
    try:
        channel = mesh_a.channel(4)
        mesh_b.channel(4).send_message("a", "consumed")
        assert channel.receive_message("b") == "consumed"
        channel.close()  # query finished; id 4 is released
        mesh_b.channel(4).send_message("a", "late")
        mesh_b.channel(4).abort("late abort")
        # A later frame on the same link proves the earlier ones were read.
        mesh_b.channel(6).send_message("a", "fresh")
        assert mesh_a.channel(6).receive_message("b") == "fresh"
        assert not [k for k in mesh_a._queues if k[1] == 4]
        assert not [k for k in mesh_a._aborted if k[1] == 4]
    finally:
        mesh_a.close()
        mesh_b.close()


def test_peer_death_poisons_existing_and_future_channels():
    mesh_a, mesh_b = make_mesh_pair()
    try:
        existing = mesh_a.channel(1)
        mesh_b.close()  # peer process gone: its sockets close
        with pytest.raises(TransportError, match="closed"):
            existing.receive_message("b")
        # A channel opened only after the death must fail too, immediately.
        with pytest.raises(TransportError, match="closed"):
            mesh_a.channel(2).receive_message("b")
    finally:
        mesh_a.close()


# -- truncation and corruption --------------------------------------------------------------


@pytest.mark.parametrize("case", range(10))
def test_truncated_streams_are_rejected(case):
    """Every cut that ends mid-frame raises WireError at eof()."""
    rng = np.random.default_rng(SEED + 100 + case)
    frames = [random_payload(rng) for _ in range(3)]
    encoded = [encode_frame(f) for f in frames]
    stream = b"".join(encoded)
    boundaries = {0}
    offset = 0
    for chunk in encoded:
        offset += len(chunk)
        boundaries.add(offset)

    cuts = sorted(set(int(c) for c in rng.integers(0, len(stream), 25)) | boundaries)
    for cut in cuts:
        decoder = FrameDecoder()
        decoder.feed(stream[:cut])
        if cut in boundaries:
            decoder.eof()  # clean boundary: no truncation
        else:
            with pytest.raises(WireError, match="truncated"):
                decoder.eof()


def test_truncated_socket_stream_raises_wire_error():
    left, right = socket.socketpair()
    try:
        right.settimeout(5)
        frame = encode_frame({"half": "frame"})
        left.sendall(frame[: len(frame) - 3])
        left.close()
        with pytest.raises(WireError, match="closed mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_oversized_header_is_stream_corruption():
    decoder = FrameDecoder()
    header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(WireError, match="corrupt"):
        decoder.feed(header + b"xxxx")


def test_idle_timeout_is_distinguished_from_mid_frame_death():
    left, right = socket.socketpair()
    try:
        right.settimeout(0.05)
        # Idle: no byte of a frame arrived — TimeoutError (stream is fine).
        with pytest.raises(TimeoutError):
            recv_frame(right, allow_idle_timeout=True)
        # Mid-frame: a partial header arrived — always a WireError.
        left.sendall(b"\x00\x00")
        with pytest.raises(WireError, match="mid-frame"):
            recv_frame(right, allow_idle_timeout=True)
    finally:
        left.close()
        right.close()
