"""Tests for the MPC-frontier push-down and push-up passes (§5.2)."""

import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.frontier import push_down, push_up
from repro.core.lang import QueryContext
from repro.core.operators import Aggregate, Concat, Filter, Project
from repro.core.propagation import mark_mpc_frontier, propagate_ownership, propagate_trust

PA, PB, PC = cc.Party("a.example"), cc.Party("b.example"), cc.Party("c.example")
KV = [cc.Column("k"), cc.Column("v")]


def compile_stage_two(ctx, config=None):
    config = config or CompilationConfig()
    dag = ctx.build_dag()
    propagate_ownership(dag)
    mark_mpc_frontier(dag)
    propagate_trust(dag)
    applied_down = push_down(dag, config)
    applied_up = push_up(dag, config)
    return dag, applied_down, applied_up


class TestPushDown:
    def test_projection_is_distributed_to_each_party(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            combined = ctx.concat([t1, t2])
            projected = combined.project(["k"])
            projected.collect("out", to=[PA])
        dag, applied, _ = compile_stage_two(ctx)
        assert applied >= 1
        local_projects = [
            n for n in dag.topological() if isinstance(n, Project) and not n.is_mpc
        ]
        assert len(local_projects) == 2
        assert {n.out_rel.owner for n in local_projects} == {PA.name, PB.name}

    def test_filter_is_distributed(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            filtered = ctx.concat([t1, t2]).filter("v", ">", 10)
            filtered.aggregate("total", cc.SUM, group=["k"], over="v").collect("out", to=[PA])
        dag, _, _ = compile_stage_two(ctx)
        local_filters = [
            n for n in dag.topological() if isinstance(n, Filter) and not n.is_mpc
        ]
        assert len(local_filters) == 2

    def test_aggregation_split_into_partials_and_merge(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            t3 = ctx.new_table("t3", KV, at=PC)
            agg = ctx.concat([t1, t2, t3]).aggregate("total", cc.SUM, group=["k"], over="v")
            agg.collect("out", to=[PA])
        dag, _, _ = compile_stage_two(ctx)
        aggregates = [n for n in dag.topological() if isinstance(n, Aggregate)]
        local = [a for a in aggregates if not a.is_mpc]
        secondary = [a for a in aggregates if a.is_secondary]
        assert len(local) == 3
        assert len(secondary) == 1
        assert secondary[0].is_mpc
        # The merge step aggregates the partial sums with SUM again.
        assert secondary[0].func == "sum"
        assert secondary[0].agg_col == "total"

    def test_count_split_merges_with_sum(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("cnt", cc.COUNT, group=["k"])
            agg.collect("out", to=[PA])
        dag, _, _ = compile_stage_two(ctx)
        secondary = [n for n in dag.topological() if isinstance(n, Aggregate) and n.is_secondary]
        assert secondary[0].func == "sum"

    def test_split_requires_cardinality_consent(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["k"], over="v")
            agg.collect("out", to=[PA])
        config = CompilationConfig(consent_to_cardinality_leakage=False)
        dag, _, _ = compile_stage_two(ctx, config)
        aggregates = [n for n in dag.topological() if isinstance(n, Aggregate)]
        assert len(aggregates) == 1
        assert aggregates[0].is_mpc
        assert not aggregates[0].is_secondary

    def test_private_filter_pushdown_can_be_disabled(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            filtered = ctx.concat([t1, t2]).filter("v", ">", 10)
            filtered.collect("out", to=[PA])
        config = CompilationConfig(push_down_private_filters=False)
        dag, _, _ = compile_stage_two(ctx, config)
        filters = [n for n in dag.topological() if isinstance(n, Filter)]
        assert len(filters) == 1
        assert filters[0].is_mpc

    def test_public_filter_still_pushed_down_in_strict_mode(self):
        schema = [cc.Column("k"), cc.Column("v", public=True)]
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", schema, at=PA)
            t2 = ctx.new_table("t2", schema, at=PB)
            filtered = ctx.concat([t1, t2]).filter("v", ">", 10)
            filtered.collect("out", to=[PA])
        config = CompilationConfig(push_down_private_filters=False)
        dag, _, _ = compile_stage_two(ctx, config)
        local_filters = [n for n in dag.topological() if isinstance(n, Filter) and not n.is_mpc]
        assert len(local_filters) == 2

    def test_chain_of_distributive_ops_all_pushed(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            result = (
                ctx.concat([t1, t2])
                .project(["k", "v"])
                .filter("v", ">", 0)
                .aggregate("total", cc.SUM, group=["k"], over="v")
            )
            result.collect("out", to=[PA])
        dag, _, _ = compile_stage_two(ctx)
        mpc_nodes = [n for n in dag.topological() if n.is_mpc]
        # Only the merge aggregation and the concat of partials remain in MPC.
        assert all(isinstance(n, (Concat, Aggregate)) for n in mpc_nodes)
        assert any(isinstance(n, Aggregate) and n.is_secondary for n in mpc_nodes)

    def test_join_blocks_pushdown(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            joined = ctx.concat([t1, t2]).join(
                ctx.new_table("t3", KV, at=PC), left=["k"], right=["k"]
            )
            joined.collect("out", to=[PA])
        dag, applied, _ = compile_stage_two(ctx)
        assert applied == 0
        joins = [n for n in dag.topological() if n.op_name == "join"]
        assert joins and all(n.is_mpc for n in joins)

    def test_pushdown_disabled_via_config(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            projected = ctx.concat([t1, t2]).project(["k"])
            projected.collect("out", to=[PA])
        config = CompilationConfig(enable_push_down=False)
        compiled = cc.compile_query(ctx, config)
        assert compiled.report.push_down_rewrites == 0
        projects = [n for n in compiled.dag.topological() if isinstance(n, Project)]
        assert all(n.is_mpc for n in projects)


class TestPushUp:
    def test_reversible_scalar_multiply_lifted_to_recipient(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["k"], over="v")
            scaled = agg.multiply("cents", "total", 100)
            scaled.collect("out", to=[PC])
        dag, _, lifted = compile_stage_two(ctx)
        assert lifted >= 1
        multiply = [n for n in dag.topological() if n.op_name == "multiply"][0]
        assert not multiply.is_mpc
        assert multiply.run_at == PC.name

    def test_non_reversible_column_multiply_not_lifted(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["k"], over="v")
            squared = agg.multiply("sq", "total", "total")
            squared.collect("out", to=[PA])
        dag, _, _ = compile_stage_two(ctx)
        multiply = [n for n in dag.topological() if n.op_name == "multiply"][0]
        assert multiply.is_mpc

    def test_leaf_count_rewritten_to_projection_plus_clear_count(self):
        # Disable push-down so the count stays a leaf MPC aggregation, then
        # check push-up rewrites it to an MPC projection + cleartext count.
        config = CompilationConfig(enable_push_down=False, enable_hybrid_operators=False)
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            counted = ctx.concat([t1, t2]).aggregate("cnt", cc.COUNT, group=["k"])
            counted.collect("out", to=[PA])
        compiled = cc.compile_query(ctx, config)
        assert compiled.report.push_up_rewrites >= 1
        dag = compiled.dag
        projects = [n for n in dag.topological() if isinstance(n, Project) and n.is_mpc]
        clear_counts = [
            n
            for n in dag.topological()
            if isinstance(n, Aggregate) and n.func == "count" and not n.is_mpc
        ]
        assert projects and clear_counts
        assert clear_counts[0].run_at == PA.name

    def test_push_up_disabled_via_config(self):
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["k"], over="v")
            scaled = agg.multiply("cents", "total", 100)
            scaled.collect("out", to=[PA])
        compiled = cc.compile_query(ctx, CompilationConfig(enable_push_up=False))
        multiply = [n for n in compiled.dag.topological() if n.op_name == "multiply"][0]
        assert multiply.is_mpc
