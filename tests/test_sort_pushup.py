"""Tests for the sort push-up extension (§5.4, "future work" in the paper).

With ``enable_sort_pushup`` the compiler rewrites an oblivious sort over a
concat of per-party relations into local cleartext sorts at each party plus
an oblivious *merge* under MPC — asymptotically cheaper than re-sorting the
whole concatenation obliviously.
"""

import numpy as np
import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.lang import QueryContext
from repro.core.operators import Merge, SortBy
from repro.mpc import protocols
from repro.mpc.protocols import SharedTable
from repro.mpc.sharemind import SharemindBackend
from repro.workloads.generators import uniform_key_value_table
from tests.conftest import PARTIES

PA, PB, PC = cc.Party("a.example"), cc.Party("b.example"), cc.Party("c.example")
KV = [cc.Column("k"), cc.Column("v")]


def sorted_concat_query(estimated_rows=None, ascending=True):
    with QueryContext() as ctx:
        t1 = ctx.new_table("t1", KV, at=PA, estimated_rows=estimated_rows)
        t2 = ctx.new_table("t2", KV, at=PB, estimated_rows=estimated_rows)
        ordered = ctx.concat([t1, t2]).sort_by("v", ascending=ascending)
        ordered.collect("out", to=[PC])
    return ctx


class TestMergeProtocol:
    def test_mpc_merge_sorted_matches_full_sort(self):
        backend = SharemindBackend(PARTIES, seed=3)
        a = uniform_key_value_table(12, 50, seed=1).sort_by(["key"])
        b = uniform_key_value_table(9, 50, seed=2).sort_by(["key"])
        merged = backend.merge_sorted([backend.ingest(a), backend.ingest(b)], "key")
        assert merged.reveal() == a.concat(b).sort_by(["key"])

    def test_mpc_merge_descending(self):
        backend = SharemindBackend(PARTIES, seed=3)
        a = uniform_key_value_table(8, 50, seed=3).sort_by(["key"], ascending=False)
        b = uniform_key_value_table(8, 50, seed=4).sort_by(["key"], ascending=False)
        merged = backend.merge_sorted(
            [backend.ingest(a), backend.ingest(b)], "key", ascending=False
        )
        assert merged.reveal() == a.concat(b).sort_by(["key"], ascending=False)

    def test_merge_cheaper_than_resort(self):
        a = uniform_key_value_table(64, 1000, seed=5).sort_by(["key"])
        b = uniform_key_value_table(64, 1000, seed=6).sort_by(["key"])

        merge_backend = SharemindBackend(PARTIES, seed=1)
        merge_backend.merge_sorted(
            [merge_backend.ingest(a), merge_backend.ingest(b)], "key"
        )
        sort_backend = SharemindBackend(PARTIES, seed=1)
        combined = sort_backend.concat([sort_backend.ingest(a), sort_backend.ingest(b)])
        sort_backend.sort_by(combined, "key")
        assert merge_backend.meter.comparisons < sort_backend.meter.comparisons

    def test_schema_mismatch_rejected(self):
        backend = SharemindBackend(PARTIES, seed=3)
        a = backend.ingest(uniform_key_value_table(4, 10, seed=7))
        b = backend.ingest(
            uniform_key_value_table(4, 10, key_column="other", seed=8)
        )
        with pytest.raises(ValueError):
            backend.merge_sorted([a, b], "key")


class TestCompilerRewrite:
    def test_rewrite_replaces_sort_with_local_sorts_and_merge(self):
        config = CompilationConfig(enable_sort_pushup=True)
        compiled = cc.compile_query(sorted_concat_query(), config)
        assert compiled.report.sorts_pushed_up == 1
        merges = [n for n in compiled.dag.topological() if isinstance(n, Merge)]
        local_sorts = [
            n for n in compiled.dag.topological() if isinstance(n, SortBy) and not n.is_mpc
        ]
        assert len(merges) == 1 and merges[0].is_mpc
        assert len(local_sorts) == 2
        assert {n.out_rel.owner for n in local_sorts} == {PA.name, PB.name}

    def test_rewrite_disabled_by_default(self):
        compiled = cc.compile_query(sorted_concat_query())
        assert compiled.report.sorts_pushed_up == 0
        assert not any(isinstance(n, Merge) for n in compiled.dag.topological())

    def test_merge_output_counts_as_sorted(self):
        config = CompilationConfig(enable_sort_pushup=True)
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).sort_by("k").aggregate(
                "total", cc.SUM, group=["k"], over="v"
            )
            agg.collect("out", to=[PA])
        compiled = cc.compile_query(
            ctx, CompilationConfig(enable_sort_pushup=True, enable_push_down=False)
        )
        aggs = [n for n in compiled.dag.topological() if n.op_name == "aggregate"]
        assert aggs[0].presorted

    def test_end_to_end_results_match_unoptimized_plan(self):
        inputs = {
            PA.name: {"t1": uniform_key_value_table(15, 6, key_column="k", value_column="v", seed=9)},
            PB.name: {"t2": uniform_key_value_table(12, 6, key_column="k", value_column="v", seed=10)},
        }
        optimized = cc.run_query(
            sorted_concat_query(), inputs, CompilationConfig(enable_sort_pushup=True)
        )
        baseline = cc.run_query(sorted_concat_query(), inputs, CompilationConfig())
        assert optimized.outputs["out"].column("v").tolist() == baseline.outputs["out"].column("v").tolist()

    def test_end_to_end_descending(self):
        inputs = {
            PA.name: {"t1": uniform_key_value_table(10, 6, key_column="k", value_column="v", seed=11)},
            PB.name: {"t2": uniform_key_value_table(10, 6, key_column="k", value_column="v", seed=12)},
        }
        result = cc.run_query(
            sorted_concat_query(ascending=False),
            inputs,
            CompilationConfig(enable_sort_pushup=True),
        )
        values = result.outputs["out"].column("v").tolist()
        assert values == sorted(values, reverse=True)

    def test_estimated_mpc_cost_is_lower_with_pushup(self):
        params = cc.EstimatorParams()
        with_pushup = cc.compile_query(
            sorted_concat_query(estimated_rows=100_000),
            CompilationConfig(enable_sort_pushup=True),
        )
        without = cc.compile_query(
            sorted_concat_query(estimated_rows=100_000), CompilationConfig()
        )
        estimator = cc.PlanEstimator(params)
        assert (
            estimator.estimate(with_pushup).mpc_seconds
            < estimator.estimate(without).mpc_seconds
        )
