"""Tests for the query gateway and metrics subsystem.

Unit layer (no processes): admission control sheds with an explicit
:class:`QueryRejected` instead of hanging, per-analyst queue/in-flight caps,
the smooth-weighted-round-robin dispatch order (deterministic, no
starvation), close-fails-queued semantics, dispatch-failure slot release,
and the metrics primitives (histogram percentiles, atomic multi-counter
updates, Prometheus rendering).

Integration layer (real two-party sessions): a saturated bounded queue
sheds without poisoning the session, two analysts soak without starvation,
``QuerySession.stats`` is an immutable internally consistent snapshot even
under concurrent submission, and the ``/metrics`` scrape endpoint serves
the session's live registry.
"""

import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import Future

import pytest

import repro as cc
from repro.core.config import GatewayConfig
from repro.runtime.gateway import DEFAULT_ANALYST, QueryGateway, QueryRejected
from repro.runtime.metrics import GatewayMetrics, LatencyHistogram, MetricsServer
from repro.runtime.service import SessionClosed

from test_query_service import two_party_query, wait_until


class StubDispatcher:
    """Dispatch-closure factory recording dispatch order; tests resolve futures."""

    def __init__(self):
        self.lock = threading.Lock()
        self.futures: list[Future] = []
        self.order: list[str] = []
        self._resolved = 0

    def make(self, tag: str):
        def dispatch() -> Future:
            future = Future()
            with self.lock:
                self.futures.append(future)
                self.order.append(tag)
            return future

        return dispatch

    def finish_next(self, value=None) -> None:
        with self.lock:
            future = self.futures[self._resolved]
            self._resolved += 1
        future.set_result(value)


class TestGatewayConfig:
    def test_defaults_are_unlimited(self):
        config = GatewayConfig().validate()
        assert config.max_in_flight is None
        assert config.max_queue_depth is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_in_flight": 0},
            {"max_queue_depth": -1},
            {"max_queue_per_analyst": 0},
            {"max_in_flight_per_analyst": 0},
            {"default_weight": 0},
            {"analyst_weights": {"a": 0}},
        ],
    )
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatewayConfig(**kwargs).validate()


class TestAdmissionControl:
    def test_full_queue_sheds_immediately(self):
        stub = StubDispatcher()
        gw = QueryGateway(GatewayConfig(max_in_flight=1, max_queue_depth=1))
        gw.submit("a", stub.make("a1"))  # dispatched
        queued = gw.submit("a", stub.make("a2"))  # queued
        started = time.monotonic()
        with pytest.raises(QueryRejected) as info:
            gw.submit("a", stub.make("a3"))
        # Shed is an immediate, stateless decision — never a hang.
        assert time.monotonic() - started < 1.0
        assert info.value.analyst == "a"
        assert info.value.queued == 1
        assert info.value.in_flight == 1
        assert gw.metrics.counter("queries_rejected") == 1
        # The shed left no residue: draining the slot dispatches the queued
        # query and the gateway goes fully idle.
        stub.finish_next()
        stub.finish_next()
        assert queued.result(timeout=5) is None
        assert gw.in_flight() == 0 and gw.queued() == 0

    def test_per_analyst_queue_cap(self):
        stub = StubDispatcher()
        gw = QueryGateway(GatewayConfig(max_in_flight=1, max_queue_per_analyst=1))
        gw.submit("a", stub.make("a1"))
        gw.submit("a", stub.make("a2"))
        with pytest.raises(QueryRejected):
            gw.submit("a", stub.make("a3"))
        # Another analyst's queue is unaffected by a's cap.
        other = gw.submit("b", stub.make("b1"))
        assert gw.queued("a") == 1 and gw.queued("b") == 1
        for _ in range(3):
            stub.finish_next()
        assert other.result(timeout=5) is None

    def test_per_analyst_in_flight_cap_reserves_slots(self):
        stub = StubDispatcher()
        gw = QueryGateway(
            GatewayConfig(max_in_flight=4, max_in_flight_per_analyst=1)
        )
        gw.submit("a", stub.make("a1"))
        gw.submit("a", stub.make("a2"))  # queued: a is at its in-flight cap
        gw.submit("b", stub.make("b1"))  # b still dispatches immediately
        assert stub.order == ["a1", "b1"]
        assert gw.in_flight() == 2 and gw.queued("a") == 1

    def test_inline_dispatch_error_raises_and_releases(self):
        gw = QueryGateway(GatewayConfig(max_in_flight=1))
        boom = RuntimeError("frame failed to encode")

        def dispatch():
            raise boom

        with pytest.raises(RuntimeError, match="frame failed to encode"):
            gw.submit("a", dispatch)
        assert gw.in_flight() == 0
        assert gw.metrics.counter("queries_failed") == 1
        # The slot was released: the next submission dispatches normally.
        stub = StubDispatcher()
        future = gw.submit("a", stub.make("a1"))
        stub.finish_next("ok")
        assert future.result(timeout=5) == "ok"

    def test_queued_dispatch_error_fails_future_and_pumps_on(self):
        stub = StubDispatcher()
        gw = QueryGateway(GatewayConfig(max_in_flight=1))
        gw.submit("a", stub.make("blocker"))
        boom = RuntimeError("dead on dispatch")

        def failing():
            raise boom

        doomed = gw.submit("a", failing)
        survivor = gw.submit("a", stub.make("a2"))
        stub.finish_next()  # release the blocker; the pump hits the failure
        assert doomed.exception(timeout=5) is boom
        stub.finish_next("ok")
        assert survivor.result(timeout=5) == "ok"
        assert gw.in_flight() == 0

    def test_close_fails_queued_queries(self):
        stub = StubDispatcher()
        gw = QueryGateway(GatewayConfig(max_in_flight=1), closed_error=SessionClosed)
        inflight = gw.submit("a", stub.make("a1"))
        queued = gw.submit("a", stub.make("a2"))
        gw.close()
        with pytest.raises(SessionClosed):
            queued.result(timeout=5)
        with pytest.raises(SessionClosed):
            gw.submit("a", stub.make("a3"))
        # Already-dispatched work is untouched by close.
        stub.finish_next("done")
        assert inflight.result(timeout=5) == "done"


class TestFairScheduling:
    def test_weighted_round_robin_order(self):
        stub = StubDispatcher()
        gw = QueryGateway(
            GatewayConfig(max_in_flight=1, analyst_weights={"h": 2, "l": 1})
        )
        gw.submit("h", stub.make("h"))  # dispatches; the rest queue behind it
        for _ in range(5):
            gw.submit("h", stub.make("h"))
        for _ in range(3):
            gw.submit("l", stub.make("l"))
        for _ in range(9):
            stub.finish_next()
        # Smooth WRR with weights 2:1 — deterministic, interleaved, and the
        # light analyst is never starved behind the heavy one's backlog.
        assert stub.order == ["h", "h", "l", "h", "h", "l", "h", "h", "l"]

    def test_equal_weights_alternate(self):
        stub = StubDispatcher()
        gw = QueryGateway(GatewayConfig(max_in_flight=1))
        gw.submit("a", stub.make("a"))
        for _ in range(3):
            gw.submit("a", stub.make("a"))
        for _ in range(3):
            gw.submit("b", stub.make("b"))
        for _ in range(7):
            stub.finish_next()
        interleaved = stub.order[1:]
        # With equal weights each round dispatches one of each; b never
        # waits for more than two a dispatches.
        assert interleaved.count("a") == 3 and interleaved.count("b") == 3
        assert "b" in interleaved[:2]


class TestLatencyHistogram:
    def test_single_value_is_exact(self):
        hist = LatencyHistogram()
        hist.observe(0.0421)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 0.0421
        assert summary["p50"] == pytest.approx(0.0421)
        assert summary["p99"] == pytest.approx(0.0421)

    def test_bimodal_percentiles(self):
        hist = LatencyHistogram()
        for _ in range(50):
            hist.observe(0.001)
        for _ in range(50):
            hist.observe(0.1)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(50 * 0.001 + 50 * 0.1)
        assert summary["p50"] == pytest.approx(0.001, rel=0.5)
        assert summary["p99"] == pytest.approx(0.1, rel=0.5)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_bucket_counts_are_cumulative(self):
        hist = LatencyHistogram()
        for value in (0.0001, 0.01, 1.0, 10_000.0):  # last lands in +Inf
            hist.observe(value)
        counts = hist.bucket_counts()
        assert counts[-1][1] == 4
        cumulative = [count for _bound, count in counts]
        assert cumulative == sorted(cumulative)


class TestGatewayMetrics:
    def test_inc_many_is_atomic_under_concurrency(self):
        metrics = GatewayMetrics()
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                metrics.inc_many({"queries": 1, "plan_cache_hits": 1})

        def reader():
            while not stop.is_set():
                snap = metrics.snapshot()["counters"]
                if snap.get("queries", 0) != snap.get("plan_cache_hits", 0):
                    torn.append(snap)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert not torn

    def test_render_prometheus_format(self):
        metrics = GatewayMetrics()
        metrics.inc("queries", 3)
        metrics.set_gauge("in_flight", 2)
        metrics.observe("queue_wait_seconds", 0.004)
        metrics.set_wire_provider(
            lambda: {"a": {"b": {"bytes_sent": 10, "bytes_received": 20}}}
        )
        text = metrics.render_prometheus()
        assert "# TYPE conclave_queries_total counter" in text
        assert "conclave_queries_total 3" in text
        assert "conclave_in_flight 2" in text
        assert '# TYPE conclave_queue_wait_seconds histogram' in text
        assert 'conclave_queue_wait_seconds_bucket{le="+Inf"} 1' in text
        assert 'conclave_wire_bytes_sent_total{party="a",peer="b"} 10' in text

    def test_metrics_server_serves_and_404s(self):
        metrics = GatewayMetrics()
        metrics.inc("queries", 7)
        with MetricsServer(metrics.render_prometheus) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                body = response.read().decode("utf-8")
                assert response.headers["Content-Type"].startswith("text/plain")
            assert "conclave_queries_total 7" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/secrets"), timeout=5
                )


class TestSessionIntegration:
    def test_saturation_sheds_without_poisoning_the_session(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(
            inputs, seed=3,
            gateway=GatewayConfig(max_in_flight=1, max_queue_depth=1),
        )
        try:
            admitted, rejected = [], 0
            for _ in range(6):
                try:
                    admitted.append(session.submit_async(compiled))
                except QueryRejected:
                    rejected += 1
            assert rejected > 0, "a 6-deep burst against depth 1+1 must shed"
            assert len(admitted) >= 2
            for pending in admitted:
                pending.result(timeout=60)
            # The shed queries left no residue: the session still serves.
            result = session.submit(compiled, timeout=60)
            assert "out" in result.outputs
            stats = session.stats
            assert stats["queries_rejected"] == rejected
            assert stats["queries"] == len(admitted) + 1
            assert stats["plan_cache_hits"] + stats["plan_cache_misses"] == stats["queries"]
            assert stats["in_flight"] == 0 and stats["queued"] == 0
        finally:
            session.close()

    def test_two_analyst_soak_no_starvation(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(
            inputs, seed=3, gateway=GatewayConfig(max_in_flight=1),
        )
        try:
            alice = [session.submit_async(compiled, analyst="alice") for _ in range(5)]
            bob = session.submit_async(compiled, analyst="bob")
            bob.result(timeout=120)
            # Fair scheduling: bob's single query overtook alice's backlog
            # instead of waiting for all five to drain.
            assert not all(pending.done() for pending in alice)
            for pending in alice:
                pending.result(timeout=120)
            stats = session.stats
            assert stats["queries"] == 6
            assert stats["queries_completed"] == 6
            assert stats["latency"]["queue_wait_seconds"]["count"] == 6
            assert stats["latency"]["execute_seconds"]["count"] == 6
        finally:
            session.close()

    def test_stats_snapshot_consistent_under_concurrent_submits(self):
        ctx_a, inputs = two_party_query()
        ctx_b, _ = two_party_query(agg_extra=True)
        plans = [cc.compile_query(ctx_a), cc.compile_query(ctx_b)]
        session = cc.open_session(inputs, seed=3)
        try:
            torn = []
            stop = threading.Event()

            def read_stats():
                while not stop.is_set():
                    stats = session.stats
                    if stats["plan_cache_hits"] + stats["plan_cache_misses"] != stats["queries"]:
                        torn.append(stats)

            reader = threading.Thread(target=read_stats)
            reader.start()
            try:
                pending = [session.submit_async(plans[i % 2]) for i in range(8)]
                for item in pending:
                    item.result(timeout=120)
            finally:
                stop.set()
                reader.join(timeout=10)
            assert not torn, f"torn stats snapshot observed: {torn[:1]}"
            stats = session.stats
            assert stats["queries"] == 8
            assert stats["plan_cache_misses"] == 2
            assert stats["plan_cache_hits"] == 6
        finally:
            session.close()

    def test_stats_is_an_immutable_snapshot(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(inputs, seed=3)
        try:
            session.submit(compiled, timeout=60)
            snapshot = session.stats
            snapshot["queries"] = 999
            snapshot["latency"]["bogus"] = {}
            fresh = session.stats
            assert fresh["queries"] == 1
            assert "bogus" not in fresh["latency"]
        finally:
            session.close()

    def test_scrape_endpoint_serves_session_metrics(self):
        ctx, inputs = two_party_query()
        compiled = cc.compile_query(ctx)
        session = cc.open_session(inputs, seed=3)
        try:
            session.submit(compiled, timeout=60)
            server = session.serve_metrics()
            assert session.serve_metrics() is server  # idempotent
            with urllib.request.urlopen(server.url, timeout=5) as response:
                body = response.read().decode("utf-8")
            assert "conclave_queries_total 1" in body
            assert "conclave_queue_wait_seconds_bucket" in body
            # Wire accounting flows into the scrape with party/peer labels.
            assert 'conclave_wire_bytes_sent_total{party=' in body
        finally:
            session.close()
        # Closing the session tears the endpoint down with it.
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(server.url, timeout=2)

    def test_max_workers_validation(self):
        with pytest.raises(ValueError):
            cc.open_session(parties=["a", "b"], max_workers=0)
        with pytest.raises(ValueError):
            cc.open_session(parties=["a", "b"], max_workers="many")

    def test_rejection_error_is_exported(self):
        assert cc.QueryRejected is QueryRejected
        assert cc.GatewayConfig is GatewayConfig
        assert DEFAULT_ANALYST == "anonymous"
