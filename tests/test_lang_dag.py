"""Tests for the LINQ-style frontend and the DAG container."""

import pytest

import repro as cc
from repro.core.dag import Dag
from repro.core.lang import QueryContext
from repro.core.operators import (
    Aggregate,
    Collect,
    Concat,
    Create,
    Filter,
    Join,
    Project,
    is_reversible,
)
from repro.data.schema import ColumnType, PUBLIC


@pytest.fixture
def parties():
    return cc.Party("a.example"), cc.Party("b.example")


def simple_schema(trust=()):
    return [cc.Column("key", cc.INT, trust=list(trust)), cc.Column("value", cc.INT)]


class TestFrontend:
    def test_requires_active_context(self):
        with pytest.raises(RuntimeError):
            cc.new_table("t", simple_schema(), at=cc.Party("a"))

    def test_new_table_sets_owner_and_trust(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            handle = ctx.new_table("t", simple_schema(trust=[pb]), at=pa)
        rel = handle.node.out_rel
        assert rel.owner == pa.name
        assert rel.stored_with == {pa.name}
        # The owner is implicitly trusted with every column.
        assert rel.trust["key"] == {pa.name, pb.name}
        assert rel.trust["value"] == {pa.name}

    def test_public_column_annotation(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            handle = ctx.new_table(
                "t", [cc.Column("k", cc.INT, public=True)], at=pa
            )
        assert PUBLIC in handle.node.out_rel.trust["k"]

    def test_builder_methods_produce_expected_nodes_and_schemas(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            t2 = ctx.new_table("t2", simple_schema(), at=pb)
            combined = ctx.concat([t1, t2])
            projected = combined.project(["value", "key"])
            filtered = projected.filter("value", ">", 10)
            agg = filtered.aggregate("total", cc.SUM, group=["key"], over="value")
            joined = agg.join(t1, left=["key"], right=["key"])
            scaled = joined.multiply("double", "total", 2)
            ratio = scaled.divide("ratio", "total", by="value")
            ratio.collect("out", to=[pa])
            dag = ctx.build_dag()

        assert isinstance(combined.node, Concat)
        assert projected.schema.names == ["value", "key"]
        assert isinstance(filtered.node, Filter)
        assert agg.schema.names == ["key", "total"]
        assert isinstance(joined.node, Join)
        assert joined.schema.names == ["key", "total", "value"]
        assert scaled.schema.names == ["key", "total", "value", "double"]
        assert ratio.schema["ratio"].ctype is ColumnType.FLOAT
        assert len(dag.outputs()) == 1

    def test_join_name_collision_gets_suffix(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            t2 = ctx.new_table("t2", simple_schema(), at=pb)
            joined = t1.join(t2, left=["key"], right=["key"])
        assert joined.schema.names == ["key", "value", "value_r"]

    def test_project_accepts_positional_indices(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            projected = t1.project([1, "key"])
        assert projected.schema.names == ["value", "key"]

    def test_unknown_columns_rejected(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            with pytest.raises(KeyError):
                t1.project(["nope"])
            with pytest.raises(KeyError):
                t1.filter("nope", ">", 1)
            with pytest.raises(KeyError):
                t1.aggregate("x", cc.SUM, group=["key"], over="nope")

    def test_multi_column_group_or_keys_rejected(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            t2 = ctx.new_table("t2", simple_schema(), at=pb)
            with pytest.raises(ValueError):
                t1.aggregate("x", cc.SUM, group=["key", "value"], over="value")
            with pytest.raises(ValueError):
                t1.join(t2, left=["key", "value"], right=["key", "value"])

    def test_concat_schema_mismatch_rejected(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            t2 = ctx.new_table("t2", [cc.Column("other", cc.INT)], at=pb)
            with pytest.raises(ValueError):
                ctx.concat([t1, t2])

    def test_output_requires_recipient(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            with pytest.raises(ValueError):
                t1.collect("out", to=[])

    def test_build_dag_requires_an_output(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            ctx.new_table("t1", simple_schema(), at=pa)
            with pytest.raises(ValueError):
                ctx.build_dag()

    def test_relation_names_are_unique(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("dup", simple_schema(), at=pa)
            t2 = ctx.new_table("dup", simple_schema(), at=pa)
        assert t1.name != t2.name


class TestDag:
    def build_linear_dag(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            t2 = ctx.new_table("t2", simple_schema(), at=pb)
            combined = ctx.concat([t1, t2])
            agg = combined.aggregate("total", cc.SUM, group=["key"], over="value")
            agg.collect("out", to=[pa])
            return ctx.build_dag()

    def test_topological_order_respects_dependencies(self, parties):
        dag = self.build_linear_dag(parties)
        order = dag.topological()
        position = {node.node_id: i for i, node in enumerate(order)}
        for node in order:
            for parent in node.parents:
                assert position[parent.node_id] < position[node.node_id]

    def test_inputs_outputs_leaves(self, parties):
        dag = self.build_linear_dag(parties)
        assert len(dag.inputs()) == 2
        assert len(dag.outputs()) == 1
        assert dag.leaves() == dag.outputs()

    def test_node_for_relation(self, parties):
        dag = self.build_linear_dag(parties)
        assert isinstance(dag.node_for_relation("out"), Collect)
        with pytest.raises(KeyError):
            dag.node_for_relation("missing")

    def test_parties(self, parties):
        dag = self.build_linear_dag(parties)
        assert dag.parties() == {"a.example", "b.example"}

    def test_validate_detects_broken_links(self, parties):
        dag = self.build_linear_dag(parties)
        # Claim a child relationship the child does not reciprocate.
        dag.roots[0].children.append(dag.outputs()[0])
        with pytest.raises(ValueError, match="broken"):
            dag.validate()

    def test_roots_must_be_create_nodes(self, parties):
        dag = self.build_linear_dag(parties)
        non_root = dag.outputs()[0]
        with pytest.raises(TypeError):
            Dag([non_root])

    def test_empty_dag_rejected(self):
        with pytest.raises(ValueError):
            Dag([])

    def test_render_mentions_every_relation(self, parties):
        dag = self.build_linear_dag(parties)
        rendered = dag.render()
        for node in dag.topological():
            assert node.out_rel.name in rendered


class TestOperatorHelpers:
    def test_is_reversible_rules(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            scaled = t1.multiply("x", "value", 3)
            zero_scaled = t1.multiply("y", "value", 0)
            col_scaled = t1.multiply("z", "value", "key")
            reorder = t1.project(["value", "key"])
            narrowing = t1.project(["key"])
        assert is_reversible(scaled.node)
        assert not is_reversible(zero_scaled.node)
        assert not is_reversible(col_scaled.node)
        assert is_reversible(reorder.node)
        assert not is_reversible(narrowing.node)

    def test_remove_from_dag_splices_unary_node(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            projected = t1.project(["key", "value"])
            projected.collect("out", to=[pa])
        project_node = projected.node
        collect_node = project_node.children[0]
        project_node.remove_from_dag()
        assert collect_node.parents == [t1.node]
        assert collect_node in t1.node.children

    def test_replace_parent_errors_for_non_parent(self, parties):
        pa, pb = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            t2 = ctx.new_table("t2", simple_schema(), at=pb)
            projected = t1.project(["key"])
        with pytest.raises(ValueError):
            projected.node.replace_parent(t2.node, t1.node)

    def test_locus(self, parties):
        pa, _ = parties
        with QueryContext() as ctx:
            t1 = ctx.new_table("t1", simple_schema(), at=pa)
            projected = t1.project(["key"])
        projected.node.is_mpc = True
        assert projected.node.locus() == ("mpc", "joint")
        projected.node.is_mpc = False
        projected.node.run_at = "b.example"
        assert projected.node.locus() == ("local", "b.example")
