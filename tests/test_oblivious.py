"""Tests for the oblivious sub-protocols (shuffle, sort, merge, indexing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.oblivious import (
    oblivious_index,
    oblivious_merge,
    oblivious_shuffle,
    oblivious_sort,
)
from repro.mpc.secretshare import SecretSharingEngine


def share_columns(engine, *columns):
    return [engine.input_vector(np.array(col, dtype=np.int64)) for col in columns]


class TestShuffle:
    def test_preserves_multiset_and_row_alignment(self, engine):
        keys, values = share_columns(engine, [3, 1, 2, 5], [30, 10, 20, 50])
        out = oblivious_shuffle(engine, [keys, values], permutation=np.array([2, 0, 3, 1]))
        got = list(zip(out[0].reveal().tolist(), out[1].reveal().tolist()))
        assert sorted(got) == [(1, 10), (2, 20), (3, 30), (5, 50)]
        assert got == [(2, 20), (3, 30), (5, 50), (1, 10)]

    def test_random_shuffle_preserves_rows(self, engine):
        keys, values = share_columns(engine, list(range(20)), list(range(100, 120)))
        out = oblivious_shuffle(engine, [keys, values])
        got = sorted(zip(out[0].reveal().tolist(), out[1].reveal().tolist()))
        assert got == [(i, 100 + i) for i in range(20)]

    def test_shuffle_is_metered(self, engine):
        cols = share_columns(engine, [1, 2, 3], [4, 5, 6])
        before = engine.meter.shuffled_elements
        oblivious_shuffle(engine, cols)
        assert engine.meter.shuffled_elements == before + 6

    def test_invalid_permutation_rejected(self, engine):
        cols = share_columns(engine, [1, 2, 3])
        with pytest.raises(ValueError):
            oblivious_shuffle(engine, cols, permutation=np.array([0, 0, 1]))

    def test_empty_relation(self, engine):
        cols = share_columns(engine, [])
        out = oblivious_shuffle(engine, cols)
        assert len(out[0]) == 0

    def test_no_columns(self, engine):
        assert oblivious_shuffle(engine, []) == []


class TestSort:
    def test_sorts_key_and_carries_payload(self, engine):
        key, payload = share_columns(engine, [5, 1, 4, 2, 3], [50, 10, 40, 20, 30])
        skey, spayload = oblivious_sort(engine, key, [payload])
        assert skey.reveal().tolist() == [1, 2, 3, 4, 5]
        assert spayload[0].reveal().tolist() == [10, 20, 30, 40, 50]

    def test_handles_duplicate_keys(self, engine):
        key, payload = share_columns(engine, [2, 1, 2, 1], [1, 2, 3, 4])
        skey, spayload = oblivious_sort(engine, key, [payload])
        assert skey.reveal().tolist() == [1, 1, 2, 2]
        assert sorted(spayload[0].reveal().tolist()[:2]) == [2, 4]

    def test_non_power_of_two_sizes(self, engine):
        values = [9, 3, 7, 1, 5, 8, 2]
        key, = share_columns(engine, values)
        skey, _ = oblivious_sort(engine, key, [])
        assert skey.reveal().tolist() == sorted(values)

    def test_single_element_and_empty(self, engine):
        key, = share_columns(engine, [42])
        skey, _ = oblivious_sort(engine, key, [])
        assert skey.reveal().tolist() == [42]

    def test_sort_charges_comparisons(self, engine):
        key, = share_columns(engine, [4, 3, 2, 1])
        before = engine.meter.comparisons
        oblivious_sort(engine, key, [])
        assert engine.meter.comparisons > before

    @given(values=st.lists(st.integers(-1000, 1000), min_size=2, max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_sort_matches_sorted_property(self, values):
        engine = SecretSharingEngine(["a", "b", "c"], seed=3)
        key = engine.input_vector(np.array(values, dtype=np.int64))
        skey, _ = oblivious_sort(engine, key, [])
        assert skey.reveal().tolist() == sorted(values)


class TestMerge:
    def test_merges_sorted_runs(self, engine):
        k1, v1 = share_columns(engine, [1, 3, 5], [10, 30, 50])
        k2, v2 = share_columns(engine, [2, 4, 6], [20, 40, 60])
        key, payload = oblivious_merge(engine, [(k1, [v1]), (k2, [v2])])
        assert key.reveal().tolist() == [1, 2, 3, 4, 5, 6]
        assert payload[0].reveal().tolist() == [10, 20, 30, 40, 50, 60]

    def test_merge_cheaper_than_sort(self, engine):
        values = list(range(32))
        k1, = share_columns(engine, values[:16])
        k2, = share_columns(engine, values[16:])
        merge_engine = SecretSharingEngine(["a", "b", "c"], seed=1)
        mk1 = merge_engine.input_vector(np.array(values[:16], dtype=np.int64))
        mk2 = merge_engine.input_vector(np.array(values[16:], dtype=np.int64))
        oblivious_merge(merge_engine, [(mk1, []), (mk2, [])])
        merge_cost = merge_engine.meter.comparisons

        sort_engine = SecretSharingEngine(["a", "b", "c"], seed=1)
        key = sort_engine.input_vector(np.array(values, dtype=np.int64))
        oblivious_sort(sort_engine, key, [])
        sort_cost = sort_engine.meter.comparisons
        assert merge_cost < sort_cost

    def test_mismatched_payload_width_rejected(self, engine):
        k1, v1 = share_columns(engine, [1], [2])
        k2, = share_columns(engine, [3])
        with pytest.raises(ValueError):
            oblivious_merge(engine, [(k1, [v1]), (k2, [])])

    def test_empty_run_list_rejected(self, engine):
        with pytest.raises(ValueError):
            oblivious_merge(engine, [])


class TestObliviousIndex:
    def test_selects_rows_at_secret_indices(self, engine):
        col1, col2 = share_columns(engine, [10, 20, 30, 40], [1, 2, 3, 4])
        idx = engine.input_vector(np.array([2, 0], dtype=np.int64))
        out = oblivious_index(engine, [col1, col2], idx)
        assert out[0].reveal().tolist() == [30, 10]
        assert out[1].reveal().tolist() == [3, 1]

    def test_duplicate_indices_allowed(self, engine):
        col, = share_columns(engine, [7, 8, 9])
        idx = engine.input_vector(np.array([1, 1, 1], dtype=np.int64))
        out = oblivious_index(engine, [col], idx)
        assert out[0].reveal().tolist() == [8, 8, 8]

    def test_out_of_range_index_rejected(self, engine):
        col, = share_columns(engine, [7, 8])
        idx = engine.input_vector(np.array([5], dtype=np.int64))
        with pytest.raises(IndexError):
            oblivious_index(engine, [col], idx)

    def test_cost_is_loglinear_not_quadratic(self, engine):
        col, = share_columns(engine, list(range(64)))
        idx = engine.input_vector(np.arange(64, dtype=np.int64))
        before = engine.meter.comparisons
        oblivious_index(engine, [col], idx)
        cost = engine.meter.comparisons - before
        assert cost < 64 * 64  # far below the quadratic MPC-join cost
        assert cost >= 128  # but not free: (n+m) log(n+m) lower bound
