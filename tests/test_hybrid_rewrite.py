"""Tests for the hybrid-operator insertion pass (§5.3)."""

import pytest

import repro as cc
from repro.core.config import CompilationConfig
from repro.core.lang import QueryContext
from repro.core.operators import HybridAggregate, HybridJoin, Join, PublicJoin

PA, PB, PC = cc.Party("regulator.gov"), cc.Party("bank-a.com"), cc.Party("bank-b.com")


def two_party_join_query(left_trust=(), right_trust=(), public=False):
    with QueryContext() as ctx:
        left = ctx.new_table(
            "left",
            [cc.Column("k", trust=list(left_trust), public=public), cc.Column("v")],
            at=PB,
        )
        right = ctx.new_table(
            "right",
            [cc.Column("k", trust=list(right_trust), public=public), cc.Column("w")],
            at=PC,
        )
        joined = left.join(right, left=["k"], right=["k"])
        joined.collect("out", to=[PB])
    return ctx


def grouped_agg_query(group_trust=()):
    with QueryContext() as ctx:
        t1 = ctx.new_table(
            "t1", [cc.Column("g", trust=list(group_trust)), cc.Column("v")], at=PB
        )
        t2 = ctx.new_table(
            "t2", [cc.Column("g", trust=list(group_trust)), cc.Column("v")], at=PC
        )
        joined = t1.join(t2, left=["g"], right=["g"])
        agg = joined.aggregate("total", cc.SUM, group=["g"], over="v")
        agg.collect("out", to=[PB])
    return ctx


class TestHybridJoin:
    def test_shared_trusted_party_triggers_hybrid_join(self):
        compiled = cc.compile_query(two_party_join_query(left_trust=[PA], right_trust=[PA]))
        joins = [n for n in compiled.dag.topological() if isinstance(n, Join)]
        assert len(joins) == 1
        assert isinstance(joins[0], HybridJoin)
        assert joins[0].stp == PA.name
        assert any("hybrid_join" in r for r in compiled.report.hybrid_rewrites)

    def test_no_shared_trust_keeps_plain_mpc_join(self):
        compiled = cc.compile_query(two_party_join_query(left_trust=[PA], right_trust=[]))
        joins = [n for n in compiled.dag.topological() if isinstance(n, Join)]
        assert not isinstance(joins[0], (HybridJoin, PublicJoin))
        assert joins[0].is_mpc

    def test_public_keys_trigger_public_join(self):
        compiled = cc.compile_query(two_party_join_query(public=True))
        joins = [n for n in compiled.dag.topological() if isinstance(n, Join)]
        assert isinstance(joins[0], PublicJoin)
        assert joins[0].host in {PB.name, PC.name}

    def test_hybrid_operators_can_be_disabled(self):
        config = CompilationConfig(enable_hybrid_operators=False)
        compiled = cc.compile_query(
            two_party_join_query(left_trust=[PA], right_trust=[PA]), config
        )
        joins = [n for n in compiled.dag.topological() if isinstance(n, Join)]
        assert not isinstance(joins[0], (HybridJoin, PublicJoin))
        assert compiled.report.hybrid_rewrites == []

    def test_allowed_stps_restricts_choice(self):
        config = CompilationConfig(allowed_stps=[PC.name])
        compiled = cc.compile_query(
            two_party_join_query(left_trust=[PA], right_trust=[PA]), config
        )
        joins = [n for n in compiled.dag.topological() if isinstance(n, Join)]
        # PA is the only trusted party but it is not allowed to act as STP,
        # so the join stays a plain MPC join.
        assert not isinstance(joins[0], HybridJoin)


class TestHybridAggregate:
    def test_trusted_group_column_triggers_hybrid_aggregate(self):
        compiled = cc.compile_query(grouped_agg_query(group_trust=[PA]))
        aggs = [n for n in compiled.dag.topological() if n.op_name.endswith("aggregate")]
        hybrid = [n for n in aggs if isinstance(n, HybridAggregate)]
        assert hybrid
        assert hybrid[0].stp == PA.name

    def test_private_group_column_stays_oblivious(self):
        compiled = cc.compile_query(grouped_agg_query(group_trust=[]))
        hybrid = [n for n in compiled.dag.topological() if isinstance(n, HybridAggregate)]
        assert hybrid == []

    def test_single_stp_chosen_across_whole_query(self):
        # Join key trusts PA; group column trusts PA as well: one STP overall.
        with QueryContext() as ctx:
            demo = ctx.new_table("demo", [cc.Column("ssn"), cc.Column("zip")], at=PA)
            s1 = ctx.new_table(
                "s1", [cc.Column("ssn", trust=[PA]), cc.Column("score")], at=PB
            )
            s2 = ctx.new_table(
                "s2", [cc.Column("ssn", trust=[PA]), cc.Column("score")], at=PC
            )
            joined = demo.join(ctx.concat([s1, s2]), left=["ssn"], right=["ssn"])
            agg = joined.aggregate("total", cc.SUM, group=["zip"], over="score")
            agg.collect("out", to=[PA])
        compiled = cc.compile_query(ctx)
        stps = {
            getattr(n, "stp", None)
            for n in compiled.dag.topological()
            if getattr(n, "stp", None) is not None
        }
        assert stps == {PA.name}

    def test_hybrid_nodes_remain_mpc_after_compilation(self):
        compiled = cc.compile_query(grouped_agg_query(group_trust=[PA]))
        for node in compiled.dag.topological():
            if isinstance(node, (HybridAggregate, HybridJoin, PublicJoin)):
                assert node.is_mpc
