"""Tests for the per-party CSV workflow (agent-style file-based execution)."""

import pytest

import repro as cc
from repro.core.dispatch import load_party_inputs, run_query_from_csv
from repro.data.csvio import read_csv, write_csv
from repro.queries import market_concentration_query
from repro.workloads.taxi import TaxiWorkload


@pytest.fixture
def csv_dirs(tmp_path):
    """Write each company's trips to its own directory, agent-style."""
    workload = TaxiWorkload(num_companies=3, zero_fare_fraction=0.05, seed=53)
    tables = workload.party_tables(3, 50)
    spec = market_concentration_query(rows_per_party=50)
    dirs = {}
    for i, party in enumerate(spec.parties):
        party_dir = tmp_path / party
        write_csv(tables[i], party_dir / f"trips_{i}.csv")
        dirs[party] = str(party_dir)
    return spec, dirs, workload, tables


def test_load_party_inputs_reads_every_relation(csv_dirs):
    spec, dirs, _, tables = csv_dirs
    inputs = load_party_inputs(dirs)
    assert set(inputs) == set(spec.parties)
    assert inputs[spec.parties[0]]["trips_0"] == tables[0]


def test_load_party_inputs_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_party_inputs({"ghost.example": str(tmp_path / "missing")})


def test_run_query_from_csv_end_to_end(csv_dirs, tmp_path):
    spec, dirs, workload, tables = csv_dirs
    compiled = cc.compile_query(spec.context)
    out_dir = tmp_path / "results"
    result = run_query_from_csv(compiled, dirs, output_dir=str(out_dir))
    hhi = result.outputs["hhi_result"].rows()[0][0]
    assert hhi == pytest.approx(workload.reference_hhi(tables), abs=1e-3)
    # The output was also written as CSV for the recipient.
    written = read_csv(out_dir / "hhi_result.csv")
    assert written.rows()[0][0] == pytest.approx(hhi, abs=1e-6)


def test_run_query_from_csv_without_output_dir(csv_dirs):
    spec, dirs, _, _ = csv_dirs
    compiled = cc.compile_query(spec.context)
    result = run_query_from_csv(compiled, dirs)
    assert "hhi_result" in result.outputs
