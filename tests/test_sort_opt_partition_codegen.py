"""Tests for sort elimination (§5.4), partitioning and code generation (§6)."""

import pytest

import repro as cc
from repro.core.codegen import generate_jobs, render_source
from repro.core.config import CompilationConfig
from repro.core.lang import QueryContext
from repro.core.operators import Aggregate, SortBy
from repro.core.partition import describe_partitioning, partition_dag

PA, PB = cc.Party("a.example"), cc.Party("b.example")
KV = [cc.Column("k"), cc.Column("v")]


def compile_query(build, config=None):
    with QueryContext() as ctx:
        build(ctx)
    return cc.compile_query(ctx, config or CompilationConfig())


class TestSortElimination:
    def test_redundant_sort_is_removed(self):
        def build(ctx):
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            sorted_once = ctx.concat([t1, t2]).sort_by("k").sort_by("k")
            sorted_once.collect("out", to=[PA])

        compiled = compile_query(build, CompilationConfig(enable_push_down=False))
        sorts = [n for n in compiled.dag.topological() if isinstance(n, SortBy)]
        assert len(sorts) == 1
        assert compiled.report.sorts_eliminated >= 1

    def test_aggregation_after_sort_marked_presorted(self):
        def build(ctx):
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).sort_by("k").aggregate(
                "total", cc.SUM, group=["k"], over="v"
            )
            agg.collect("out", to=[PA])

        compiled = compile_query(build, CompilationConfig(enable_push_down=False))
        aggs = [n for n in compiled.dag.topological() if isinstance(n, Aggregate)]
        assert aggs[0].presorted

    def test_sort_on_other_column_not_eliminated(self):
        def build(ctx):
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            result = ctx.concat([t1, t2]).sort_by("v").sort_by("k")
            result.collect("out", to=[PA])

        compiled = compile_query(build, CompilationConfig(enable_push_down=False))
        sorts = [n for n in compiled.dag.topological() if isinstance(n, SortBy)]
        assert len(sorts) == 2

    def test_elimination_can_be_disabled(self):
        def build(ctx):
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            result = ctx.concat([t1, t2]).sort_by("k").sort_by("k")
            result.collect("out", to=[PA])

        config = CompilationConfig(enable_push_down=False, enable_sort_elimination=False)
        compiled = compile_query(build, config)
        sorts = [n for n in compiled.dag.topological() if isinstance(n, SortBy)]
        assert len(sorts) == 2
        assert compiled.report.sorts_eliminated == 0

    def test_order_preserving_chain_keeps_sort_information(self):
        def build(ctx):
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            chained = (
                ctx.concat([t1, t2])
                .sort_by("k")
                .filter("v", ">", 0)
                .project(["k", "v"])
                .aggregate("total", cc.SUM, group=["k"], over="v")
            )
            chained.collect("out", to=[PA])

        compiled = compile_query(build, CompilationConfig(enable_push_down=False))
        agg = [n for n in compiled.dag.topological() if isinstance(n, Aggregate)][0]
        assert agg.presorted


class TestPartitioning:
    def credit_like_compiled(self):
        def build(ctx):
            demo = ctx.new_table("demo", [cc.Column("ssn"), cc.Column("zip")], at=PA)
            scores = ctx.new_table(
                "scores", [cc.Column("ssn", trust=[PA]), cc.Column("score")], at=PB
            )
            joined = demo.join(scores, left=["ssn"], right=["ssn"])
            agg = joined.aggregate("total", cc.SUM, group=["zip"], over="score")
            agg.collect("out", to=[PA])

        return compile_query(build)

    def test_subplans_cover_all_nodes_exactly_once(self):
        compiled = self.credit_like_compiled()
        node_ids = [n.node_id for sp in compiled.subplans for n in sp.nodes]
        assert sorted(node_ids) == sorted(n.node_id for n in compiled.dag.topological())

    def test_subplans_are_locus_homogeneous(self):
        compiled = self.credit_like_compiled()
        for sp in compiled.subplans:
            loci = {("mpc", "joint") if n.is_mpc else ("local", n.run_at or n.out_rel.owner) for n in sp.nodes}
            kinds = {k for k, _ in loci}
            assert len(kinds) == 1

    def test_subplan_ordering_is_executable(self):
        compiled = self.credit_like_compiled()
        seen: set[str] = set()
        for sp in compiled.subplans:
            for inp in sp.input_relations():
                assert inp in seen, f"sub-plan {sp.index} reads {inp} before it is produced"
            seen.update(sp.relation_names)

    def test_inputs_and_outputs_identified(self):
        compiled = self.credit_like_compiled()
        mpc_plans = [sp for sp in compiled.subplans if sp.kind == "mpc"]
        assert mpc_plans
        assert all(sp.input_relations() for sp in mpc_plans)

    def test_describe_partitioning_mentions_every_subplan(self):
        compiled = self.credit_like_compiled()
        text = describe_partitioning(compiled.subplans)
        for sp in compiled.subplans:
            assert f"sub-plan {sp.index}" in text


class TestCodegen:
    def compiled_with_backend(self, mpc_backend="sharemind", cleartext_backend="python"):
        def build(ctx):
            t1 = ctx.new_table("t1", KV, at=PA)
            t2 = ctx.new_table("t2", KV, at=PB)
            agg = ctx.concat([t1, t2]).aggregate("total", cc.SUM, group=["k"], over="v")
            agg.collect("out", to=[PA])

        config = CompilationConfig(
            mpc_backend=mpc_backend, cleartext_backend=cleartext_backend
        )
        return compile_query(build, config)

    def test_one_job_per_subplan_with_matching_backends(self):
        compiled = self.compiled_with_backend()
        assert len(compiled.jobs) == len(compiled.subplans)
        for job, sp in zip(compiled.jobs, compiled.subplans):
            expected = "sharemind" if sp.kind == "mpc" else "python"
            assert job.backend == expected
            assert job.party == sp.party

    def test_python_source_contains_operator_calls(self):
        compiled = self.compiled_with_backend()
        local_jobs = [j for j in compiled.jobs if j.backend == "python"]
        assert any(".aggregate(" in j.source for j in local_jobs)

    def test_spark_source_uses_pyspark_idioms(self):
        compiled = self.compiled_with_backend(cleartext_backend="spark")
        spark_jobs = [j for j in compiled.jobs if j.backend == "spark"]
        assert spark_jobs
        assert any("SparkSession" in j.source for j in spark_jobs)
        assert any("groupBy" in j.source or ".union(" in j.source for j in spark_jobs)

    def test_sharemind_source_is_secrec_flavoured(self):
        compiled = self.compiled_with_backend()
        mpc_jobs = [j for j in compiled.jobs if j.backend == "sharemind"]
        assert mpc_jobs
        assert any("pd_shared3p" in j.source for j in mpc_jobs)
        assert any("sortingAggregate" in j.source or "cat(" in j.source for j in mpc_jobs)

    def test_oblivc_source_is_c_flavoured(self):
        compiled = self.compiled_with_backend(mpc_backend="obliv-c")
        mpc_jobs = [j for j in compiled.jobs if j.backend == "obliv-c"]
        assert mpc_jobs
        assert any("obliv int64" in j.source for j in mpc_jobs)

    def test_every_job_declares_inputs_and_outputs(self):
        compiled = self.compiled_with_backend()
        produced: set[str] = set()
        for job in compiled.jobs:
            for inp in job.inputs:
                assert inp in produced
            produced.update(s.out_rel.name for s in job.steps)

    def test_render_source_for_hybrid_operators(self):
        def build(ctx):
            left = ctx.new_table(
                "left", [cc.Column("k", trust=[PA]), cc.Column("v")], at=PB
            )
            right = ctx.new_table(
                "right", [cc.Column("k", trust=[PA]), cc.Column("w")], at=cc.Party("c.example")
            )
            joined = left.join(right, left=["k"], right=["k"])
            joined.collect("out", to=[PB])

        compiled = compile_query(build)
        mpc_sources = "\n".join(j.source for j in compiled.jobs if j.backend == "sharemind")
        assert "hybridJoin" in mpc_sources
