"""Tests for CSV input/output."""

import pytest

from repro.data.csvio import read_csv, write_csv
from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table


def test_roundtrip_int_table(tmp_path, kv_table):
    path = write_csv(kv_table, tmp_path / "kv.csv")
    loaded = read_csv(path)
    assert loaded == kv_table


def test_roundtrip_with_explicit_schema(tmp_path, kv_table):
    path = write_csv(kv_table, tmp_path / "kv.csv")
    loaded = read_csv(path, schema=kv_table.schema)
    assert loaded == kv_table


def test_float_columns_inferred(tmp_path):
    schema = Schema([ColumnDef("a", ColumnType.INT), ColumnDef("b", ColumnType.FLOAT)])
    table = Table.from_rows(schema, [(1, 1.5), (2, 2.25)])
    path = write_csv(table, tmp_path / "f.csv")
    loaded = read_csv(path)
    assert loaded.schema["b"].ctype is ColumnType.FLOAT
    assert loaded.column("b").tolist() == [1.5, 2.25]


def test_header_mismatch_rejected(tmp_path, kv_table):
    path = write_csv(kv_table, tmp_path / "kv.csv")
    wrong = Schema([ColumnDef("x"), ColumnDef("y")])
    with pytest.raises(ValueError, match="does not match"):
        read_csv(path, schema=wrong)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_csv(path)


def test_empty_table_roundtrip(tmp_path, kv_schema):
    table = Table.empty(kv_schema)
    path = write_csv(table, tmp_path / "empty_table.csv")
    loaded = read_csv(path, schema=kv_schema)
    assert loaded.num_rows == 0
    assert loaded.schema.names == ["key", "value"]


def test_write_creates_parent_directories(tmp_path, kv_table):
    path = write_csv(kv_table, tmp_path / "deep" / "nested" / "kv.csv")
    assert path.exists()
