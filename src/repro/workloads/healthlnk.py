"""HealthLNK-style clinical workload for the SMCQL comparison (§7.4).

SMCQL's medical queries run over two hospitals' ``diagnoses`` and
``medications`` relations drawn from the HealthLNK repository.  The paper's
reproduction of those experiments states the statistics this generator
reproduces:

* patient identifiers are public (anonymised) and the two hospitals'
  populations overlap by ~2% (aspirin count);
* diagnosis codes are private; for comorbidity, the number of distinct
  diagnosis codes is 10% of the number of input rows;
* the aspirin-count query keeps patients with a heart-disease diagnosis
  (ICD-9 414.x) and an aspirin prescription, so a configurable fraction of
  rows carries the "interesting" codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table

DIAGNOSES_SCHEMA = Schema(
    [ColumnDef("patient_id", ColumnType.INT), ColumnDef("diagnosis", ColumnType.INT)]
)
MEDICATIONS_SCHEMA = Schema(
    [ColumnDef("patient_id", ColumnType.INT), ColumnDef("medication", ColumnType.INT)]
)

#: Sentinel codes used by the aspirin-count query.
HEART_DISEASE_CODE = 414
ASPIRIN_CODE = 1191
#: Diagnosis code whose comorbidities the comorbidity query studies.
CDIFF_CODE = 8

@dataclass
class HealthLNKWorkload:
    """Generator for two-hospital diagnoses/medications relations."""

    #: Fraction of patient ids shared between the two hospitals.
    patient_overlap: float = 0.02
    #: Distinct diagnosis codes as a fraction of input rows (comorbidity).
    distinct_diagnosis_fraction: float = 0.1
    #: Fraction of diagnosis rows carrying the heart-disease code.
    heart_disease_fraction: float = 0.2
    #: Fraction of medication rows prescribing aspirin.
    aspirin_fraction: float = 0.2
    seed: int = 11

    # -- aspirin count -------------------------------------------------------------------------

    def hospital_patients(self, hospital: int, num_patients: int) -> np.ndarray:
        """Patient-id universe for one hospital with the configured overlap."""
        rng = np.random.default_rng(self.seed)
        shared_count = max(1, int(num_patients * self.patient_overlap))
        shared = np.arange(shared_count, dtype=np.int64)
        offset = shared_count + hospital * num_patients
        own = np.arange(offset, offset + num_patients - shared_count, dtype=np.int64)
        patients = np.concatenate([shared, own])
        rng.shuffle(patients)
        return patients

    def diagnoses(self, hospital: int, num_rows: int) -> Table:
        """One hospital's diagnoses relation (patient_id, diagnosis)."""
        rng = np.random.default_rng(self.seed + 100 + hospital)
        patients = self.hospital_patients(hospital, max(num_rows, 1))
        patient_ids = rng.choice(patients, size=num_rows)
        num_codes = max(2, int(num_rows * self.distinct_diagnosis_fraction))
        codes = rng.integers(0, num_codes, size=num_rows, dtype=np.int64) + 1000
        heart = rng.random(num_rows) < self.heart_disease_fraction
        codes[heart] = HEART_DISEASE_CODE
        return Table(DIAGNOSES_SCHEMA, [patient_ids.astype(np.int64), codes])

    def medications(self, hospital: int, num_rows: int) -> Table:
        """One hospital's medications relation (patient_id, medication)."""
        rng = np.random.default_rng(self.seed + 200 + hospital)
        patients = self.hospital_patients(hospital, max(num_rows, 1))
        patient_ids = rng.choice(patients, size=num_rows)
        meds = rng.integers(2000, 3000, size=num_rows, dtype=np.int64)
        aspirin = rng.random(num_rows) < self.aspirin_fraction
        meds[aspirin] = ASPIRIN_CODE
        return Table(MEDICATIONS_SCHEMA, [patient_ids.astype(np.int64), meds])

    def aspirin_count_inputs(self, rows_per_party: int):
        """(diagnoses, medications) per hospital for the aspirin-count query."""
        return (
            [self.diagnoses(0, rows_per_party), self.diagnoses(1, rows_per_party)],
            [self.medications(0, rows_per_party), self.medications(1, rows_per_party)],
        )

    def reference_aspirin_count(self, diagnoses: list[Table], medications: list[Table]) -> int:
        """Cleartext aspirin count: distinct heart-disease patients on aspirin."""
        diag = diagnoses[0].concat(*diagnoses[1:])
        meds = medications[0].concat(*medications[1:])
        heart = diag.filter("diagnosis", "==", HEART_DISEASE_CODE)
        aspirin = meds.filter("medication", "==", ASPIRIN_CODE)
        joined = heart.join(aspirin, ["patient_id"], ["patient_id"])
        return joined.distinct(["patient_id"]).num_rows

    # -- comorbidity ---------------------------------------------------------------------------

    def comorbidity_diagnoses(self, hospital: int, num_rows: int) -> Table:
        """Diagnoses of the c. diff cohort for the comorbidity query."""
        rng = np.random.default_rng(self.seed + 300 + hospital)
        patients = self.hospital_patients(hospital, max(num_rows, 1))
        patient_ids = rng.choice(patients, size=num_rows)
        num_codes = max(2, int(num_rows * self.distinct_diagnosis_fraction))
        codes = rng.integers(0, num_codes, size=num_rows, dtype=np.int64)
        return Table(DIAGNOSES_SCHEMA, [patient_ids.astype(np.int64), codes])

    def comorbidity_inputs(self, rows_per_party: int) -> list[Table]:
        return [self.comorbidity_diagnoses(0, rows_per_party), self.comorbidity_diagnoses(1, rows_per_party)]

    def reference_comorbidity(self, diagnoses: list[Table], top_k: int = 10) -> Table:
        """Cleartext comorbidity result: the ``top_k`` most frequent diagnoses."""
        combined = diagnoses[0].concat(*diagnoses[1:])
        counts = combined.aggregate(["diagnosis"], None, "count", "cnt")
        return counts.sort_by(["cnt"], ascending=False).limit(top_k)
