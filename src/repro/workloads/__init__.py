"""Synthetic workload generators for the paper's experiments.

The original evaluation uses data we cannot ship offline (six years of NYC
taxi trip records, credit-bureau style SSN/score data, and the HealthLNK
clinical data repository).  Each generator here produces seeded synthetic
data with the statistics that matter for the corresponding experiment —
company/fare skew and zero-fare rows for the taxi data, SSN join structure
for the credit data, 2% patient-ID overlap and 10% distinct diagnoses for
HealthLNK — so the benchmark harness exercises the same query plans on the
same data shapes.
"""

from repro.workloads.generators import random_integers_table, uniform_key_value_table
from repro.workloads.taxi import TaxiWorkload
from repro.workloads.credit import CreditWorkload
from repro.workloads.healthlnk import HealthLNKWorkload

__all__ = [
    "random_integers_table",
    "uniform_key_value_table",
    "TaxiWorkload",
    "CreditWorkload",
    "HealthLNKWorkload",
]
