"""Generic synthetic-relation generators.

The microbenchmarks of Figure 1 feed "random integers" into single
operators; these helpers produce such relations with controllable key
cardinality so that join selectivity and group counts can be set to match
an experiment's description.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table


def random_integers_table(
    num_rows: int,
    columns: list[str],
    low: int = 0,
    high: int = 1_000_000,
    seed: int = 0,
) -> Table:
    """A relation of uniformly random integers (Figure 1's operator inputs)."""
    rng = np.random.default_rng(seed)
    schema = Schema([ColumnDef(name, ColumnType.INT) for name in columns])
    data = [rng.integers(low, high, size=num_rows, dtype=np.int64) for _ in columns]
    return Table(schema, data)


def uniform_key_value_table(
    num_rows: int,
    num_keys: int,
    key_column: str = "key",
    value_column: str = "value",
    value_high: int = 1_000,
    seed: int = 0,
) -> Table:
    """A (key, value) relation with keys drawn uniformly from ``num_keys`` ids.

    Used by the hybrid-operator microbenchmarks (Figure 5): ``num_keys``
    controls both join selectivity and the number of output groups.
    """
    if num_keys < 1:
        raise ValueError("need at least one distinct key")
    rng = np.random.default_rng(seed)
    schema = Schema([ColumnDef(key_column, ColumnType.INT), ColumnDef(value_column, ColumnType.INT)])
    keys = rng.integers(0, num_keys, size=num_rows, dtype=np.int64)
    values = rng.integers(0, value_high, size=num_rows, dtype=np.int64)
    return Table(schema, [keys, values])


def split_across_parties(table: Table, num_parties: int, seed: int = 0) -> list[Table]:
    """Randomly partition a relation's rows across ``num_parties`` parties."""
    if num_parties < 1:
        raise ValueError("need at least one party")
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_parties, size=table.num_rows)
    return [table.select_rows(assignment == p) for p in range(num_parties)]
