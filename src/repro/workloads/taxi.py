"""NYC-taxi-style workload for the market concentration (HHI) query (§7.1).

The paper models the sales books of three imaginary vehicle-for-hire
companies with six years of public NYC taxi fare data: ~1.3 billion trips
randomly divided across the companies, with zero-fare trips filtered out by
the query.  This generator reproduces the relevant statistics:

* each trip carries a company identifier and an integer fare (cents);
* company market shares are skewed (configurable), because a perfectly
  uniform split would make the HHI degenerate;
* a configurable fraction of trips has a zero fare, so the query's filter
  has work to do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table

TRIP_SCHEMA = Schema(
    [
        ColumnDef("companyID", ColumnType.INT),
        ColumnDef("price", ColumnType.INT),
    ]
)


@dataclass
class TaxiWorkload:
    """Generator for per-party trip relations.

    Parameters
    ----------
    num_companies:
        Number of vehicle-for-hire companies appearing in the data.
    zero_fare_fraction:
        Fraction of trips with a zero fare (filtered out by the query).
    share_skew:
        Dirichlet concentration controlling how uneven company market
        shares are; smaller values give more skew.
    """

    num_companies: int = 3
    zero_fare_fraction: float = 0.02
    share_skew: float = 1.0
    max_fare_cents: int = 10_000
    seed: int = 42

    def company_shares(self) -> np.ndarray:
        """The underlying market-share distribution across companies."""
        rng = np.random.default_rng(self.seed)
        return rng.dirichlet(np.full(self.num_companies, self.share_skew))

    def party_table(self, party_index: int, num_rows: int) -> Table:
        """Generate one party's trip relation with ``num_rows`` trips."""
        rng = np.random.default_rng(self.seed + 1_000 * (party_index + 1))
        shares = self.company_shares()
        companies = rng.choice(self.num_companies, size=num_rows, p=shares).astype(np.int64)
        fares = rng.integers(1, self.max_fare_cents, size=num_rows, dtype=np.int64)
        zero_mask = rng.random(num_rows) < self.zero_fare_fraction
        fares[zero_mask] = 0
        return Table(TRIP_SCHEMA, [companies, fares])

    def party_tables(self, num_parties: int, rows_per_party: int) -> list[Table]:
        """Generate the relations held by each of ``num_parties`` companies."""
        return [self.party_table(i, rows_per_party) for i in range(num_parties)]

    def reference_hhi(self, tables: list[Table]) -> float:
        """Cleartext HHI over the generated data (for validating query output)."""
        combined = tables[0].concat(*tables[1:]) if len(tables) > 1 else tables[0]
        nonzero = combined.filter("price", ">", 0)
        revenue = nonzero.aggregate(["companyID"], "price", "sum", "revenue")
        values = revenue.column("revenue").astype(np.float64)
        total = values.sum()
        if total == 0:
            return 0.0
        shares = values / total
        return float((shares**2).sum())
