"""Credit-card regulation workload (§2.1, §7.3).

The regulator holds a demographics relation mapping social security numbers
to ZIP codes; each credit reporting agency holds (SSN, credit score) rows
for its card holders.  The query joins the two on SSN and averages scores by
ZIP code.  The generator controls the statistics that drive the plan's cost:
the number of card-holders per agency, how many of them appear in the
regulator's demographics (join hit rate), and the number of ZIP codes
(output cardinality of the grouped aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table

DEMOGRAPHICS_SCHEMA = Schema(
    [ColumnDef("ssn", ColumnType.INT), ColumnDef("zip", ColumnType.INT)]
)
SCORES_SCHEMA = Schema(
    [ColumnDef("ssn", ColumnType.INT), ColumnDef("score", ColumnType.INT)]
)


@dataclass
class CreditWorkload:
    """Generator for the regulator's and the agencies' relations."""

    num_zip_codes: int = 100
    #: Fraction of an agency's card holders present in the demographics.
    join_hit_rate: float = 1.0
    min_score: int = 300
    max_score: int = 850
    seed: int = 7

    def demographics(self, num_people: int) -> Table:
        """The regulator's (ssn, zip) relation."""
        rng = np.random.default_rng(self.seed)
        ssns = np.arange(num_people, dtype=np.int64)
        zips = rng.integers(0, self.num_zip_codes, size=num_people, dtype=np.int64)
        return Table(DEMOGRAPHICS_SCHEMA, [ssns, zips])

    def agency_scores(self, agency_index: int, num_rows: int, num_people: int) -> Table:
        """One credit agency's (ssn, score) relation."""
        rng = np.random.default_rng(self.seed + 1_000 * (agency_index + 1))
        num_known = int(num_rows * self.join_hit_rate)
        num_rows = min(num_rows, 2 * num_people) if num_people else num_rows
        known = rng.choice(max(num_people, 1), size=min(num_known, num_people), replace=False)
        unknown_count = num_rows - len(known)
        unknown = rng.integers(num_people, num_people * 2 + 1, size=max(unknown_count, 0), dtype=np.int64)
        ssns = np.concatenate([known.astype(np.int64), unknown])
        scores = rng.integers(self.min_score, self.max_score + 1, size=len(ssns), dtype=np.int64)
        return Table(SCORES_SCHEMA, [ssns, scores])

    def generate(self, num_people: int, rows_per_agency: int, num_agencies: int = 2):
        """Generate (demographics, [agency relations])."""
        demo = self.demographics(num_people)
        agencies = [
            self.agency_scores(i, rows_per_agency, num_people) for i in range(num_agencies)
        ]
        return demo, agencies

    def reference_average_scores(self, demographics: Table, agencies: list[Table]) -> Table:
        """Cleartext average credit score by ZIP code (validation reference)."""
        scores = agencies[0].concat(*agencies[1:]) if len(agencies) > 1 else agencies[0]
        joined = demographics.join(scores, ["ssn"], ["ssn"])
        totals = joined.aggregate(["zip"], "score", "sum", "total")
        counts = joined.aggregate(["zip"], None, "count", "cnt")
        merged = totals.join(counts, ["zip"], ["zip"])
        return merged.arithmetic("avg_score", "total", "/", "cnt")
