"""The full TCP mesh connecting the per-party agent processes.

Every agent binds a listener on an ephemeral port (``bind("127.0.0.1", 0)``
— the OS picks a free port, so concurrent test runs never collide), reports
the chosen port to the coordinator, and receives the full party→port map
back.  The mesh is then established deterministically: agent *i* dials every
agent *j < i* (in the shared party order) and introduces itself with a hello
frame, so both ends agree on which party each connection belongs to.

Each connection gets a reader thread that demultiplexes incoming frames by
kind into per-peer FIFO queues:

* ``msg``   — engine-level protocol messages (share exchanges) consumed by
  :class:`~repro.runtime.transport.SocketTransport`;
* ``table`` — whole relations shipped between sub-plans (a party's input
  entering MPC, or an authorised cleartext transfer).

All blocking reads carry a timeout, so a crashed peer surfaces as a
:class:`MeshTimeout` instead of a wedged process.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.runtime.transport import TransportError
from repro.runtime.wire import WireError, recv_frame, send_frame

KIND_MSG = "msg"
KIND_TABLE = "table"
_KINDS = (KIND_MSG, KIND_TABLE)

#: How long an agent keeps retrying to dial a peer that has announced its
#: port but may not have reached ``accept`` yet.
_DIAL_RETRY_SECONDS = 10.0


class MeshTimeout(TransportError):
    """A peer did not produce an expected frame within the timeout."""


@dataclass
class _PeerClosed:
    """Sentinel queued when a peer connection dies."""

    error: Exception


class PeerMesh:
    """Bidirectional frame channels from one agent to every other agent."""

    def __init__(self, party: str, connections: dict[str, socket.socket], timeout: float = 60.0):
        self.party = party
        self.timeout = timeout
        self._socks = dict(connections)
        self._send_locks = {p: threading.Lock() for p in self._socks}
        self._queues: dict[str, dict[str, queue.Queue]] = {
            kind: {p: queue.Queue() for p in self._socks} for kind in _KINDS
        }
        self._closed = False
        self._readers = []
        for peer, sock in self._socks.items():
            thread = threading.Thread(
                target=self._read_loop, args=(peer, sock), daemon=True,
                name=f"mesh-reader-{party}-{peer}",
            )
            thread.start()
            self._readers.append(thread)

    @property
    def peers(self) -> set[str]:
        return set(self._socks)

    # -- frame plumbing ----------------------------------------------------------------

    def _read_loop(self, peer: str, sock: socket.socket) -> None:
        # Catch *everything*: a malformed frame (wrong tuple shape, unknown
        # kind) must surface as _PeerClosed at the consumers, not silently
        # kill the reader thread and degrade every later read into a
        # root-cause-free MeshTimeout.
        try:
            while True:
                frame = recv_frame(sock)
                try:
                    kind, payload = frame
                    queue_for_peer = self._queues[kind][peer]
                except (TypeError, ValueError, KeyError):
                    raise WireError(
                        f"malformed mesh frame from {peer!r}: {type(frame).__name__}"
                    ) from None
                queue_for_peer.put(payload)
        except Exception as exc:  # noqa: BLE001 - reader thread must never die silently
            for kind in _KINDS:
                self._queues[kind][peer].put(_PeerClosed(exc))

    def _send(self, peer: str, kind: str, payload: Any) -> None:
        try:
            sock = self._socks[peer]
        except KeyError:
            raise TransportError(f"agent {self.party!r} has no mesh link to {peer!r}") from None
        with self._send_locks[peer]:
            send_frame(sock, (kind, payload))

    def _receive(self, peer: str, kind: str) -> Any:
        try:
            item = self._queues[kind][peer].get(timeout=self.timeout)
        except KeyError:
            raise TransportError(f"agent {self.party!r} has no mesh link to {peer!r}") from None
        except queue.Empty:
            raise MeshTimeout(
                f"agent {self.party!r} timed out after {self.timeout:.0f}s waiting for a "
                f"{kind!r} frame from {peer!r}"
            ) from None
        if isinstance(item, _PeerClosed):
            raise TransportError(
                f"mesh link {self.party!r} <- {peer!r} closed: {item.error}"
            ) from item.error
        return item

    # -- engine-level messages -----------------------------------------------------------

    def send_message(self, peer: str, message: tuple) -> None:
        self._send(peer, KIND_MSG, message)

    def receive_message(self, peer: str) -> tuple:
        return self._receive(peer, KIND_MSG)

    # -- relation shipping ----------------------------------------------------------------

    def send_table(self, peer: str, relation: str, table) -> None:
        self._send(peer, KIND_TABLE, (relation, table))

    def broadcast_table(self, relation: str, table) -> None:
        for peer in sorted(self._socks):
            self.send_table(peer, relation, table)

    def receive_table(self, peer: str, relation: str):
        got_relation, table = self._receive(peer, KIND_TABLE)
        if got_relation != relation:
            raise TransportError(
                f"agent {self.party!r} expected relation {relation!r} from {peer!r} "
                f"but received {got_relation!r}; the party processes have diverged"
            )
        return table

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sock in self._socks.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


def bind_listener(timeout: float) -> socket.socket:
    """Bind a loopback listener on an ephemeral port (deterministic: the OS
    hands out a free port, which is then exchanged via handshake)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    listener.settimeout(timeout)
    return listener


def connect_mesh(
    party: str,
    parties: list[str],
    ports: dict[str, int],
    listener: socket.socket,
    timeout: float = 60.0,
) -> PeerMesh:
    """Establish the full mesh for ``party`` given every agent's port.

    ``parties`` is the shared, ordered party list; agent *i* dials every
    agent *j < i* and accepts one connection from every agent *j > i*.
    """
    order = list(parties)
    index = order.index(party)
    connections: dict[str, socket.socket] = {}

    for peer in order[:index]:
        connections[peer] = _dial(party, peer, ports[peer], timeout)

    for _ in order[index + 1:]:
        try:
            sock, _addr = listener.accept()
        except (socket.timeout, OSError) as exc:
            raise MeshTimeout(
                f"agent {party!r} timed out waiting for inbound mesh connections"
            ) from exc
        sock.settimeout(timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello, peer = recv_frame(sock)
        if hello != "hello" or peer not in order:
            raise TransportError(f"agent {party!r} received a malformed mesh hello: {hello!r}")
        connections[peer] = sock

    return PeerMesh(party, connections, timeout=timeout)


def _dial(party: str, peer: str, port: int, timeout: float) -> socket.socket:
    deadline = time.monotonic() + min(_DIAL_RETRY_SECONDS, timeout)
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
            sock.settimeout(timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_frame(sock, ("hello", party))
            return sock
        except OSError as exc:
            last_error = exc
            time.sleep(0.05)
    raise TransportError(
        f"agent {party!r} could not reach peer {peer!r} on port {port}: {last_error}"
    )
