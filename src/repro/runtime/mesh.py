"""The full TCP mesh connecting the per-party agent processes.

Every agent binds a listener on an ephemeral port (``bind(bind_host, 0)``
— the OS picks a free port, so concurrent test runs never collide; the host
defaults to loopback and comes from the session's ``bind_host`` knob),
advertises its real ``(host, port)`` endpoint to the coordinator, and
receives the full party→endpoint map back.  The mesh is then established
deterministically: agent *i* dials every agent *j < i* (in the shared party
order) and introduces itself with a hello frame, so both ends agree on
which party each connection belongs to.

The mesh is **multiplexed by query id** so one set of TCP connections can
carry many queries — including concurrent ones — for a long-lived agent.
Every frame is ``(kind, query_id, payload)`` and each connection has one
reader thread demultiplexing frames into per-``(kind, query id, peer)`` FIFO
queues:

* ``msg``   — engine-level protocol messages (share exchanges) consumed by
  :class:`~repro.runtime.transport.SocketTransport`;
* ``table`` — whole relations shipped between sub-plans (a party's input
  entering MPC, or an authorised cleartext transfer);
* ``abort`` — a peer's execution of that query failed; all queues of the
  ``(peer, query id)`` pair are poisoned so blocked readers fail
  immediately instead of running out their timeout.

Executors never touch the mesh directly: :meth:`PeerMesh.channel` returns a
:class:`MeshChannel` — a view bound to one query id with the classic
``send_message``/``receive_table`` interface — so concurrent queries
interleave safely on the shared sockets.

All blocking reads carry a timeout, so a crashed peer surfaces as a
:class:`MeshTimeout` instead of a wedged process; a peer whose connection
*dies* poisons every existing and future queue for that peer, so in-flight
and not-yet-started reads fail loudly.

Supervision support (the fault-tolerant service runtime):

* every outgoing frame carries a per-link **sequence number**; the receiver
  discards non-increasing sequences, so a duplicated frame (fault injection,
  or an application-level retransmit) can never desynchronise the lockstep
  MPC protocol;
* :meth:`PeerMesh.replace_peer` swaps in a fresh connection for a peer whose
  process was restarted — the old socket is closed, its poison marks
  cleared, and a new reader thread takes over (stale readers of the replaced
  socket are generation-guarded so they cannot re-poison the healthy peer);
* :func:`rejoin_mesh` / :func:`accept_rejoin` are the two ends of the
  restart handshake: the replacement agent dials every *live* peer with an
  epoch-tagged hello, survivors accept exactly one matching connection
  (draining stale-epoch strays left by failed restart attempts);
* an optional :class:`~repro.runtime.faults.FaultInjector` hooks every send,
  so drop/dup/delay/torn faults happen at the real choke point.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Any

from repro.runtime.transport import TransportError
from repro.runtime.wire import (
    LinkStats,
    WireError,
    encode_frame,
    peer_common_name,
    recv_frame,
    secure_client_socket,
    secure_server_socket,
    send_frame,
    send_torn_frame,
)

KIND_MSG = "msg"
KIND_TABLE = "table"
KIND_ABORT = "abort"
_DATA_KINDS = (KIND_MSG, KIND_TABLE)

#: Query id used by single-query runs (and any caller that never asks for an
#: explicit channel).
DEFAULT_QUERY_ID = 0

#: How long an agent keeps retrying to dial a peer that has announced its
#: port but may not have reached ``accept`` yet.
_DIAL_RETRY_SECONDS = 10.0


class MeshTimeout(TransportError):
    """A peer did not produce an expected frame within the timeout."""


@dataclass
class _PeerClosed:
    """Sentinel queued when a peer connection dies (poisons every query)."""

    error: Exception


@dataclass
class _QueryAborted:
    """Sentinel queued when a peer aborts one query (other queries live on)."""

    peer: str
    query_id: int
    reason: str


class PeerMesh:
    """Bidirectional frame channels from one agent to every other agent."""

    def __init__(
        self,
        party: str,
        connections: dict[str, socket.socket],
        timeout: float = 60.0,
        *,
        injector=None,
        released_watermark: int = 0,
    ):
        self.party = party
        self.timeout = timeout
        self._socks = dict(connections)
        self._send_locks = {p: threading.Lock() for p in self._socks}
        # Per-link outgoing sequence numbers (reset to 0 when a peer link is
        # replaced, so the replacement's reader starts fresh).
        self._send_seq = {p: 0 for p in self._socks}
        self._injector = injector
        #: Per-peer wire accounting: every mesh frame (data and abort alike)
        #: is counted by full wire size on both ends, so the metrics layer
        #: can report bytes-on-wire per party pair without ever seeing a
        #: payload.  Counting starts after the handshake hellos (both ends
        #: symmetrically), so sent/received totals mirror across peers.
        self.link_stats: dict[str, LinkStats] = {p: LinkStats() for p in self._socks}
        # (kind, query_id, peer) -> FIFO queue, created lazily under _lock.
        self._lock = threading.Lock()
        self._queues: dict[tuple[str, int, str], queue.Queue] = {}
        self._peer_errors: dict[str, Exception] = {}
        self._aborted: dict[tuple[str, int], str] = {}
        # Query ids whose channels were released: late frames (a peer racing
        # an abort, say) are dropped instead of re-creating queues that
        # nothing would ever drain — a long-lived mesh must not accumulate
        # garbage per finished query.  Coordinators allocate ids
        # contiguously from 1, so the set compacts against a low-watermark
        # (every id <= watermark is released) and stays bounded by the
        # number of concurrently in-flight queries.
        self._released: set[int] = set()
        # A replacement agent joining mid-session inherits the coordinator's
        # released-id watermark, so late frames for long-finished queries are
        # dropped instead of accumulating in queues nothing drains.
        self._released_watermark = released_watermark
        self._closed = False
        self._readers = []
        for peer, sock in self._socks.items():
            self._start_reader(peer, sock)

    def _start_reader(self, peer: str, sock: socket.socket) -> None:
        thread = threading.Thread(
            target=self._read_loop, args=(peer, sock), daemon=True,
            name=f"mesh-reader-{self.party}-{peer}",
        )
        thread.start()
        self._readers.append(thread)

    @property
    def peers(self) -> set[str]:
        return set(self._socks)

    def channel(self, query_id: int) -> "MeshChannel":
        """A view of the mesh carrying exactly one query's frames."""
        return MeshChannel(self, query_id)

    # -- frame plumbing ----------------------------------------------------------------

    def _queue_for(self, kind: str, query_id: int, peer: str) -> queue.Queue:
        key = (kind, query_id, peer)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
                # A queue born after the peer died (or after it aborted this
                # query) must fail its readers too, not wait out the timeout.
                if peer in self._peer_errors:
                    q.put(_PeerClosed(self._peer_errors[peer]))
                elif (peer, query_id) in self._aborted:
                    q.put(_QueryAborted(peer, query_id, self._aborted[(peer, query_id)]))
            return q

    def _is_released(self, query_id: int) -> bool:
        """Caller must hold ``_lock``."""
        return 0 < query_id <= self._released_watermark or query_id in self._released

    def _queue_for_frame(self, kind: str, query_id: int, peer: str) -> queue.Queue | None:
        """The reader-side twin of :meth:`_queue_for`: ``None`` for released
        queries.  The released check and the queue creation share one lock
        acquisition, so a frame racing :meth:`release_query` can never
        resurrect a queue nothing will drain."""
        with self._lock:
            if self._is_released(query_id):
                return None
            key = (kind, query_id, peer)
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q

    def _read_loop(self, peer: str, sock: socket.socket) -> None:
        # Catch *everything*: a malformed frame (wrong tuple shape, unknown
        # kind) must surface as _PeerClosed at the consumers, not silently
        # kill the reader thread and degrade every later read into a
        # root-cause-free MeshTimeout.
        last_seq = 0  # highest sequence number seen on *this* connection
        try:
            while True:
                try:
                    # A long-lived mesh is idle between queries; a timeout
                    # with no frame started is not an error.  (Timeouts on
                    # blocked *consumers* are enforced by queue.get.)
                    frame = recv_frame(
                        sock, allow_idle_timeout=True, stats=self.link_stats[peer]
                    )
                except TimeoutError:
                    continue
                try:
                    seq, kind, query_id, payload = frame
                    if kind not in _DATA_KINDS and kind != KIND_ABORT:
                        raise ValueError(kind)
                except (TypeError, ValueError):
                    raise WireError(
                        f"malformed mesh frame from {peer!r}: {type(frame).__name__}"
                    ) from None
                if seq <= last_seq:
                    continue  # duplicated frame: already delivered, discard
                last_seq = seq
                if kind == KIND_ABORT:
                    self._mark_aborted(peer, query_id, payload)
                    continue
                q = self._queue_for_frame(kind, query_id, peer)
                if q is not None:  # None: query released; drop the late frame
                    q.put(payload)
        except Exception as exc:  # noqa: BLE001 - reader thread must never die silently
            self._mark_peer_closed(peer, exc, sock)

    def _mark_peer_closed(self, peer: str, exc: Exception, sock: socket.socket | None = None) -> None:
        with self._lock:
            # Generation guard: a reader of a socket that has since been
            # *replaced* (the peer restarted) must not poison the healthy
            # replacement link.  Only the reader of the current socket may
            # declare the peer dead.
            if sock is not None and self._socks.get(peer) is not sock:
                return
            self._peer_errors[peer] = exc
            existing = [q for (k, _qid, p), q in self._queues.items()
                        if p == peer and k in _DATA_KINDS]
        for q in existing:
            # Drain frames that were demultiplexed before the link died: a
            # consumer must see the failure on its *next* receive, not read
            # stale data off a dead conversation first.  (New receives on
            # fresh queues fail via the _peer_errors mark.)
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    break
            q.put(_PeerClosed(exc))

    def replace_peer(self, peer: str, sock: socket.socket) -> None:
        """Swap in a fresh connection for a restarted ``peer`` (add-or-replace).

        Clears the peer's poison mark so new queues work again, resets the
        outgoing sequence counter (the replacement's reader starts from 0),
        keeps the cumulative :class:`LinkStats` (wire totals span restarts),
        and starts a reader for the new socket.  Queues poisoned *before*
        the swap keep their sentinels — in-flight consumers of the dead link
        must still fail so the query layer can retry on the fresh one.
        """
        with self._lock:
            old = self._socks.get(peer)
            self._socks[peer] = sock
            self._send_locks.setdefault(peer, threading.Lock())
            self._send_seq[peer] = 0
            self.link_stats.setdefault(peer, LinkStats())
            self._peer_errors.pop(peer, None)
        if old is not None and old is not sock:
            try:
                old.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                old.close()
            except OSError:
                pass
        self._start_reader(peer, sock)

    def _mark_aborted(self, peer: str, query_id: int, reason: str) -> None:
        with self._lock:
            if self._is_released(query_id):
                return  # late abort for a finished query: nothing to poison
            self._aborted[(peer, query_id)] = reason
            existing = [q for (k, qid, p), q in self._queues.items()
                        if p == peer and qid == query_id and k in _DATA_KINDS]
        for q in existing:
            q.put(_QueryAborted(peer, query_id, reason))

    def _send(self, peer: str, kind: str, query_id: int, payload: Any) -> None:
        try:
            sock = self._socks[peer]
        except KeyError:
            raise TransportError(f"agent {self.party!r} has no mesh link to {peer!r}") from None
        with self._send_locks[peer]:
            # The sequence number is consumed even for dropped frames — a
            # drop simulates loss *after* the sender committed the send, so
            # the receiver sees a gap, never a reused number.
            seq = self._send_seq.get(peer, 0) + 1
            self._send_seq[peer] = seq
            frame = (seq, kind, query_id, payload)
            fault = None if self._injector is None else self._injector.on_mesh_send(peer, query_id)
            if fault is None:
                send_frame(sock, frame, stats=self.link_stats[peer])
            elif fault.action == "drop":
                pass  # silently lost: the peer's consumer starves into MeshTimeout
            elif fault.action == "delay":
                self._injector.apply_delay(fault)
                send_frame(sock, frame, stats=self.link_stats[peer])
            elif fault.action == "dup":
                data = encode_frame(frame)
                try:
                    sock.sendall(data)
                    sock.sendall(data)
                except OSError as exc:
                    raise WireError(f"failed to send {len(data)}-byte frame: {exc}") from exc
                self.link_stats[peer].add_sent(len(data))
                self.link_stats[peer].add_sent(len(data))
            elif fault.action == "torn":
                try:
                    send_torn_frame(sock, frame)
                except WireError:
                    pass  # the peer may already be gone; die regardless
                self._injector.die()
            else:  # pragma: no cover - validate() rejects unknown actions
                send_frame(sock, frame, stats=self.link_stats[peer])

    def _receive(self, peer: str, kind: str, query_id: int) -> Any:
        if peer not in self._socks:
            raise TransportError(f"agent {self.party!r} has no mesh link to {peer!r}")
        q = self._queue_for(kind, query_id, peer)
        try:
            item = q.get(timeout=self.timeout)
        except queue.Empty:
            raise MeshTimeout(
                f"agent {self.party!r} timed out after {self.timeout:.0f}s waiting for a "
                f"{kind!r} frame from {peer!r} (query {query_id})"
            ) from None
        if isinstance(item, _PeerClosed):
            q.put(item)  # keep poisoning later readers of the same queue
            raise TransportError(
                f"mesh link {self.party!r} <- {peer!r} closed: {item.error}"
            ) from item.error
        if isinstance(item, _QueryAborted):
            q.put(item)
            raise TransportError(
                f"peer {peer!r} aborted query {query_id}: {item.reason}"
            )
        return item

    def traffic(self) -> dict[str, dict]:
        """Immutable per-peer wire totals: ``{peer: {bytes_sent, ...}}``."""
        return {peer: stats.snapshot() for peer, stats in self.link_stats.items()}

    def send_abort(self, query_id: int, reason: str) -> None:
        """Tell every peer this agent's execution of ``query_id`` failed."""
        for peer in sorted(self._socks):
            try:
                self._send(peer, KIND_ABORT, query_id, reason)
            except (TransportError, WireError):
                pass  # the peer is gone; its death already poisons our queues

    def release_query(self, query_id: int) -> None:
        """Drop the per-query queues and abort marks once a query finished;
        late frames for the id are discarded from then on."""
        with self._lock:
            self._released.add(query_id)
            # Compact: ids are contiguous, so advance the watermark over any
            # now-contiguous prefix and drop those ids from the set.
            while self._released_watermark + 1 in self._released:
                self._released_watermark += 1
                self._released.discard(self._released_watermark)
            for key in [k for k in self._queues if k[1] == query_id]:
                del self._queues[key]
            for key in [k for k in self._aborted if k[1] == query_id]:
                del self._aborted[key]

    # -- default-channel compatibility shims ---------------------------------------------

    def send_message(self, peer: str, message: tuple) -> None:
        self._send(peer, KIND_MSG, DEFAULT_QUERY_ID, message)

    def receive_message(self, peer: str) -> tuple:
        return self._receive(peer, KIND_MSG, DEFAULT_QUERY_ID)

    def send_table(self, peer: str, relation: str, table) -> None:
        self._send(peer, KIND_TABLE, DEFAULT_QUERY_ID, (relation, table))

    def broadcast_table(self, relation: str, table) -> None:
        for peer in sorted(self._socks):
            self.send_table(peer, relation, table)

    def receive_table(self, peer: str, relation: str):
        return self.channel(DEFAULT_QUERY_ID).receive_table(peer, relation)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sock in self._socks.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class MeshChannel:
    """One query's view of a :class:`PeerMesh`.

    Exposes the exact send/receive surface executors and transports use, so
    a channel is a drop-in ``mesh`` wherever a whole :class:`PeerMesh` was
    accepted before multiplexing existed.  Closing a channel releases its
    per-query queues but leaves the shared sockets open for other queries.
    """

    def __init__(self, mesh: PeerMesh, query_id: int):
        self._mesh = mesh
        self.query_id = query_id

    @property
    def party(self) -> str:
        return self._mesh.party

    @property
    def peers(self) -> set[str]:
        return self._mesh.peers

    @property
    def timeout(self) -> float:
        return self._mesh.timeout

    def send_message(self, peer: str, message: tuple) -> None:
        self._mesh._send(peer, KIND_MSG, self.query_id, message)

    def receive_message(self, peer: str) -> tuple:
        return self._mesh._receive(peer, KIND_MSG, self.query_id)

    def send_table(self, peer: str, relation: str, table) -> None:
        self._mesh._send(peer, KIND_TABLE, self.query_id, (relation, table))

    def broadcast_table(self, relation: str, table) -> None:
        for peer in sorted(self.peers):
            self.send_table(peer, relation, table)

    def receive_table(self, peer: str, relation: str):
        got_relation, table = self._mesh._receive(peer, KIND_TABLE, self.query_id)
        if got_relation != relation:
            raise TransportError(
                f"agent {self.party!r} expected relation {relation!r} from {peer!r} "
                f"but received {got_relation!r}; the party processes have diverged"
            )
        return table

    def abort(self, reason: str) -> None:
        """Broadcast that this agent's execution of the query failed."""
        self._mesh.send_abort(self.query_id, reason)

    def close(self) -> None:
        """Release the per-query queues; the mesh sockets stay open."""
        self._mesh.release_query(self.query_id)


def bind_listener(timeout: float, host: str = "127.0.0.1") -> socket.socket:
    """Bind a listener on ``host`` and an ephemeral port (deterministic: the
    OS hands out a free port, which is then exchanged via handshake).  The
    loopback default keeps single-machine runs self-contained; a routable
    ``host`` lets agents on different machines reach each other."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, 0))
    listener.listen(16)
    listener.settimeout(timeout)
    return listener


def _is_loopback(host: str) -> bool:
    return host == "localhost" or host == "::1" or host.startswith("127.")


def _endpoint(value, bind_host: str = "127.0.0.1") -> tuple[str, int]:
    """Normalise a peer address to a ``(host, port)`` endpoint.

    Agents advertise full endpoints.  A bare port (the pre-``bind_host``
    wire format, still emitted by some tests) is only meaningful when the
    session itself is loopback — it is accepted there with a
    :class:`DeprecationWarning` — and is a :class:`WireError` on a
    multi-host session (``bind_host`` non-loopback), where "assume
    127.0.0.1" would silently dial the wrong machine.
    """
    if isinstance(value, (tuple, list)):
        host, port = value
        return str(host), int(port)
    if not _is_loopback(bind_host):
        raise WireError(
            f"bare advertised port {value!r} is ambiguous on a multi-host session "
            f"(bind_host={bind_host!r}); advertise a full (host, port) endpoint"
        )
    warnings.warn(
        "bare advertised ports are deprecated; advertise (host, port) endpoints",
        DeprecationWarning,
        stacklevel=2,
    )
    return "127.0.0.1", int(value)


def _verify_peer_identity(sock: socket.socket, claimed: str, party: str) -> None:
    """Check the TLS-authenticated CN matches the party id a hello claims.

    On plaintext links there is no certificate and nothing to check; on TLS
    links (mutual authentication, so a verified peer certificate is always
    present) a mismatch means impersonation and fails the handshake.
    """
    cn = peer_common_name(sock)
    if cn is not None and cn != claimed:
        raise TransportError(
            f"agent {party!r} rejected a hello claiming party {claimed!r}: the "
            f"peer's TLS certificate authenticates {cn!r}"
        )


def _check_mesh_hello(frame, party: str, order: list[str], nonce: str | None) -> str:
    """Validate an inbound mesh hello; returns the authenticated party id.

    Hellos carry ``("hello", party, nonce)``; the legacy nonce-less form is
    accepted only when the session has no nonce (direct test wiring).  A
    wrong or missing nonce is an impersonation attempt (or a stray client)
    and fails the handshake.
    """
    if (
        not isinstance(frame, tuple)
        or len(frame) not in (2, 3)
        or frame[0] != "hello"
        or frame[1] not in order
    ):
        raise TransportError(f"agent {party!r} received a malformed mesh hello: {frame!r}")
    got_nonce = frame[2] if len(frame) == 3 else None
    if nonce is not None and got_nonce != nonce:
        raise TransportError(
            f"agent {party!r} rejected a mesh hello from {frame[1]!r}: wrong session nonce"
        )
    return frame[1]


def connect_mesh(
    party: str,
    parties: list[str],
    ports: dict[str, int | tuple[str, int]],
    listener: socket.socket,
    timeout: float = 60.0,
    *,
    injector=None,
    security=None,
    nonce: str | None = None,
    bind_host: str = "127.0.0.1",
) -> PeerMesh:
    """Establish the full mesh for ``party`` given every agent's endpoint.

    ``parties`` is the shared, ordered party list; agent *i* dials every
    agent *j < i* and accepts one connection from every agent *j > i*.
    ``ports`` maps party -> advertised ``(host, port)`` endpoint (bare ports
    are accepted as loopback only).  With ``security`` every link is wrapped
    in mutually-authenticated TLS and each hello's claimed party id is
    verified against the peer certificate's CN; ``nonce`` (the session
    secret the coordinator handed every agent) must match on every hello.
    """
    order = list(parties)
    index = order.index(party)
    connections: dict[str, socket.socket] = {}
    server_context = None if security is None else security.server_context(party)

    for peer in order[:index]:
        connections[peer] = _dial(
            party, peer, _endpoint(ports[peer], bind_host), timeout,
            security=security, nonce=nonce,
        )

    for _ in order[index + 1:]:
        try:
            sock, _addr = listener.accept()
        except (socket.timeout, OSError) as exc:
            raise MeshTimeout(
                f"agent {party!r} timed out waiting for inbound mesh connections"
            ) from exc
        sock.settimeout(timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if server_context is not None:
            sock = secure_server_socket(sock, server_context)
        frame = recv_frame(sock)
        peer = _check_mesh_hello(frame, party, order, nonce)
        _verify_peer_identity(sock, peer, party)
        connections[peer] = sock

    return PeerMesh(party, connections, timeout=timeout, injector=injector)


def rejoin_mesh(
    party: str,
    parties: list[str],
    ports: dict[str, int | tuple[str, int]],
    timeout: float = 60.0,
    *,
    epoch: int,
    injector=None,
    released_watermark: int = 0,
    security=None,
    nonce: str | None = None,
    bind_host: str = "127.0.0.1",
) -> PeerMesh:
    """Build the mesh for a *restarted* ``party`` joining a live session.

    Unlike :func:`connect_mesh`'s rank-ordered dial/accept split, a rejoining
    agent always **dials** every surviving peer (survivors are parked in
    ``accept`` by the supervisor's rejoin broadcast) and introduces itself
    with an epoch-tagged (and, with a session ``nonce``, nonce-carrying)
    hello, so survivors can tell this restart's connection apart from a
    stale one left over by an earlier failed attempt — and, under TLS, from
    an impersonator that knows the party id but holds the wrong certificate.
    ``ports`` holds only the *live* peers — a peer that is itself down is
    absent and will dial us once its own restart reaches this point.
    """
    connections: dict[str, socket.socket] = {}
    try:
        for peer in sorted(p for p in parties if p != party and p in ports):
            hello = (
                ("rejoin-hello", party, epoch)
                if nonce is None
                else ("rejoin-hello", party, epoch, nonce)
            )
            connections[peer] = _dial(
                party, peer, _endpoint(ports[peer], bind_host), timeout,
                hello=hello, security=security, nonce=nonce,
            )
    except Exception:
        for sock in connections.values():
            try:
                sock.close()
            except OSError:
                pass
        raise
    return PeerMesh(
        party, connections, timeout=timeout,
        injector=injector, released_watermark=released_watermark,
    )


def accept_rejoin(
    listener: socket.socket,
    party: str,
    peer: str,
    epoch: int,
    timeout: float,
    *,
    security=None,
    nonce: str | None = None,
) -> socket.socket:
    """Survivor side of the restart handshake: accept ``peer``'s rejoin dial.

    Accepts connections off ``listener`` until one presents the expected
    rejoin hello for ``(peer, epoch)`` — with the session nonce when one is
    set; anything stale — a hello from an earlier restart attempt of the
    same peer, a malformed frame, a dead connection, a failed TLS handshake
    — is closed and draining continues.  A connection that *claims* to be
    ``peer`` at the right epoch but fails authentication (wrong nonce, or a
    TLS certificate naming another party) is an impersonation attempt and
    raises :class:`TransportError` immediately.  Raises :class:`MeshTimeout`
    when the deadline passes first.
    """
    server_context = None if security is None else security.server_context(party)
    expected = (
        ("rejoin-hello", peer, epoch)
        if nonce is None
        else ("rejoin-hello", peer, epoch, nonce)
    )
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise MeshTimeout(
                f"agent {party!r} timed out waiting for {peer!r} (epoch {epoch}) to rejoin"
            )
        listener.settimeout(remaining)
        try:
            sock, _addr = listener.accept()
        except (socket.timeout, OSError) as exc:
            raise MeshTimeout(
                f"agent {party!r} timed out waiting for {peer!r} (epoch {epoch}) to rejoin"
            ) from exc
        sock.settimeout(timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if server_context is not None:
            try:
                sock = secure_server_socket(sock, server_context)
            except WireError:
                continue  # stray client / failed handshake: drain and keep waiting
        try:
            frame = recv_frame(sock)
        except (WireError, OSError):
            sock.close()
            continue
        if frame == expected:
            _verify_peer_identity(sock, peer, party)
            return sock
        if (
            isinstance(frame, tuple)
            and len(frame) in (3, 4)
            and frame[0] == "rejoin-hello"
            and frame[1] == peer
            and frame[2] == epoch
        ):
            # Right peer and epoch but wrong/missing session nonce: that is
            # not a stale restart attempt, it is an impersonation attempt.
            sock.close()
            raise TransportError(
                f"agent {party!r} rejected a rejoin hello claiming {peer!r} "
                f"(epoch {epoch}): wrong session nonce"
            )
        sock.close()  # stale epoch / unexpected party: drain and keep waiting


def _dial(
    party: str,
    peer: str,
    endpoint: tuple[str, int],
    timeout: float,
    *,
    hello: tuple | None = None,
    security=None,
    nonce: str | None = None,
) -> socket.socket:
    """Dial ``peer`` at its advertised ``(host, port)`` endpoint with
    jittered exponential backoff until the retry window closes.  The jitter
    is deterministic per (party, peer, endpoint) — restarts replay
    identically — while still decorrelating the parties of one mesh, so N
    agents dialling a slow starter don't retry in lockstep.

    With ``security`` the connection is wrapped in mutually-authenticated
    TLS before the hello is sent, and the peer certificate's CN must match
    ``peer`` — a TLS handshake or identity failure is deterministic and
    fails immediately instead of burning the retry window.
    """
    host, port = endpoint
    client_context = None if security is None else security.client_context(party)
    deadline = time.monotonic() + min(_DIAL_RETRY_SECONDS, timeout)
    rng = random.Random(f"{party}->{peer}:{host}:{port}")
    delay = 0.02
    last_error: Exception | None = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            last_error = exc
            sock = None
        if sock is not None:
            sock.settimeout(timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if client_context is not None:
                # A certificate problem will not heal on retry: fail closed
                # now with the structured WireError from the wrap helper.
                sock = secure_client_socket(sock, client_context)
                _verify_peer_identity(sock, peer, party)
            if hello is None:
                hello = ("hello", party) if nonce is None else ("hello", party, nonce)
            try:
                send_frame(sock, hello)
            except WireError as exc:
                # The peer accepted but the link died under the hello (e.g.
                # it was still draining stale connections): transient, retry.
                last_error = exc
                try:
                    sock.close()
                except OSError:
                    pass
            else:
                return sock
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(remaining, delay * (0.5 + rng.random())))
        delay = min(delay * 2, 0.5)
    raise TransportError(
        f"agent {party!r} could not reach peer {peer!r} at {host}:{port}: {last_error}"
    )
