"""The driver of the distributed runtime.

The coordinator is Conclave's query driver (§4.1): it takes a compiled plan
(already partitioned into per-backend sub-plans by
:func:`repro.core.partition.partition_dag`), spawns one agent OS process per
party, ships each agent the plan plus *only that party's* input tables over
a control socket, brokers the agent-to-agent mesh handshake (every agent
binds an ephemeral port and the coordinator broadcasts the port map), and
finally collects the authorised reveals, per-node timings, leakage reports
and MPC profiles back into a single
:class:`~repro.core.dispatch.QueryResult`.

Process hygiene: agent processes are daemonic, tracked in a module-level
registry (so test fixtures can kill leaks), and terminated in a ``finally``
block; every blocking socket operation carries a timeout so a wedged or
crashed agent surfaces as an error instead of hanging the driver.
"""

from __future__ import annotations

import multiprocessing
import socket
import time

from repro.core.config import CompilationConfig
from repro.hybrid.stp import LeakageReport
from repro.runtime.agent import agent_main
from repro.runtime.executor import completion_seconds
from repro.runtime.mesh import bind_listener
from repro.runtime.transport import TransportError
from repro.runtime.wire import WireError, recv_frame, send_frame

#: Live agent processes, for leak-hunting test fixtures.
_ACTIVE_PROCESSES: "set[multiprocessing.process.BaseProcess]" = set()


def active_agent_processes() -> list:
    """Agent processes started by any coordinator that are still alive."""
    return [p for p in list(_ACTIVE_PROCESSES) if p.is_alive()]


class AgentFailure(RuntimeError):
    """An agent process failed without a reconstructable exception."""


class SocketCoordinator:
    """Runs a compiled query with one OS process per party over TCP."""

    def __init__(
        self,
        parties: list[str],
        inputs: dict,
        config: CompilationConfig | None = None,
        seed: int = 0,
        *,
        timeout: float = 60.0,
        start_method: str | None = None,
    ):
        self.parties = list(parties)
        self.inputs = inputs
        self.config = config or CompilationConfig()
        self.seed = seed
        self.timeout = timeout
        self.start_method = start_method

    # -- lifecycle ----------------------------------------------------------------------

    def run(self, compiled):
        """Execute ``compiled`` across per-party agent processes."""
        from repro.core.dispatch import QueryResult

        wall_start = time.perf_counter()
        ctx = multiprocessing.get_context(self.start_method)
        listener = bind_listener(self.timeout)
        port = listener.getsockname()[1]
        processes: dict[str, multiprocessing.process.BaseProcess] = {}
        connections: dict[str, socket.socket] = {}
        try:
            for party in self.parties:
                proc = ctx.Process(
                    target=agent_main,
                    args=(party, "127.0.0.1", port, self.timeout),
                    daemon=True,
                    name=f"conclave-agent-{party}",
                )
                proc.start()
                processes[party] = proc
                _ACTIVE_PROCESSES.add(proc)

            connections = self._accept_agents(listener)
            for party, sock in connections.items():
                send_frame(sock, ("plan", {
                    "parties": self.parties,
                    "compiled": compiled,
                    "config": self.config,
                    "seed": self.seed,
                    "inputs": self.inputs.get(party, {}),
                    "timeout": self.timeout,
                }))

            ports = {}
            for party, sock in connections.items():
                ports[party] = self._expect(party, sock, "ports")
            for sock in connections.values():
                send_frame(sock, ("peers", ports))

            payloads = self._gather_results(connections)
        finally:
            for sock in connections.values():
                try:
                    sock.close()
                except OSError:
                    pass
            try:
                listener.close()
            except OSError:
                pass
            self._reap(processes)

        merged = self._merge(compiled, payloads)
        merged.wall_seconds = time.perf_counter() - wall_start
        assert isinstance(merged, QueryResult)
        return merged

    # -- handshake / collection ------------------------------------------------------------

    def _accept_agents(self, listener: socket.socket) -> dict[str, socket.socket]:
        connections: dict[str, socket.socket] = {}
        for _ in self.parties:
            try:
                sock, _addr = listener.accept()
            except (socket.timeout, OSError) as exc:
                raise AgentFailure(
                    f"timed out waiting for agents to connect; got {sorted(connections)} "
                    f"of {self.parties}"
                ) from exc
            sock.settimeout(self.timeout + 10)
            tag, party = recv_frame(sock)
            if tag != "hello" or party not in self.parties or party in connections:
                raise AgentFailure(f"malformed agent hello: {(tag, party)!r}")
            connections[party] = sock
        return connections

    def _expect(self, party: str, sock: socket.socket, expected_tag: str):
        frame = recv_frame(sock)
        tag, *rest = frame
        if tag == "error":
            raise self._agent_error(party, rest)
        if tag != expected_tag:
            raise AgentFailure(f"agent {party!r} sent {tag!r}, expected {expected_tag!r}")
        return rest[0]

    def _gather_results(self, connections: dict[str, socket.socket]) -> dict[str, dict]:
        payloads: dict[str, dict] = {}
        errors: list[tuple[str, BaseException]] = []
        for party, sock in connections.items():
            try:
                tag, *rest = recv_frame(sock)
            except (WireError, socket.timeout, OSError) as exc:
                errors.append((party, AgentFailure(f"agent {party!r} died: {exc}")))
                continue
            if tag == "error":
                errors.append((party, self._agent_error(party, rest)))
            elif tag == "result":
                payloads[party] = rest[0]
            else:
                errors.append((party, AgentFailure(f"agent {party!r} sent {tag!r}")))
        if errors:
            # Prefer the root cause: an agent that hit a real error over one
            # that merely timed out waiting for the failed peer.
            primary = next(
                (err for _, err in errors if not isinstance(err, (TransportError, AgentFailure))),
                errors[0][1],
            )
            raise primary
        return payloads

    def _agent_error(self, party: str, rest: list) -> BaseException:
        exc, tb = rest
        if isinstance(exc, BaseException):
            exc.__cause__ = AgentFailure(f"raised in agent {party!r}:\n{tb}")
            return exc
        return AgentFailure(f"agent {party!r} failed:\n{tb}")

    def _reap(self, processes: dict) -> None:
        for proc in processes.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            _ACTIVE_PROCESSES.discard(proc)

    # -- result merging ----------------------------------------------------------------------

    def _merge(self, compiled, payloads: dict[str, dict]):
        from repro.core.dispatch import QueryResult

        lead = self.parties[0]

        # Per-node durations: local nodes are reported by their executing
        # agent, joint nodes identically by every agent — max merges both.
        durations: dict[int, float] = {}
        for payload in payloads.values():
            for node_id, seconds in payload["node_durations"].items():
                durations[node_id] = max(durations.get(node_id, 0.0), seconds)

        # Each output comes from the first recipient that materialised it.
        outputs: dict[str, "object"] = {}
        for node in compiled.dag.outputs():
            name = node.out_rel.name
            for party in [*node.recipients, *self.parties]:
                payload = payloads.get(party)
                if payload is not None and name in payload["outputs"]:
                    outputs[name] = payload["outputs"][name]
                    break

        leakage = LeakageReport()
        for party in self.parties:
            leakage.events.extend(payloads[party]["leakage"].events)
        # Joint (replicated) events are identical at every agent; take the
        # lead agent's copy once.
        leakage.events.extend(payloads[lead]["joint_leakage"].events)

        backend_seconds: dict[str, float] = {}
        for party in self.parties:
            mine = payloads[party]["backend_seconds"]
            key = f"local:{party}"
            if key in mine:
                backend_seconds[key] = mine[key]
        for key, value in payloads[lead]["backend_seconds"].items():
            if key.startswith("mpc:") or key not in backend_seconds:
                backend_seconds.setdefault(key, value)

        return QueryResult(
            outputs=outputs,
            simulated_seconds=completion_seconds(compiled.dag, durations),
            wall_seconds=0.0,  # overwritten by run()
            leakage=leakage,
            backend_seconds=backend_seconds,
            mpc_profile=payloads[lead]["mpc_profile"],
            runtime="sockets",
        )


def run_query_sockets(
    query,
    inputs: dict,
    config: CompilationConfig | None = None,
    seed: int = 0,
    timeout: float = 60.0,
):
    """Compile (if needed) and execute a query with one process per party.

    The distributed twin of :func:`repro.core.compiler.run_query`:
    ``inputs`` maps party name -> {relation name -> Table}.
    """
    from repro.core.compiler import CompiledQuery, compile_query

    config = config or CompilationConfig()
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query, config)
    parties = sorted(compiled.dag.parties() | set(inputs))
    coordinator = SocketCoordinator(parties, inputs, config, seed=seed, timeout=timeout)
    return coordinator.run(compiled)
