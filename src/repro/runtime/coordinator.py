"""The driver of the distributed runtime.

The coordinator is Conclave's query driver (§4.1): it takes a compiled plan
(already partitioned into per-backend sub-plans by
:func:`repro.core.partition.partition_dag`) and executes it across one agent
OS process per party.  Since the query-service rework the heavy lifting
lives in :mod:`repro.runtime.service`: :class:`SocketCoordinator.run` is the
degenerate single-query session — open a :class:`~repro.runtime.service
.QuerySession` (spawn agents, broker the mesh handshake), submit once, close
— while :meth:`SocketCoordinator.open_session` hands out the long-lived
session for query streams, amortising spawn + mesh setup.

Process hygiene: agent processes are daemonic, tracked in a module-level
registry (so test fixtures can kill leaks), and reaped when their pool
closes; every blocking socket operation carries a timeout so a wedged or
crashed agent surfaces as an error instead of hanging the driver.
"""

from __future__ import annotations

import time

from repro.core.config import CompilationConfig
from repro.runtime.service import (  # noqa: F401 - re-exported for compatibility
    AgentFailure,
    QuerySession,
    SessionClosed,
    active_agent_processes,
    active_sessions,
    merge_payloads,
)


class SocketCoordinator:
    """Runs compiled queries with one OS process per party over TCP."""

    def __init__(
        self,
        parties: list[str],
        inputs: dict,
        config: CompilationConfig | None = None,
        seed: int = 0,
        *,
        timeout: float = 60.0,
        start_method: str | None = None,
        security=None,
    ):
        self.parties = list(parties)
        self.inputs = inputs
        self.config = config or CompilationConfig()
        self.seed = seed
        self.timeout = timeout
        self.start_method = start_method
        #: Optional :class:`~repro.core.config.TransportSecurity` wrapping
        #: every control/mesh link of the sessions this coordinator opens.
        self.security = security

    def open_session(self, *, idle_timeout: float | None = None) -> QuerySession:
        """Open a persistent session over this coordinator's parties/inputs."""
        return QuerySession(
            self.parties,
            inputs=self.inputs,
            config=self.config,
            seed=self.seed,
            timeout=self.timeout,
            idle_timeout=idle_timeout,
            start_method=self.start_method,
            security=self.security,
        )

    def run(self, compiled):
        """Execute ``compiled`` across per-party agent processes (cold spawn:
        agents live exactly as long as this one query)."""
        from repro.core.dispatch import QueryResult

        wall_start = time.perf_counter()
        session = QuerySession(
            self.parties,
            inputs=self.inputs,
            config=self.config,
            seed=self.seed,
            timeout=self.timeout,
            start_method=self.start_method,
            runtime_label="sockets",
            security=self.security,
        )
        try:
            # Bound the wait like the pre-service coordinator's result read
            # did (socket timeout + slack): a wedged agent is an error, not
            # a hang.
            result = session.submit(compiled, timeout=self.timeout + 10)
        finally:
            session.close()
        result.wall_seconds = time.perf_counter() - wall_start
        assert isinstance(result, QueryResult)
        return result


def run_query_sockets(
    query,
    inputs: dict,
    config: CompilationConfig | None = None,
    seed: int = 0,
    timeout: float = 60.0,
    security=None,
):
    """Compile (if needed) and execute a query with one process per party.

    The distributed twin of :func:`repro.core.compiler.run_query`:
    ``inputs`` maps party name -> {relation name -> Table}.
    """
    from repro.core.compiler import CompiledQuery, compile_query

    config = config or CompilationConfig()
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query, config)
    parties = sorted(compiled.dag.parties() | set(inputs))
    coordinator = SocketCoordinator(
        parties, inputs, config, seed=seed, timeout=timeout, security=security
    )
    return coordinator.run(compiled)
