"""Pluggable transports for the party-to-party network.

:class:`~repro.mpc.network.Network` accounts for every message (count,
bytes, rounds) and hands the actual delivery to a :class:`Transport`:

* :class:`SimulatedTransport` — the original in-process behaviour: messages
  are queued per receiver inside one Python process.  Accounting, queueing
  and ``recv`` semantics are byte-for-byte identical to the pre-refactor
  :class:`Network`.
* :class:`SocketTransport` — the distributed runtime: each party runs as
  its own OS process, and every message between two *distinct* parties is
  written to (and read from) a real TCP connection of the agent mesh.  The
  party processes execute the joint MPC protocol in lockstep from a shared
  seed, so a transport endpoint knows which party it embodies
  (``local_party``): sends *from* that party go out on the wire, and
  deliveries *to* that party block until the peer's frame arrives — the
  enqueued payload is the one read off the socket, not the locally computed
  copy.  Messages between two remote parties are queued locally so the
  replicated joint computation can proceed.

Both transports expose identical queue semantics, so the secret-sharing
engine's communication pattern (and therefore :class:`NetworkStats`) is the
same whichever transport carries it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.mesh import PeerMesh


class TransportError(RuntimeError):
    """A transport-level failure (peer gone, frame mismatch, timeout)."""


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one protocol execution.

    ``rounds`` counts every round the cost model charges for, including the
    analytically accounted rounds of the ideal-functionality protocol steps;
    ``wire_rounds`` counts only *real* barrier-delimited message exchanges —
    the number of synchronous mesh round trips a distributed execution
    performs.  The batched share-vector protocols keep ``wire_rounds``
    independent of row count.
    """

    messages: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    wire_rounds: int = 0

    def merge(self, other: "NetworkStats") -> None:
        self.messages += other.messages
        self.bytes_sent += other.bytes_sent
        self.rounds += other.rounds
        self.wire_rounds += other.wire_rounds

    def copy(self) -> "NetworkStats":
        return NetworkStats(self.messages, self.bytes_sent, self.rounds, self.wire_rounds)

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.rounds = 0
        self.wire_rounds = 0


@dataclass
class Message:
    """A single message in flight between two parties."""

    sender: str
    receiver: str
    payload: Any
    size_bytes: int


class Transport:
    """Delivery fabric between named parties with per-receiver FIFO queues."""

    #: The party this endpoint embodies, or ``None`` for the in-process
    #: fabric that models every party at once.
    local_party: str | None = None

    def __init__(self, party_names: list[str]):
        self.party_names = list(party_names)
        self._queues: dict[str, list[Message]] = {p: [] for p in self.party_names}

    # -- delivery ----------------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Deliver ``message`` into the receiver's queue."""
        raise NotImplementedError

    def pop(self, receiver: str, sender: str | None = None) -> Message:
        """Pop the oldest queued message for ``receiver`` (optionally from ``sender``)."""
        queue = self._queues[receiver]
        for i, msg in enumerate(queue):
            if sender is None or msg.sender == sender:
                return queue.pop(i)
        raise LookupError(f"no pending message for {receiver!r} from {sender!r}")

    def pending(self, receiver: str) -> int:
        """Number of undelivered messages addressed to ``receiver``."""
        return len(self._queues[receiver])

    @property
    def reference_party(self) -> str:
        """The party whose view of received payloads this endpoint holds."""
        return self.local_party or self.party_names[0]

    def close(self) -> None:
        """Release any transport resources (no-op for in-process queues)."""


class SimulatedTransport(Transport):
    """The in-process queue fabric (the original :class:`Network` behaviour)."""

    def deliver(self, message: Message) -> None:
        self._queues[message.receiver].append(message)


class SocketTransport(Transport):
    """Per-party endpoint routing cross-party messages over the TCP mesh.

    ``party_names`` are the *computing* parties of the MPC engine — a subset
    of the agents in the mesh.  The SPMD invariant is that every agent
    performs the same ``deliver`` calls in the same order; this endpoint
    turns the calls where it is the sender into real socket writes and the
    calls where it is the receiver into blocking socket reads, and verifies
    that what arrives matches the replicated computation's expectation.
    """

    def __init__(self, party_names: list[str], mesh):
        # ``mesh`` is anything with the PeerMesh send/receive surface: a
        # whole :class:`~repro.runtime.mesh.PeerMesh` (single-query runs) or
        # a per-query :class:`~repro.runtime.mesh.MeshChannel` (service
        # mode, where frames of concurrent queries interleave on the shared
        # sockets and the channel demultiplexes by query id).
        super().__init__(party_names)
        self.mesh = mesh
        self.local_party = mesh.party

    def deliver(self, message: Message) -> None:
        me = self.local_party
        if message.sender == me and message.receiver in self.mesh.peers:
            # My own outbound traffic: ship the real payload to the peer
            # process, and keep the local copy so the replicated joint
            # computation still sees a complete queue state.
            self.mesh.send_message(
                message.receiver,
                (message.sender, message.receiver, message.payload, message.size_bytes),
            )
            self._queues[message.receiver].append(message)
            return
        if message.receiver == me and message.sender in self.mesh.peers:
            # Inbound traffic: block until the peer's frame arrives and
            # enqueue *that* payload — the bytes genuinely crossed the
            # process boundary.  A sender/receiver mismatch means the
            # replicated protocol executions diverged.
            sender, receiver, payload, size_bytes = self.mesh.receive_message(message.sender)
            if sender != message.sender or receiver != message.receiver:
                raise TransportError(
                    f"agent {me!r} expected a message {message.sender!r} -> "
                    f"{message.receiver!r} but the wire carried {sender!r} -> {receiver!r}; "
                    "the party processes have diverged"
                )
            self._queues[me].append(Message(sender, receiver, payload, size_bytes))
            return
        # A message between two remote parties (or a party without an agent
        # in the mesh): queue the locally computed replica.
        self._queues[message.receiver].append(message)

    def close(self) -> None:
        # For a MeshChannel this releases the per-query queues and leaves
        # the shared sockets open; for a whole PeerMesh it closes them.
        self.mesh.close()
