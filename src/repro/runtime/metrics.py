"""Live metrics for the query service: counters, gauges, latency histograms.

The gateway (admission control + fair scheduling, :mod:`repro.runtime
.gateway`) and the session layer record everything an operator needs to run
the service under real traffic — queue depths, queue-wait vs execute
latency, shed counts, plan-cache hit rate, per-party bytes on the wire —
while recording **no query payloads**: the observability surface follows the
privacy constraint of the rest of the system (observe shapes and timings,
never plaintext rows).

Three primitives, all safe for concurrent writers with tiny critical
sections:

* counters and gauges — one shared lock for the whole table, so multi-key
  updates (``inc_many``) are atomic and a snapshot can never observe a torn
  invariant (e.g. ``plan_cache_hits + plan_cache_misses == queries``);
* :class:`LatencyHistogram` — a streaming histogram over geometric buckets
  (Prometheus-style ``le`` bounds) with exact count/sum/min/max and
  interpolated p50/p95/p99 estimates, O(1) per observation, constant
  memory;
* :meth:`GatewayMetrics.snapshot` — an immutable plain-dict copy of
  everything, and :meth:`GatewayMetrics.render_prometheus` — the same data
  in the Prometheus text exposition format, served over a local HTTP handle
  by :class:`MetricsServer` (``GET /metrics``).
"""

from __future__ import annotations

import math
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Default histogram bucket upper bounds (seconds): geometric from 0.5 ms to
#: ~4400 s.  Anything above the last bound lands in the +Inf overflow bucket.
DEFAULT_BUCKETS = tuple(0.0005 * 2**k for k in range(24))

#: Percentiles included in every histogram summary.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class LatencyHistogram:
    """Streaming histogram with geometric buckets and percentile estimates.

    ``observe`` is O(number of buckets) in the worst case (a ``bisect``-free
    linear scan would be; we binary-search) and holds its lock only for the
    few increments.  Percentiles are estimated by linear interpolation
    inside the bucket containing the target rank, clamped to the exact
    observed min/max, so single-value streams report that value exactly.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self._bounds = tuple(sorted(buckets))
        if not self._bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        # counts has one extra slot: the +Inf overflow bucket.
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _state(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return list(self._counts), self._count, self._sum, self._min, self._max

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0 < p <= 100) of the stream."""
        counts, count, _total, minimum, maximum = self._state()
        return self._percentile_from(counts, count, minimum, maximum, p)

    def _percentile_from(
        self, counts: list[int], count: int, minimum: float, maximum: float, p: float
    ) -> float:
        if count == 0:
            return 0.0
        target = max(1, math.ceil(count * p / 100.0))
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative < target:
                continue
            if i >= len(self._bounds):  # overflow bucket: report the true max
                return maximum
            lower = self._bounds[i - 1] if i > 0 else 0.0
            upper = self._bounds[i]
            fraction = (target - previous) / bucket_count
            estimate = lower + (upper - lower) * fraction
            return min(max(estimate, minimum), maximum)
        return maximum

    def summary(self) -> dict:
        """An immutable plain-dict summary (count, sum, mean, percentiles)."""
        counts, count, total, minimum, maximum = self._state()
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": minimum if count else 0.0,
            "max": maximum if count else 0.0,
        }
        for p in SUMMARY_PERCENTILES:
            out[f"p{p:g}"] = self._percentile_from(counts, count, minimum, maximum, p)
        return out

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs in Prometheus histogram form."""
        counts, _count, _total, _minimum, _maximum = self._state()
        out, cumulative = [], 0
        for bound, bucket_count in zip(self._bounds, counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((math.inf, cumulative + counts[-1]))
        return out


class GatewayMetrics:
    """The query service's metric registry.

    Counters and gauges share one lock so multi-key increments are atomic
    and snapshots are internally consistent; histograms are created on first
    observation and carry their own locks.  ``snapshot()`` returns plain
    nested dicts (safe to hand to callers — mutating a snapshot can never
    touch live state), and ``render_prometheus()`` emits the text exposition
    format for scraping.
    """

    def __init__(self, namespace: str = "conclave"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        #: Optional provider of per-party wire traffic, set by the session:
        #: a zero-argument callable returning {party: {peer: {metric: int}}}.
        self._wire_provider = None

    # -- writers -----------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def inc_many(self, updates: dict[str, int]) -> None:
        """Atomically increment several counters (one lock acquisition, so a
        snapshot sees either all of the updates or none of them)."""
        with self._lock:
            for name, amount in updates.items():
                self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def add_gauge(self, name: str, delta: float) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
        histogram.observe(value)

    def set_wire_provider(self, provider) -> None:
        with self._lock:
            self._wire_provider = provider

    # -- readers -----------------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram | None:
        """The live histogram named ``name`` (``None`` before first observe)."""
        with self._lock:
            return self._histograms.get(name)

    def _wire_snapshot(self) -> dict:
        with self._lock:
            provider = self._wire_provider
        if provider is None:
            return {}
        return provider()

    def snapshot(self) -> dict:
        """One immutable, internally consistent view of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": counters,
            "gauges": gauges,
            "latency": {name: h.summary() for name, h in histograms.items()},
            "wire": self._wire_snapshot(),
        }

    # -- Prometheus text exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text format (version 0.0.4)."""
        ns = self.namespace
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: list[str] = []
        for name, value in counters:
            metric = f"{ns}_{name}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in gauges:
            metric = f"{ns}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
        for name, histogram in histograms:
            metric = f"{ns}_{name}"
            lines.append(f"# TYPE {metric} histogram")
            for bound, cumulative in histogram.bucket_counts():
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
            summary = histogram.summary()
            lines.append(f"{metric}_sum {_format_value(summary['sum'])}")
            lines.append(f"{metric}_count {summary['count']}")
        for party, peers in sorted(self._wire_snapshot().items()):
            for peer, traffic in sorted(peers.items()):
                for key in ("bytes_sent", "bytes_received"):
                    metric = f"{ns}_wire_{key}_total"
                    lines.append(
                        f'{metric}{{party="{party}",peer="{peer}"}} {traffic.get(key, 0)}'
                    )
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsServer:
    """A local plaintext scrape endpoint (``GET /metrics``) for a renderer.

    Binds ``127.0.0.1`` on an ephemeral port by default (no fixed-port races
    in tests or co-located sessions); ``url`` is the scrape target.  The
    server runs on a daemon thread and never blocks session work.
    """

    def __init__(self, render, host: str = "127.0.0.1", port: int = 0):
        self._render = render

        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    body = server._render().encode("utf-8")
                except Exception as exc:  # noqa: BLE001 - scrape must not crash
                    self.send_error(500, f"metrics render failed: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: D102 - silence per-request logging
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="metrics-scrape"
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        try:
            self._httpd.shutdown()
            self._httpd.server_close()
        except (OSError, socket.error):
            pass
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
