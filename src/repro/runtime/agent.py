"""The per-party agent process of the distributed runtime.

One agent embodies one data-owning party (§4.1): it receives the compiled
plan and its own input relations from the coordinator over a control socket,
joins the agent-to-agent TCP mesh, executes its cleartext sub-plans with its
own backend, ships relations that the plan moves across party boundaries,
and participates in every MPC sub-plan — the joint secret-sharing protocol
is executed in lockstep by all agents from the shared seed, with each
agent's share traffic flowing through its mesh sockets (see
:mod:`repro.runtime.transport`).

``agent_main`` is the process entry point used by
:class:`~repro.runtime.coordinator.SocketCoordinator`; it is a plain
module-level function so it works under both the ``fork`` and ``spawn``
multiprocessing start methods.
"""

from __future__ import annotations

import socket
import traceback

from repro.runtime.mesh import PeerMesh, bind_listener, connect_mesh
from repro.runtime.wire import recv_frame, send_frame


class PartyAgent:
    """Executes one party's side of a compiled plan inside its own process."""

    def __init__(
        self,
        party: str,
        parties: list[str],
        inputs: dict,
        config,
        seed: int,
        mesh: PeerMesh | None,
    ):
        # Imported here (not at module top) so a freshly spawned agent
        # process pays the import cost once, after the fork/spawn settled.
        from repro.runtime.executor import PlanExecutor

        self.party = party
        self.mesh = mesh
        self.executor = PlanExecutor(
            parties,
            {party: inputs},
            config,
            seed=seed,
            local_parties={party},
            mesh=mesh,
        )

    def run(self, compiled) -> dict:
        """Execute the plan and return a picklable result payload."""
        outcome = self.executor.execute(compiled)
        return {
            "party": self.party,
            "outputs": outcome.outputs,
            "node_durations": outcome.node_durations,
            "wall_seconds": outcome.wall_seconds,
            "leakage": outcome.leakage,
            "joint_leakage": outcome.joint_leakage,
            "backend_seconds": outcome.backend_seconds,
            "mpc_profile": outcome.mpc_profile,
        }


def agent_main(party: str, host: str, port: int, timeout: float = 60.0) -> None:
    """Process entry point: handshake, mesh setup, plan execution."""
    control = socket.create_connection((host, port), timeout=timeout)
    control.settimeout(timeout)
    mesh: PeerMesh | None = None
    listener = None
    try:
        send_frame(control, ("hello", party))
        tag, bundle = recv_frame(control)
        if tag != "plan":
            raise RuntimeError(f"agent {party!r} expected a plan frame, got {tag!r}")
        parties = bundle["parties"]
        run_timeout = bundle.get("timeout", timeout)

        # Deterministic port assignment: bind an ephemeral port (the OS
        # picks a free one) and let the coordinator broadcast the map.
        listener = bind_listener(run_timeout)
        send_frame(control, ("ports", listener.getsockname()[1]))
        tag, ports = recv_frame(control)
        if tag != "peers":
            raise RuntimeError(f"agent {party!r} expected a peers frame, got {tag!r}")
        mesh = connect_mesh(party, parties, ports, listener, timeout=run_timeout)

        agent = PartyAgent(
            party, parties, bundle["inputs"], bundle["config"], bundle["seed"], mesh,
        )
        payload = agent.run(bundle["compiled"])
        send_frame(control, ("result", payload))
    except BaseException as exc:  # noqa: BLE001 - everything must reach the coordinator
        try:
            send_frame(control, ("error", _picklable(exc), traceback.format_exc()))
        except Exception:
            pass
    finally:
        if mesh is not None:
            mesh.close()
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        try:
            control.close()
        except OSError:
            pass


def _picklable(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else an equivalent RuntimeError."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
