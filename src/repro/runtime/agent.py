"""The per-party agent process of the distributed runtime.

One agent embodies one data-owning party (§4.1).  Since the query-service
rework the agent is **long-lived**: it joins the agent-to-agent TCP mesh
once and then serves a *stream* of queries over its control link — the
paper's standing data-owning parties answering many analyst queries, with
process spawn and mesh setup amortised across the stream.

Per query, the agent executes its cleartext sub-plans with its own backend,
ships relations that the plan moves across party boundaries, and
participates in every MPC sub-plan — the joint secret-sharing protocol is
executed in lockstep by all agents from the query's seed, with each agent's
share traffic flowing through a per-query :class:`~repro.runtime.mesh
.MeshChannel` of the shared mesh, so frames of concurrent queries
interleave safely on the same sockets.

Lifecycle and robustness:

* **Plan cache** — compiled plans are cached by DAG fingerprint; the
  coordinator ships each distinct plan once per session and later
  submissions reference it by fingerprint only.
* **Concurrency** — each query runs on its own worker thread (bounded
  pool); results/errors are framed back on the control link under a send
  lock, tagged with the query id.
* **Idle timeout** — an agent whose control link has been silent (and that
  has no in-flight query) for the session's ``idle_timeout`` announces
  ``("closing", "idle-timeout")`` and exits.
* **Drain on shutdown** — a ``shutdown`` frame stops intake, waits for
  in-flight queries to finish, then exits cleanly.
* **Supervision** — a ``ping`` frame is answered with ``pong`` *without*
  counting as activity (heartbeats must not defeat the idle timeout); a
  ``rejoin`` frame parks the agent in :func:`~repro.runtime.mesh
  .accept_rejoin` for a restarted peer's epoch-tagged dial and swaps the
  fresh connection into the mesh; a session bundle with ``rejoin=True``
  makes this agent itself the replacement — it dials every survivor via
  :func:`~repro.runtime.mesh.rejoin_mesh` instead of the rank-ordered
  initial handshake.  A ``faults`` entry in the bundle arms a
  :class:`~repro.runtime.faults.FaultInjector` (deterministic kills at
  query intake, frame faults at mesh sends) for the chaos tests.
* **Loud failure** — a query that raises reports ``("error", qid, ...)`` to
  the coordinator and (via the executor's abort broadcast) poisons the
  peers' per-query mesh queues, so every in-flight participant fails fast
  instead of hanging on a dead exchange.

``agent_main`` is the process entry point used by
:class:`~repro.runtime.coordinator.SocketCoordinator`; it is a plain
module-level function so it works under both the ``fork`` and ``spawn``
multiprocessing start methods.
"""

from __future__ import annotations

import socket
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

from repro.runtime.mesh import (
    PeerMesh,
    accept_rejoin,
    bind_listener,
    connect_mesh,
    rejoin_mesh,
)
from repro.runtime.wire import (
    encode_frame,
    peer_common_name,
    recv_frame,
    secure_client_socket,
    send_frame,
)

#: How long a survivor waits in ``accept`` for a restarted peer's rejoin
#: dial before reporting failure back to the supervisor (which then burns a
#: restart-budget slot and tries again).
REJOIN_ACCEPT_SECONDS = 15.0

#: Default upper bound on queries one agent executes concurrently.  The
#: session frame may override it per session (``max_workers`` on
#: :func:`repro.runtime.service.open_session`); this constant is only the
#: fallback for sessions that do not say.
AGENT_MAX_WORKERS = 8


class PartyAgent:
    """Serves one party's side of many compiled plans inside its process."""

    def __init__(
        self,
        party: str,
        parties: list[str],
        mesh: PeerMesh | None,
        session_inputs: dict | None = None,
    ):
        self.party = party
        self.parties = list(parties)
        self.mesh = mesh
        #: The party's standing input relations, usable by every query of
        #: the session (a query may override them with its own inputs).
        self.session_inputs = dict(session_inputs or {})
        self._plans: dict[str, object] = {}
        self._plans_lock = threading.Lock()

    # -- plan cache --------------------------------------------------------------------

    def register_plan(self, fingerprint: str, compiled) -> None:
        with self._plans_lock:
            self._plans[fingerprint] = compiled

    def plan_for(self, fingerprint: str):
        with self._plans_lock:
            try:
                return self._plans[fingerprint]
            except KeyError:
                raise RuntimeError(
                    f"agent {self.party!r} has no cached plan {fingerprint[:12]}...; "
                    "the coordinator referenced a plan it never shipped"
                ) from None

    # -- query execution ---------------------------------------------------------------

    def run_query(
        self,
        query_id: int,
        fingerprint: str,
        config,
        seed: int,
        inputs: dict | None = None,
    ) -> dict:
        """Execute one cached plan and return a picklable result payload.

        A fresh :class:`~repro.runtime.executor.PlanExecutor` (fresh
        backends, meters and leakage reports) runs every query, exactly as a
        cold per-query process would — warm sessions amortise spawn and mesh
        setup, never engine state, so results stay byte-identical.
        """
        # Imported here (not at module top) so a freshly spawned agent
        # process pays the import cost once, after the fork/spawn settled.
        from repro.runtime.executor import PlanExecutor

        compiled = self.plan_for(fingerprint)
        channel = self.mesh.channel(query_id) if self.mesh is not None else None
        executor = PlanExecutor(
            self.parties,
            {self.party: self.session_inputs if inputs is None else inputs},
            config,
            seed=seed,
            local_parties={self.party},
            mesh=channel,
        )
        try:
            outcome = executor.execute(compiled)
        finally:
            if channel is not None:
                channel.close()
        return {
            "party": self.party,
            "outputs": outcome.outputs,
            "node_durations": outcome.node_durations,
            "wall_seconds": outcome.wall_seconds,
            "leakage": outcome.leakage,
            "joint_leakage": outcome.joint_leakage,
            "backend_seconds": outcome.backend_seconds,
            "mpc_profile": outcome.mpc_profile,
            # Debug hook for the cryptographic-isolation tests: which
            # parties' share slices and cleartext inputs this agent process
            # materialised while running the query.
            "isolation": executor.isolation_audit(),
            # Cumulative per-peer mesh traffic at query completion — the
            # metrics layer's bytes-on-wire view.  Shapes and sizes only,
            # never payloads.
            "wire_traffic": self.mesh.traffic() if self.mesh is not None else {},
        }


def agent_main(
    party: str,
    host: str,
    port: int,
    timeout: float = 60.0,
    bind_host: str = "127.0.0.1",
    security=None,
) -> None:
    """Process entry point: handshake, mesh setup, then serve queries.

    ``host``/``port`` locate the coordinator's control listener;
    ``bind_host`` is where this agent binds its own mesh listener and the
    host it advertises to peers (loopback by default; a routable address
    for multi-machine deployments).  With ``security`` (a
    :class:`~repro.core.config.TransportSecurity`) the control link and
    every mesh link speak mutually-authenticated TLS: this agent presents
    the ``party`` certificate, requires the coordinator's certificate to
    carry its configured name, and hellos carry the session nonce from the
    coordinator's session bundle.
    """
    control = socket.create_connection((host, port), timeout=timeout)
    control.settimeout(timeout)
    if security is not None:
        control = secure_client_socket(control, security.client_context(party))
        coordinator_cn = peer_common_name(control)
        if coordinator_cn != security.coordinator_name:
            raise RuntimeError(
                f"agent {party!r} expected the coordinator certificate to name "
                f"{security.coordinator_name!r}, got {coordinator_cn!r}"
            )
    mesh: PeerMesh | None = None
    listener = None
    try:
        send_frame(control, ("hello", party))
        tag, bundle = recv_frame(control)
        if tag != "session":
            raise RuntimeError(f"agent {party!r} expected a session frame, got {tag!r}")
        parties = bundle["parties"]
        run_timeout = bundle.get("timeout", timeout)
        idle_timeout = bundle.get("idle_timeout")
        max_workers = bundle.get("max_workers") or AGENT_MAX_WORKERS
        if not isinstance(max_workers, int) or max_workers < 1:
            raise ValueError(f"agent {party!r} got invalid max_workers {max_workers!r}")
        injector = None
        faults = bundle.get("faults")
        if faults:
            from repro.runtime.faults import FaultInjector

            injector = FaultInjector(faults, party)

        # Deterministic port assignment: bind an ephemeral port (the OS
        # picks a free one) and let the coordinator broadcast the map of
        # advertised (host, port) endpoints.
        listener = bind_listener(run_timeout, bind_host)
        send_frame(control, ("ports", (bind_host, listener.getsockname()[1])))
        tag, ports = recv_frame(control)
        if tag != "peers":
            raise RuntimeError(f"agent {party!r} expected a peers frame, got {tag!r}")
        nonce = bundle.get("nonce")
        if bundle.get("rejoin"):
            # Replacement for a crashed agent: the survivors are parked in
            # accept by the supervisor's rejoin broadcast — dial them all.
            mesh = rejoin_mesh(
                party, parties, ports, timeout=run_timeout,
                epoch=bundle["epoch"], injector=injector,
                released_watermark=bundle.get("released_watermark", 0),
                security=security, nonce=nonce, bind_host=bind_host,
            )
        else:
            mesh = connect_mesh(
                party, parties, ports, listener, timeout=run_timeout,
                injector=injector, security=security, nonce=nonce,
                bind_host=bind_host,
            )

        agent = PartyAgent(party, parties, mesh, session_inputs=bundle.get("inputs"))
        send_frame(control, ("ready", None))
        _serve(agent, control, run_timeout, idle_timeout, max_workers,
               injector=injector, listener=listener, security=security, nonce=nonce)
    except BaseException as exc:  # noqa: BLE001 - everything must reach the coordinator
        try:
            send_frame(control, ("fatal", _wire_safe(exc), traceback.format_exc()))
        except Exception:
            pass
    finally:
        if mesh is not None:
            mesh.close()
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        try:
            control.close()
        except OSError:
            pass


def _serve(
    agent: PartyAgent,
    control: socket.socket,
    timeout: float,
    idle_timeout: float | None,
    max_workers: int = AGENT_MAX_WORKERS,
    *,
    injector=None,
    listener: socket.socket | None = None,
    security=None,
    nonce: str | None = None,
) -> None:
    """The agent's query-serving loop (runs until shutdown/idle/EOF)."""
    send_lock = threading.Lock()
    in_flight: set[int] = set()
    state_lock = threading.Lock()
    last_activity = time.monotonic()
    pool = ThreadPoolExecutor(
        max_workers=max_workers, thread_name_prefix=f"agent-query-{agent.party}"
    )

    def reply(frame: tuple) -> None:
        with send_lock:
            send_frame(control, frame)

    def run_one(query_id: int, fingerprint: str, config, seed: int, inputs) -> None:
        nonlocal last_activity
        try:
            payload = agent.run_query(query_id, fingerprint, config, seed, inputs)
            frame = ("result", query_id, payload)
        except BaseException as exc:  # noqa: BLE001 - ship the error to the driver
            frame = ("error", query_id, _wire_safe(exc), traceback.format_exc())
        with state_lock:
            in_flight.discard(query_id)
            last_activity = time.monotonic()
        try:
            reply(frame)
        except Exception as exc:  # noqa: BLE001
            # The frame could not be encoded (e.g. result over the frame
            # cap, unpicklable output) or sent.  An encode failure leaves
            # the link healthy, so the coordinator would wait forever —
            # ship an error frame in its place; if the link itself is dead,
            # this fails too and the coordinator's EOF handling takes over.
            try:
                reply(("error", query_id, _wire_safe(exc), traceback.format_exc()))
            except Exception:  # noqa: BLE001 - coordinator gone
                pass

    # Between frames the control link may sit idle arbitrarily long (that
    # is the point of a standing service); the socket timeout is only the
    # tick at which the idle policy is evaluated.
    control.settimeout(idle_timeout if idle_timeout is not None else timeout)
    try:
        while True:
            try:
                frame = recv_frame(control, allow_idle_timeout=True)
            except TimeoutError:
                if idle_timeout is None:
                    continue
                with state_lock:
                    idle = not in_flight and time.monotonic() - last_activity >= idle_timeout
                if idle:
                    reply(("closing", "idle-timeout"))
                    return
                continue
            tag = frame[0]
            if tag == "ping":
                # Heartbeats deliberately do NOT touch last_activity: a
                # supervised-but-unused agent must still idle out.
                reply(("pong", frame[1]))
                continue
            with state_lock:
                last_activity = time.monotonic()
            if tag == "shutdown":
                # Drain: finish every in-flight query, then confirm.
                pool.shutdown(wait=True)
                pool = None
                reply(("closing", "shutdown"))
                return
            if tag == "rejoin":
                # A crashed peer's replacement is about to dial us: park in
                # accept until its epoch-tagged hello arrives, then swap the
                # fresh connection into the mesh.  Failure is reported, not
                # fatal — the supervisor retries the whole restart.
                info = frame[1]
                peer, peer_epoch = info["party"], info["epoch"]
                try:
                    if listener is None or agent.mesh is None:
                        raise RuntimeError(
                            f"agent {agent.party!r} cannot accept a rejoin without a mesh"
                        )
                    sock = accept_rejoin(
                        listener, agent.party, peer, peer_epoch,
                        info.get("timeout", REJOIN_ACCEPT_SECONDS),
                        security=security, nonce=nonce,
                    )
                    agent.mesh.replace_peer(peer, sock)
                except Exception as exc:  # noqa: BLE001 - report, do not die
                    reply(("rejoined", {"party": peer, "epoch": peer_epoch,
                                        "ok": False, "error": str(exc)}))
                else:
                    reply(("rejoined", {"party": peer, "epoch": peer_epoch, "ok": True}))
                continue
            if tag != "query":
                raise RuntimeError(f"agent {agent.party!r} received unknown frame {tag!r}")
            job = frame[1]
            if injector is not None:
                injector.on_query_intake(job["query_id"])
            if job.get("compiled") is not None:
                agent.register_plan(job["fingerprint"], job["compiled"])
            with state_lock:
                in_flight.add(job["query_id"])
            pool.submit(
                run_one, job["query_id"], job["fingerprint"], job["config"],
                job["seed"], job.get("inputs"),
            )
    finally:
        if pool is not None:
            pool.shutdown(wait=True)


def _wire_safe(exc: BaseException) -> BaseException:
    """Return ``exc`` if it is expressible on the wire, else an equivalent
    RuntimeError (the codec may be running with the pickle fallback off)."""
    try:
        encode_frame(exc)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
