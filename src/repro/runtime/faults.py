"""Deterministic fault injection for the distributed runtime.

Robustness claims that are only exercised by real crashes are hopes, not
properties.  This module makes every failure mode of the service runtime
*reproducible*: a :class:`FaultPlan` — a picklable, seeded description of
exactly which agent dies when and which mesh frames are dropped, delayed,
duplicated or torn — is shipped to each agent inside its session frame and
consulted at two choke points:

* **query intake** (:meth:`FaultInjector.on_query_intake`, called from the
  agent's serve loop): a matching :class:`KillFault` hard-exits the process
  (``os._exit``) exactly as a crashed or OOM-killed agent would — no
  cleanup, sockets torn down by the kernel;
* **mesh sends** (:meth:`FaultInjector.on_mesh_send`, called from
  :meth:`~repro.runtime.mesh.PeerMesh._send` under the per-peer send lock):
  a matching :class:`LinkFault` drops, duplicates or delays that frame, or
  tears it — writes a partial frame and hard-exits, the way a process dying
  mid-``sendall`` looks from the receiving end.

Fault triggers are **count-based**, not time-based: the Nth query intake of
a process, the Nth frame sent on a link.  With a sequential query stream
(the chaos tests' mode) both counters are fully deterministic, so a seeded
plan replays the identical failure every run.  Counters are per *process
lifetime*: a restarted agent receives the same per-party plan afresh, so a
``KillFault(at_query=1)`` kills every replacement too — which is exactly how
the restart-budget escalation path is exercised.

The module is dependency-free (dataclasses + stdlib) so shipping a plan in
a session frame stays cheap and the plan itself can never fail to pickle.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass

#: Actions a :class:`LinkFault` may take on a mesh frame.
LINK_ACTIONS = ("drop", "dup", "delay", "torn")

#: Exit code used by injected kills, distinct from real crashes in core
#: dumps and test logs.
KILL_EXIT_CODE = 23


@dataclass(frozen=True)
class KillFault:
    """Hard-exit ``party``'s process at its ``at_query``-th query intake.

    ``at_query`` counts query frames *dequeued from the control link* by one
    process (1-based) — with sequential submission this is the submission
    order, retries included.  With ``after_mesh_frames == 0`` the process
    dies before executing the query at all (a crash between queries); with
    ``k > 0`` it dies just before its ``(k+1)``-th mesh send for that query
    (a crash mid-protocol, with peers blocked on the dead exchange).
    """

    party: str
    at_query: int
    after_mesh_frames: int = 0

    def validate(self) -> "KillFault":
        if not isinstance(self.at_query, int) or self.at_query < 1:
            raise ValueError(f"KillFault.at_query must be an int >= 1, got {self.at_query!r}")
        if not isinstance(self.after_mesh_frames, int) or self.after_mesh_frames < 0:
            raise ValueError(
                f"KillFault.after_mesh_frames must be an int >= 0, got {self.after_mesh_frames!r}"
            )
        return self


@dataclass(frozen=True)
class LinkFault:
    """Inject one fault into ``party``'s outgoing mesh frames.

    ``nth_frame`` is the 1-based count of frames this process has sent to
    ``peer`` (any peer when ``peer`` is ``None``); ``nth_frame == 0`` means
    *every* frame, which is only meaningful for ``action="delay"`` (a slow
    link).  Actions:

    * ``drop``  — the frame is silently never sent; the peer's consumer
      starves and surfaces a :class:`~repro.runtime.mesh.MeshTimeout`;
    * ``dup``   — the frame is sent twice; the mesh's per-link sequence
      numbers discard the duplicate at the receiver, so a dup is *harmless*
      (asserted byte-identical in the chaos tests);
    * ``delay`` — the send is stalled by ``delay_seconds`` first;
    * ``torn``  — a partial frame is written and the process hard-exits:
      the receiver sees a stream dying mid-frame (``WireError``), the
      supervisor sees a dead agent.  On a TLS session the partial frame is
      written *through* the secured socket (the tear happens above TLS, in
      framing bytes), so the receiver still observes a record-aligned
      stream that dies inside a frame — the same mid-frame ``WireError``,
      not a TLS-level corruption; frames too small to tear (header plus
      fewer than two payload bytes) raise instead of silently sending a
      clean prefix, so the fault matrix always exercises the mid-frame
      path it promises.
    """

    party: str
    action: str
    nth_frame: int
    peer: str | None = None
    delay_seconds: float = 0.0

    def validate(self) -> "LinkFault":
        if self.action not in LINK_ACTIONS:
            raise ValueError(f"LinkFault.action must be one of {LINK_ACTIONS}, got {self.action!r}")
        if not isinstance(self.nth_frame, int) or self.nth_frame < 0:
            raise ValueError(f"LinkFault.nth_frame must be an int >= 0, got {self.nth_frame!r}")
        if self.nth_frame == 0 and self.action != "delay":
            raise ValueError(
                f"LinkFault.nth_frame == 0 (every frame) is only valid for action='delay', "
                f"got {self.action!r}"
            )
        if not isinstance(self.delay_seconds, (int, float)) or self.delay_seconds < 0:
            raise ValueError(
                f"LinkFault.delay_seconds must be a number >= 0, got {self.delay_seconds!r}"
            )
        if self.action == "delay" and self.delay_seconds == 0:
            raise ValueError("LinkFault(action='delay') needs delay_seconds > 0")
        return self


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable fault schedule for one session.

    Build one explicitly for targeted tests, or with :meth:`seeded` for the
    chaos matrix.  :meth:`for_party` extracts the subset one agent needs —
    the coordinator ships only that subset in each agent's session frame.
    """

    kills: tuple[KillFault, ...] = ()
    links: tuple[LinkFault, ...] = ()

    def validate(self) -> "FaultPlan":
        for fault in self.kills:
            fault.validate()
        for fault in self.links:
            fault.validate()
        return self

    def __bool__(self) -> bool:
        return bool(self.kills or self.links)

    def for_party(self, party: str) -> "FaultPlan | None":
        """The sub-plan affecting ``party``'s process; ``None`` when empty."""
        kills = tuple(f for f in self.kills if f.party == party)
        links = tuple(f for f in self.links if f.party == party)
        if not kills and not links:
            return None
        return FaultPlan(kills=kills, links=links)

    @staticmethod
    def seeded(
        seed: int,
        parties: list[str],
        queries: int,
        *,
        kills: int = 1,
        link_faults: int = 2,
        actions: tuple[str, ...] = ("drop", "dup", "delay"),
        delay_seconds: float = 0.2,
    ) -> "FaultPlan":
        """A reproducible random plan over a sequential ``queries``-long stream.

        Kills land at distinct query indices (so two agents never die on the
        same query, keeping recovery attributable); link faults pick random
        senders and early frame counts so they hit real protocol traffic.
        ``torn`` is excluded by default because it implies a process death
        on top of the frame corruption — include it explicitly via
        ``actions`` when the restart path should absorb it.
        """
        rng = random.Random(seed)
        order = sorted(parties)
        kill_queries = rng.sample(range(2, max(3, queries + 1)), k=min(kills, max(1, queries - 1)))
        kill_faults = tuple(
            KillFault(
                party=rng.choice(order),
                at_query=q,
                after_mesh_frames=rng.choice([0, 0, 1, 3]),
            )
            for q in sorted(kill_queries)
        )
        link = []
        for _ in range(link_faults):
            action = rng.choice(list(actions))
            link.append(LinkFault(
                party=rng.choice(order),
                action=action,
                nth_frame=rng.randint(1, 40),
                peer=None,
                delay_seconds=delay_seconds if action == "delay" else 0.0,
            ))
        return FaultPlan(kills=kill_faults, links=tuple(link)).validate()


@dataclass
class _ArmedKill:
    """A kill waiting for its mesh-frame trigger inside one query."""

    query_id: int
    remaining_frames: int


class FaultInjector:
    """Agent-side interpreter of one party's :class:`FaultPlan` subset.

    Lives inside the agent process; all counters are per process lifetime.
    Thread-safe: query intake happens on the serve loop, mesh sends on
    worker threads.
    """

    def __init__(self, plan: FaultPlan, party: str):
        self.party = party
        self._kills = sorted(
            (f for f in plan.kills if f.party == party), key=lambda f: f.at_query
        )
        self._links = [f for f in plan.links if f.party == party]
        self._lock = threading.Lock()
        self._queries_started = 0
        self._frames_sent: dict[str, int] = {}
        self._armed: _ArmedKill | None = None

    # -- triggers ----------------------------------------------------------------------

    def on_query_intake(self, query_id: int) -> None:
        """Called by the serve loop for every query frame it dequeues."""
        with self._lock:
            self._queries_started += 1
            count = self._queries_started
            for fault in self._kills:
                if fault.at_query == count:
                    if fault.after_mesh_frames == 0:
                        self._die()
                    self._armed = _ArmedKill(query_id, fault.after_mesh_frames)
                    break

    def on_mesh_send(self, peer: str, query_id: int) -> LinkFault | None:
        """Called under the per-peer send lock before a frame is written.

        May never return (an armed kill fires here); otherwise returns the
        :class:`LinkFault` to apply to this frame, or ``None``.
        """
        with self._lock:
            armed = self._armed
            if armed is not None and armed.query_id == query_id:
                if armed.remaining_frames <= 0:
                    self._die()
                armed.remaining_frames -= 1
            count = self._frames_sent.get(peer, 0) + 1
            self._frames_sent[peer] = count
            for fault in self._links:
                if fault.peer is not None and fault.peer != peer:
                    continue
                if fault.nth_frame == 0 or fault.nth_frame == count:
                    return fault
        return None

    def apply_delay(self, fault: LinkFault) -> None:
        """Stall the calling sender (outside the injector lock)."""
        if fault.delay_seconds > 0:
            time.sleep(fault.delay_seconds)

    def die(self) -> None:
        """Exit exactly as a crashed process would: immediately, no cleanup.

        Public for the mesh's ``torn`` handling, which must write the
        partial frame first and only then kill the process.
        """
        self._die()

    def _die(self) -> None:
        os._exit(KILL_EXIT_CODE)
