"""Node-by-node execution of a compiled plan, shared by every runtime.

The paper's deployment model (§4.1) runs one agent per data-owning party.
This module holds the execution logic both runtimes share:

* the in-process :class:`~repro.core.dispatch.QueryRunner` instantiates one
  :class:`PlanExecutor` that embodies *every* party (``local_parties`` = all
  parties, no mesh) — the original simulated behaviour;
* the distributed runtime runs one :class:`PlanExecutor` per party process
  (``local_parties`` = that party, plus a :class:`~repro.runtime.mesh.PeerMesh`).
  Cleartext sub-plans execute only at the party that owns them; relations
  that cross party boundaries are shipped over the mesh; and *every* agent
  participates in the MPC sub-plans, executing the joint protocol in
  lockstep from the shared seed so that each agent's share traffic really
  flows through its sockets (see :mod:`repro.runtime.transport`).

Leakage accounting is split in two reports so the distributed runtime can
deduplicate events that every agent observes: ``leakage`` holds events only
one agent records (cleartext transfers it received, outputs it collected),
``joint_leakage`` holds events of the replicated joint computation (MPC
reveals, hybrid-protocol disclosures).  In-process both names refer to the
same report, preserving the original single-report behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cleartext.python_engine import PythonBackend
from repro.cleartext.spark_sim import PartitionedRelation, SparkBackend
from repro.core.config import CompilationConfig
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    HybridAggregate,
    HybridJoin,
    Join,
    Limit,
    Map,
    Merge,
    Multiply,
    OpNode,
    Project,
    PublicJoin,
    SortBy,
)
from repro.data.schema import PUBLIC
from repro.data.table import Table
from repro.exec.batch import ColumnBatch
from repro.exec.engine import ColumnarBackend
from repro.hybrid.hybrid_agg import hybrid_aggregate
from repro.hybrid.hybrid_join import hybrid_join
from repro.hybrid.public_join import public_join
from repro.hybrid.stp import LeakageReport, SelectivelyTrustedParty
from repro.mpc.garbled import GarbledTable, OblivCBackend
from repro.mpc.network import Network
from repro.mpc.protocols import SharedTable
from repro.mpc.sharemind import SharemindBackend
from repro.runtime.transport import SocketTransport


class SecurityError(RuntimeError):
    """Raised when an execution step would reveal data to an unauthorised party."""


@dataclass
class _Entry:
    """A relation handle plus where it currently lives.

    ``handle`` is ``None`` when the relation lives at a party this executor
    does not embody (distributed runtime only).
    """

    kind: str  # "local" or "mpc"
    party: str | None
    handle: object


@dataclass
class ExecutionOutcome:
    """What one executor (process) produced while running a plan."""

    outputs: dict[str, Table]
    node_durations: dict[int, float]
    wall_seconds: float
    leakage: LeakageReport
    joint_leakage: LeakageReport
    backend_seconds: dict[str, float]
    mpc_profile: dict[str, int]


def completion_seconds(dag, durations: dict[int, float]) -> float:
    """Completion-time recurrence: independent work at different parties
    overlaps, so a node starts when its slowest parent finished."""
    finish: dict[int, float] = {}
    for node in dag.topological():
        start = max((finish[p.node_id] for p in node.parents), default=0.0)
        finish[node.node_id] = start + durations.get(node.node_id, 0.0)
    return max(finish.values(), default=0.0)


class PlanExecutor:
    """Executes compiled queries over in-memory party inputs.

    ``local_parties`` selects which parties this executor embodies; with the
    default (all of them, no mesh) it behaves exactly like the original
    in-process dispatcher.
    """

    def __init__(
        self,
        parties: list[str],
        inputs: dict[str, dict[str, Table]],
        config: CompilationConfig | None = None,
        seed: int = 0,
        *,
        local_parties: set[str] | None = None,
        mesh=None,
    ):
        self.parties = list(parties)
        self.inputs = inputs
        self.config = config or CompilationConfig()
        self.seed = seed
        self.mesh = mesh
        self.local_parties = set(local_parties) if local_parties is not None else set(self.parties)
        if mesh is None and self.local_parties != set(self.parties):
            raise ValueError("embodying a subset of parties requires a peer mesh")
        self.local_backends = {
            p: self._make_cleartext_backend() for p in self.parties if p in self.local_parties
        }
        # A single-party query never crosses the MPC boundary; the MPC
        # substrates require at least two computing parties.
        self.mpc_backend = self._make_mpc_backend() if len(self.parties) >= 2 else None
        self._reset_leakage()

    def _reset_leakage(self) -> None:
        """Fresh reports per execution, so a reused runner never accumulates
        or cross-contaminates leakage between runs."""
        self.leakage = LeakageReport()
        # In-process, joint events go straight into the same report (same
        # object, same interleaved ordering as before the runtime split).
        self.joint_leakage = self.leakage if self.mesh is None else LeakageReport()

    # -- backend construction -------------------------------------------------------------

    def _make_cleartext_backend(self):
        executor = getattr(self.config, "executor", "row")
        if executor == "columnar":
            # The columnar engine replaces the row engines wholesale: it is
            # the vectorized implementation of the same cleartext role, and
            # the differential corpus holds it byte-identical to the
            # sequential row oracle.
            return ColumnarBackend()
        if executor != "row":
            raise ValueError(
                f"unknown executor {executor!r}; expected 'row' or 'columnar'"
            )
        if self.config.cleartext_backend == "spark":
            return SparkBackend()
        return PythonBackend()

    def _make_mpc_backend(self):
        if self.config.mpc_backend == "obliv-c":
            compute = self.parties[: OblivCBackend.MAX_PARTIES]
            return OblivCBackend(compute)
        compute = self.parties[: SharemindBackend.MAX_PARTIES]
        network = None
        local_parties = None
        if self.mesh is not None:
            network = Network(compute, transport=SocketTransport(compute, self.mesh))
            # A party agent materialises only its own share slices; an agent
            # outside the compute set gets an observer engine (no slices)
            # that raises if the plan ever asks it to run an MPC primitive.
            local_parties = [p for p in compute if p in self.local_parties]
        return SharemindBackend(
            compute, seed=self.seed, network=network, local_parties=local_parties
        )

    # -- execution -------------------------------------------------------------------------

    def execute(self, compiled) -> ExecutionOutcome:
        """Execute a :class:`~repro.core.compiler.CompiledQuery`."""
        self._reset_leakage()
        dag = compiled.dag
        env: dict[str, _Entry] = {}
        outputs: dict[str, Table] = {}
        durations: dict[int, float] = {}
        all_parties = set(self.parties) | dag.parties()

        wall_start = time.perf_counter()
        try:
            for node in dag.topological():
                before = self._engine_seconds()
                entry = self._execute_node(node, env, outputs, all_parties)
                env[node.out_rel.name] = entry
                durations[node.node_id] = self._engine_seconds() - before
        except BaseException as exc:
            # Distributed lockstep: peers may be blocked waiting for this
            # executor's next frame.  Broadcast an abort for this query so
            # their reads fail immediately instead of running out the mesh
            # timeout — a failed query must surface loudly everywhere, fast.
            abort = getattr(self.mesh, "abort", None)
            if abort is not None:
                try:
                    abort(f"{type(exc).__name__}: {exc}")
                except Exception:  # noqa: BLE001 - the original error wins
                    pass
            raise
        wall_seconds = time.perf_counter() - wall_start

        return ExecutionOutcome(
            outputs=outputs,
            node_durations=durations,
            wall_seconds=wall_seconds,
            leakage=self.leakage,
            joint_leakage=self.joint_leakage,
            backend_seconds=self._backend_breakdown(),
            mpc_profile=self._mpc_profile(),
        )

    # -- node execution ----------------------------------------------------------------------

    def _execute_node(
        self,
        node: OpNode,
        env: dict[str, _Entry],
        outputs: dict[str, Table],
        all_parties: set[str],
    ) -> _Entry:
        if isinstance(node, Create):
            return self._execute_create(node)
        if isinstance(node, Collect):
            return self._execute_collect(node, env, outputs, all_parties)
        if node.is_mpc:
            return self._execute_mpc_node(node, env, all_parties)
        return self._execute_local_node(node, env, all_parties)

    def _execute_create(self, node: Create) -> _Entry:
        owner = node.out_rel.owner
        if owner is None:
            raise ValueError(f"input relation {node.out_rel.name!r} has no owner")
        if owner not in self.local_parties:
            return _Entry("local", owner, None)
        try:
            table = self.inputs[owner][node.out_rel.name]
        except KeyError as exc:
            raise KeyError(
                f"party {owner!r} has no input relation {node.out_rel.name!r}; "
                f"available: {sorted(self.inputs.get(owner, {}))}"
            ) from exc
        handle = self.local_backends[owner].ingest(table, contributor=owner)
        return _Entry("local", owner, handle)

    def _execute_collect(
        self,
        node: Collect,
        env: dict[str, _Entry],
        outputs: dict[str, Table],
        all_parties: set[str],
    ) -> _Entry:
        parent = node.parents[0]
        entry = env[parent.out_rel.name]
        if entry.kind == "mpc":
            table = self.mpc_backend.reveal(entry.handle)
            self.joint_leakage.record(
                "output", node.out_rel.name, node.out_rel.schema.names, node.recipients,
                detail=f"{table.num_rows} rows revealed as query output",
            )
            outputs[node.out_rel.name] = table
            return _Entry("local", node.recipients[0], table)
        if entry.party not in self.local_parties:
            return _Entry("local", node.recipients[0], None)
        table = self.local_backends[entry.party].collect(entry.handle)
        if entry.party not in node.recipients:
            self.leakage.record(
                "cleartext_transfer", node.out_rel.name, node.out_rel.schema.names,
                node.recipients, detail=f"sent from {entry.party}",
            )
        outputs[node.out_rel.name] = table
        return _Entry("local", node.recipients[0], table)

    def _execute_local_node(
        self,
        node: OpNode,
        env: dict[str, _Entry],
        all_parties: set[str],
    ) -> _Entry:
        party = node.run_at or node.out_rel.owner
        if party is None:
            raise ValueError(f"cleartext operator {node!r} has no executing party")
        if party not in self.local_parties:
            self._assist_remote_local(node, party, env, all_parties)
            return _Entry("local", party, None)
        engine = self.local_backends[party]
        handles = [
            self._as_local_handle(parent, node, party, env, all_parties)
            for parent in node.parents
        ]
        result = self._apply_operator(engine, node, handles)
        return _Entry("local", party, result)

    def _assist_remote_local(
        self,
        node: OpNode,
        party: str,
        env: dict[str, _Entry],
        all_parties: set[str],
    ) -> None:
        """Play this executor's part in a node another party executes.

        If one of my parties holds a parent relation, authorise and ship it;
        if a parent is MPC-resident, participate in the joint reveal round.
        """
        for parent in node.parents:
            entry = env[parent.out_rel.name]
            if entry.kind == "local":
                if entry.party == party or entry.party not in self.local_parties:
                    continue
                if not self._authorized(parent, node, party, all_parties):
                    raise SecurityError(
                        f"plan would transfer relation {parent.out_rel.name!r} from "
                        f"{entry.party} to unauthorised party {party}"
                    )
                table = self.local_backends[entry.party].collect(entry.handle)
                self.mesh.send_table(party, parent.out_rel.name, table)
            else:
                if not self._authorized(parent, node, party, all_parties):
                    raise SecurityError(
                        f"plan would reveal MPC relation {parent.out_rel.name!r} to "
                        f"unauthorised party {party}"
                    )
                table = self.mpc_backend.reveal_to(entry.handle, party)
                # A slice engine returns the cleartext only at the target
                # party; this agent just shipped its shares.  The row count
                # is public metadata either way.
                rows = table.num_rows if table is not None else entry.handle.num_rows
                self.joint_leakage.record(
                    "column_reveal", parent.out_rel.name, parent.out_rel.schema.names,
                    [party],
                    detail=f"{rows} rows revealed for cleartext post-processing",
                )

    def _execute_mpc_node(
        self,
        node: OpNode,
        env: dict[str, _Entry],
        all_parties: set[str],
    ) -> _Entry:
        handles = [self._as_mpc_handle(parent, env) for parent in node.parents]

        if isinstance(node, HybridJoin):
            stp = self._stp_for(node.stp)
            result = hybrid_join(
                self._require_sharemind("hybrid join"), stp, handles[0], handles[1],
                node.left_on, node.right_on, self.joint_leakage,
            )
            return _Entry("mpc", None, result)
        if isinstance(node, PublicJoin):
            host = self._stp_for(node.host)
            result = public_join(
                self._require_sharemind("public join"), host, handles[0], handles[1],
                node.left_on, node.right_on, self.joint_leakage,
            )
            return _Entry("mpc", None, result)
        if isinstance(node, HybridAggregate):
            stp = self._stp_for(node.stp)
            result = hybrid_aggregate(
                self._require_sharemind("hybrid aggregation"), stp, handles[0],
                node.group_col, node.agg_col, node.func, node.out_name, self.joint_leakage,
            )
            return _Entry("mpc", None, result)

        result = self._apply_operator(self.mpc_backend, node, handles)
        return _Entry("mpc", None, result)

    # -- operator application ----------------------------------------------------------------------

    def _apply_operator(self, engine, node: OpNode, handles: list):
        self._validate_key_range(node, handles[0] if handles else None)
        if isinstance(node, Concat):
            return engine.concat(handles)
        if isinstance(node, Project):
            return engine.project(handles[0], node.columns)
        if isinstance(node, Filter):
            return engine.filter(handles[0], node.column, node.op, node.value)
        if isinstance(node, Aggregate):
            return engine.aggregate(
                handles[0], node.group_col, node.agg_col, node.func, node.out_name,
                presorted=node.presorted,
            )
        if isinstance(node, Multiply):
            return engine.multiply(handles[0], node.out_name, node.left, node.right)
        if isinstance(node, Divide):
            return engine.divide(handles[0], node.out_name, node.left, node.right)
        if isinstance(node, Map):
            return engine.arith(handles[0], node.out_name, node.left, node.op, node.right)
        if isinstance(node, Compare):
            return engine.compare(handles[0], node.out_name, node.left, node.op, node.right)
        if isinstance(node, BoolOp):
            return engine.bool_op(handles[0], node.out_name, node.op, node.operands)
        if isinstance(node, Join):
            return engine.join(handles[0], handles[1], node.left_on, node.right_on)
        if isinstance(node, Merge):
            return engine.merge_sorted(handles, node.column, ascending=node.ascending)
        if isinstance(node, SortBy):
            return engine.sort_by(handles[0], node.column, ascending=node.ascending)
        if isinstance(node, Distinct):
            return engine.distinct(handles[0], node.columns)
        if isinstance(node, Limit):
            return engine.limit(handles[0], node.n)
        raise TypeError(f"unsupported operator {type(node).__name__}")

    # -- composite-key range enforcement -----------------------------------------------------------

    def _validate_key_range(self, node: OpNode, handle) -> None:
        """Reject out-of-range composite-key values at execution time.

        The composite-key encoding (``key * base + next_key``) is only
        collision-free for key values in ``[0, key_base)``; anything outside
        that range would silently match unequal keys.  The frontend marks
        the first operator of every encode chain with ``key_range_check``;
        here the executor inspects the actual key data — acting as the
        environment for MPC-resident relations, exactly like the ideal
        comparison functionalities do — and fails loudly instead.
        """
        check = getattr(node, "key_range_check", None)
        if not check or handle is None:
            return
        columns, base = check
        for name in columns:
            values = self._cleartext_view(handle, name)
            if values is None or values.size == 0:
                continue
            out_of_range = (values < 0) | (values >= base)
            if out_of_range.any():
                bad = values[out_of_range][0]
                raise ValueError(
                    f"composite-key column {name!r} contains value {int(bad)} outside "
                    f"[0, {base}); the composite-key encoding would silently mis-encode "
                    f"it — pass key_base= sized to the key domain"
                )

    @staticmethod
    def _cleartext_view(handle, column: str) -> np.ndarray | None:
        """The raw values of ``column`` regardless of which backend holds it."""
        if isinstance(handle, Table):
            return handle.column(column)
        if isinstance(handle, ColumnBatch):
            # Only the unmasked lanes are real rows; a lane filtered out
            # before the encode chain must not trip the range check.
            return handle.column_values(column)
        if isinstance(handle, PartitionedRelation):
            parts = [p.column(column) for p in handle.partitions]
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        if isinstance(handle, GarbledTable):
            return handle.table.column(column)
        if isinstance(handle, SharedTable):
            # Executed by every agent in lockstep (the range check runs at
            # the head of every operator application), so the env-open round
            # schedules identically across engines.
            return handle.engine.env_open(handle.column(column))
        return None

    # -- handle conversion across the MPC boundary ----------------------------------------------------

    def _as_mpc_handle(self, parent: OpNode, env: dict[str, _Entry]):
        if self.mpc_backend is None:
            raise ValueError(
                "plan contains MPC operators but the runner has a single party; "
                "MPC needs at least two computing parties"
            )
        entry = env[parent.out_rel.name]
        if entry.kind == "mpc":
            return entry.handle
        # Secret-sharing backends over a real mesh ingest by share
        # distribution: the contributor broadcasts only public metadata
        # (schema, row count) and every other agent receives its share
        # slices off the wire inside the input rounds — the cleartext never
        # leaves the contributing process.  The garbled-circuit backend
        # keeps the legacy replicated ingest (it evaluates on cleartext
        # replicas by construction).
        share_sliced = self.mesh is not None and isinstance(
            self.mpc_backend, SharemindBackend
        )
        if entry.party in self.local_parties:
            table = self.local_backends[entry.party].collect(entry.handle)
            if self.mesh is not None:
                if share_sliced:
                    self.mesh.broadcast_table(
                        parent.out_rel.name,
                        {"schema": table.schema, "num_rows": table.num_rows},
                    )
                else:
                    self.mesh.broadcast_table(parent.out_rel.name, table)
        else:
            payload = self.mesh.receive_table(entry.party, parent.out_rel.name)
            if share_sliced:
                return self.mpc_backend.ingest_remote(
                    payload["schema"], payload["num_rows"], contributor=entry.party
                )
            table = payload
        return self.mpc_backend.ingest(table, contributor=entry.party)

    def _as_local_handle(
        self,
        parent: OpNode,
        consumer: OpNode,
        party: str,
        env: dict[str, _Entry],
        all_parties: set[str],
    ):
        entry = env[parent.out_rel.name]
        engine = self.local_backends[party]
        if entry.kind == "local":
            if entry.party == party:
                return entry.handle
            if not self._authorized(parent, consumer, party, all_parties):
                raise SecurityError(
                    f"plan would transfer relation {parent.out_rel.name!r} from "
                    f"{entry.party} to unauthorised party {party}"
                )
            if entry.party in self.local_parties:
                table = self.local_backends[entry.party].collect(entry.handle)
            else:
                table = self.mesh.receive_table(entry.party, parent.out_rel.name)
            self.leakage.record(
                "cleartext_transfer", parent.out_rel.name, parent.out_rel.schema.names,
                [party], detail=f"sent from {entry.party}",
            )
            return engine.ingest(table, contributor=entry.party)
        # MPC-resident relation revealed to a single party.
        if not self._authorized(parent, consumer, party, all_parties):
            raise SecurityError(
                f"plan would reveal MPC relation {parent.out_rel.name!r} to "
                f"unauthorised party {party}"
            )
        table = self.mpc_backend.reveal_to(entry.handle, party)
        self.joint_leakage.record(
            "column_reveal", parent.out_rel.name, parent.out_rel.schema.names, [party],
            detail=f"{table.num_rows} rows revealed for cleartext post-processing",
        )
        return engine.ingest(table, contributor=party)

    def _authorized(
        self, parent: OpNode, consumer: OpNode, party: str, all_parties: set[str]
    ) -> bool:
        """Check that revealing ``parent``'s relation to ``party`` is allowed."""
        rel = parent.out_rel
        if rel.owner == party:
            return True
        if isinstance(consumer, Collect) and party in consumer.recipients:
            return True
        if consumer.run_at == party and getattr(consumer, "lifted", False):
            # Push-up lifted a reversible operator to the output recipient:
            # its input is derivable from the output the recipient receives.
            return True
        trust_ok = all(
            party in rel.column_trust(col) or PUBLIC in rel.column_trust(col)
            for col in rel.schema.names
        )
        return trust_ok

    # -- helpers ------------------------------------------------------------------------------------------

    def _stp_for(self, party: str) -> SelectivelyTrustedParty:
        if party not in self.local_backends:
            # The STP's cleartext work is part of the joint computation: in
            # the distributed runtime every agent keeps a deterministic
            # replica of the STP engine so the hybrid protocols stay in
            # lockstep (and the simulated clock charges the same work).
            self.local_backends[party] = self._make_cleartext_backend()
        return SelectivelyTrustedParty(party, self.local_backends[party])

    def _require_sharemind(self, what: str) -> SharemindBackend:
        if not isinstance(self.mpc_backend, SharemindBackend):
            raise ValueError(
                f"{what} requires the secret-sharing (sharemind) MPC backend; "
                f"configured backend is {self.config.mpc_backend!r}"
            )
        return self.mpc_backend

    def _engine_seconds(self) -> float:
        # A distributed agent keeps deterministic *replicas* of other
        # parties' STP engines to stay in lockstep, but only the work of the
        # parties it embodies counts towards its clock — the replicated work
        # is reported by the party that really owns it, and the coordinator's
        # per-node max-merge reconstructs the joint durations.
        total = sum(
            engine.elapsed_seconds()
            for party, engine in self.local_backends.items()
            if self.mesh is None or party in self.local_parties
        )
        if self.mpc_backend is not None:
            total += self.mpc_backend.elapsed_seconds()
        return total

    def _backend_breakdown(self) -> dict[str, float]:
        breakdown = {
            f"local:{party}": engine.elapsed_seconds()
            for party, engine in self.local_backends.items()
            if self.mesh is None or party in self.local_parties
        }
        if self.mpc_backend is not None:
            breakdown[f"mpc:{self.mpc_backend.name}"] = self.mpc_backend.elapsed_seconds()
        return breakdown

    def isolation_audit(self) -> dict:
        """Debug hook: which parties' secret state this executor materialises.

        Used by the cryptographic-isolation tests to assert that a party
        agent holds only its own share slices and only its own cleartext
        inputs.  ``share_parties`` lists the parties whose additive share
        slices the MPC engine holds; ``cleartext_input_parties`` lists the
        parties whose raw input tables are present in this process.
        """
        share_parties: list[str] = []
        engine = getattr(self.mpc_backend, "engine", None)
        if engine is not None and hasattr(engine, "held_share_parties"):
            share_parties = list(engine.held_share_parties)
        return {
            "local_parties": sorted(self.local_parties),
            "share_parties": share_parties,
            "cleartext_input_parties": sorted(
                p for p, tables in self.inputs.items() if tables
            ),
        }

    def _mpc_profile(self) -> dict[str, int]:
        """JSON-friendly counters of the joint MPC work (for differential
        testing and the transport benchmark)."""
        backend = self.mpc_backend
        if backend is None:
            return {}
        if isinstance(backend, SharemindBackend):
            meter = backend.meter
            stats = backend.engine.network.stats
            return {
                "backend": backend.name,
                "input_records": meter.input_records,
                "output_records": meter.output_records,
                "multiplications": meter.multiplications,
                "comparisons": meter.comparisons,
                "shuffled_elements": meter.shuffled_elements,
                "local_ops": meter.local_ops,
                "messages": stats.messages,
                "bytes_sent": stats.bytes_sent,
                "rounds": stats.rounds,
                "wire_rounds": stats.wire_rounds,
            }
        return {
            "backend": backend.name,
            "gates": backend.total_gates,
            "input_bits": backend.total_input_bits,
            "peak_memory_bytes": backend.peak_memory_bytes,
        }
