"""Length-prefixed pickle framing for the socket runtime.

Every connection of the distributed runtime — coordinator-to-agent control
links and the agent-to-agent mesh — speaks the same trivial protocol: a
4-byte big-endian length header followed by a pickled Python object.  The
payloads never leave the local machine group running the query (parties are
mutually known processes of one deployment), but "mutually known" is not
"mutually trusted": a compromised peer must not get arbitrary code execution
on every other party just by naming ``os.system`` in a pickle frame.  All
frames are therefore decoded through :class:`RestrictedUnpickler`, which
resolves only an allowlist of globals — builtin containers, ``repro.*``
types, numpy array-reconstruction callables, and exception classes — and
rejects everything else with :class:`WireError` before any object is built.
A production deployment would still swap in msgpack plus TLS, which is
exactly why the framing lives in its own module.

The framing is exposed in two forms:

* :func:`send_frame` / :func:`recv_frame` — the socket-bound pair the
  runtime uses.  ``recv_frame(..., allow_idle_timeout=True)`` lets a serving
  agent distinguish "no frame started yet" (the socket timed out while the
  stream sat idle between frames — re-raised as :class:`TimeoutError` so the
  caller can apply an idle policy) from "the stream died mid-frame" (always
  a :class:`WireError`).
* :func:`encode_frame` / :class:`FrameDecoder` — the same protocol over
  plain bytes, so framing properties (round-trips, interleaving, truncation
  rejection) are testable without sockets and the decoder can be reused by
  future non-socket transports.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import threading

#: Upper bound on a single frame; a frame larger than this indicates stream
#: corruption (e.g. a desynchronised header), not a legitimate payload.
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")


class WireError(ConnectionError):
    """A connection failed mid-frame or produced a corrupt frame."""


#: Builtins a frame may name directly.  Deliberately excludes ``getattr``,
#: ``eval`` and friends — anything callable that could reach beyond plain
#: data construction.
_SAFE_BUILTINS = frozenset({
    "bool", "bytearray", "bytes", "complex", "dict", "float", "frozenset",
    "int", "list", "object", "range", "set", "slice", "str", "tuple",
})

#: Numpy reconstruction callables used by ndarray/dtype/scalar pickles,
#: covering both the numpy 1.x (``numpy.core``) and 2.x (``numpy._core``)
#: module layouts.
_SAFE_NUMPY = frozenset({"_reconstruct", "ndarray", "dtype", "scalar", "_frombuffer"})


class RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves globals a repro frame legitimately needs.

    Allowed: safe builtins, ``collections``/``datetime`` helpers, numpy
    array reconstruction, anything from the ``repro`` package, and exception
    classes (agents ship their failures back to the coordinator).  Every
    other global — ``os.system``, ``builtins.eval``, ``subprocess.*`` — is
    rejected with :class:`pickle.UnpicklingError` before it is ever called.
    """

    def find_class(self, module: str, name: str):
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        if module in ("collections", "datetime"):
            return super().find_class(module, name)
        if (module == "numpy" or module.startswith("numpy.")) and name in _SAFE_NUMPY:
            return super().find_class(module, name)
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        # Exception classes (from any importable module) are allowed so that
        # agent failures deserialise faithfully; resolve first, then verify
        # the result really is an exception *type* before handing it out.
        try:
            obj = super().find_class(module, name)
        except Exception:
            obj = None
        if isinstance(obj, type) and issubclass(obj, BaseException):
            return obj
        raise pickle.UnpicklingError(
            f"frame references forbidden global {module}.{name}"
        )


def restricted_loads(data: bytes) -> object:
    """Deserialise one frame payload through the allowlisting unpickler."""
    try:
        return RestrictedUnpickler(io.BytesIO(data)).load()
    except pickle.UnpicklingError as exc:
        raise WireError(f"rejected frame: {exc}") from exc


class LinkStats:
    """Byte/frame counters for one connection, safe for concurrent writers.

    The metrics layer observes *traffic shape* (bytes and frame counts per
    link), never payload contents — monitoring stays on the right side of
    the privacy boundary.  A sender thread and the peer-facing reader thread
    update the same instance, so the tiny increments take a lock.
    """

    __slots__ = ("_lock", "bytes_sent", "bytes_received", "frames_sent", "frames_received")

    def __init__(self):
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    def add_sent(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_sent += nbytes
            self.frames_sent += 1

    def add_received(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_received += nbytes
            self.frames_received += 1

    def snapshot(self) -> dict:
        """An immutable, internally consistent copy of the counters."""
        with self._lock:
            return {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
            }


def encode_frame(obj: object) -> bytes:
    """Serialise ``obj`` as one length-prefixed frame."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    return _HEADER.pack(len(data)) + data


class FrameDecoder:
    """Incremental decoder for a byte stream of length-prefixed frames.

    Feed arbitrary chunks (network reads split frames at arbitrary points);
    :meth:`frames` yields every complete decoded object.  :meth:`eof` must be
    called when the stream ends: a stream that stops mid-frame is truncated
    and raises :class:`WireError` instead of silently dropping the tail.
    """

    def __init__(self):
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[object]:
        """Absorb ``chunk`` and return the objects completed by it."""
        self._buffer.extend(chunk)
        frames = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
            if len(self._buffer) < _HEADER.size + length:
                break
            payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            frames.append(restricted_loads(payload))
        return frames

    def eof(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise WireError(
                f"stream truncated mid-frame: {len(self._buffer)} trailing bytes"
            )


def send_frame(sock: socket.socket, obj: object, *, stats: LinkStats | None = None) -> None:
    """Serialise ``obj`` and write it as one length-prefixed frame.

    With ``stats``, the frame's full wire size (header + payload) is counted
    once the write completed.
    """
    data = encode_frame(obj)
    try:
        sock.sendall(data)
    except OSError as exc:
        raise WireError(f"failed to send {len(data)}-byte frame: {exc}") from exc
    if stats is not None:
        stats.add_sent(len(data))


def send_torn_frame(sock: socket.socket, obj: object, fraction: float = 0.6) -> int:
    """Write only a *prefix* of ``obj``'s frame — a deliberately torn frame.

    Used by the fault-injection layer to reproduce what a process dying
    mid-``sendall`` looks like from the other end: the header promises a
    frame the stream can never complete, so the receiver's ``recv_frame``
    fails with a mid-frame :class:`WireError` (never a silent truncation, as
    the framing tests assert).  At least the header plus one payload byte is
    written so the receiver is genuinely *inside* the frame.  Returns the
    number of bytes written.
    """
    data = encode_frame(obj)
    cut = max(_HEADER.size + 1, int(len(data) * fraction))
    cut = min(cut, len(data) - 1)
    try:
        sock.sendall(data[:cut])
    except OSError as exc:
        raise WireError(f"failed to send torn frame: {exc}") from exc
    return cut


def recv_frame(
    sock: socket.socket,
    *,
    allow_idle_timeout: bool = False,
    stats: LinkStats | None = None,
) -> object:
    """Read one length-prefixed frame and unpickle it.

    With ``allow_idle_timeout`` a socket timeout that fires *before any byte
    of the frame arrived* is re-raised as :class:`TimeoutError` (the stream
    is merely idle); a timeout mid-frame is still a :class:`WireError`.
    With ``stats``, the frame's full wire size (header + payload) is counted
    once the frame was read completely.
    """
    header = _recv_exact(sock, _HEADER.size, allow_idle_timeout=allow_idle_timeout)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
    payload = _recv_exact(sock, length)
    if stats is not None:
        stats.add_received(_HEADER.size + length)
    return restricted_loads(payload)


def _recv_exact(sock: socket.socket, n: int, *, allow_idle_timeout: bool = False) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except TimeoutError:
            if allow_idle_timeout and not buf:
                raise
            raise WireError("connection timed out mid-frame") from None
        except OSError as exc:
            raise WireError(f"connection error while reading frame: {exc}") from exc
        if not chunk:
            raise WireError("connection closed mid-frame")
        buf.extend(chunk)
    return bytes(buf)
