"""Length-prefixed pickle framing for the socket runtime.

Every connection of the distributed runtime — coordinator-to-agent control
links and the agent-to-agent mesh — speaks the same trivial protocol: a
4-byte big-endian length header followed by a pickled Python object.  The
payloads never leave the local machine group running the query (parties are
mutually known processes of one deployment), so pickle's convenience
outweighs its trust assumptions here; a production deployment would swap in
msgpack plus TLS, which is exactly why the framing lives in its own module.

The framing is exposed in two forms:

* :func:`send_frame` / :func:`recv_frame` — the socket-bound pair the
  runtime uses.  ``recv_frame(..., allow_idle_timeout=True)`` lets a serving
  agent distinguish "no frame started yet" (the socket timed out while the
  stream sat idle between frames — re-raised as :class:`TimeoutError` so the
  caller can apply an idle policy) from "the stream died mid-frame" (always
  a :class:`WireError`).
* :func:`encode_frame` / :class:`FrameDecoder` — the same protocol over
  plain bytes, so framing properties (round-trips, interleaving, truncation
  rejection) are testable without sockets and the decoder can be reused by
  future non-socket transports.
"""

from __future__ import annotations

import pickle
import socket
import struct

#: Upper bound on a single frame; a frame larger than this indicates stream
#: corruption (e.g. a desynchronised header), not a legitimate payload.
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")


class WireError(ConnectionError):
    """A connection failed mid-frame or produced a corrupt frame."""


def encode_frame(obj: object) -> bytes:
    """Serialise ``obj`` as one length-prefixed frame."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    return _HEADER.pack(len(data)) + data


class FrameDecoder:
    """Incremental decoder for a byte stream of length-prefixed frames.

    Feed arbitrary chunks (network reads split frames at arbitrary points);
    :meth:`frames` yields every complete decoded object.  :meth:`eof` must be
    called when the stream ends: a stream that stops mid-frame is truncated
    and raises :class:`WireError` instead of silently dropping the tail.
    """

    def __init__(self):
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[object]:
        """Absorb ``chunk`` and return the objects completed by it."""
        self._buffer.extend(chunk)
        frames = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
            if len(self._buffer) < _HEADER.size + length:
                break
            payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            frames.append(pickle.loads(payload))
        return frames

    def eof(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise WireError(
                f"stream truncated mid-frame: {len(self._buffer)} trailing bytes"
            )


def send_frame(sock: socket.socket, obj: object) -> None:
    """Serialise ``obj`` and write it as one length-prefixed frame."""
    data = encode_frame(obj)
    try:
        sock.sendall(data)
    except OSError as exc:
        raise WireError(f"failed to send {len(data)}-byte frame: {exc}") from exc


def recv_frame(sock: socket.socket, *, allow_idle_timeout: bool = False) -> object:
    """Read one length-prefixed frame and unpickle it.

    With ``allow_idle_timeout`` a socket timeout that fires *before any byte
    of the frame arrived* is re-raised as :class:`TimeoutError` (the stream
    is merely idle); a timeout mid-frame is still a :class:`WireError`.
    """
    header = _recv_exact(sock, _HEADER.size, allow_idle_timeout=allow_idle_timeout)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int, *, allow_idle_timeout: bool = False) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except TimeoutError:
            if allow_idle_timeout and not buf:
                raise
            raise WireError("connection timed out mid-frame") from None
        except OSError as exc:
            raise WireError(f"connection error while reading frame: {exc}") from exc
        if not chunk:
            raise WireError("connection closed mid-frame")
        buf.extend(chunk)
    return bytes(buf)
