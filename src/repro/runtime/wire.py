"""Length-prefixed framing and the self-describing wire codec.

Every connection of the distributed runtime — coordinator-to-agent control
links and the agent-to-agent mesh — speaks the same trivial protocol: a
4-byte big-endian length header followed by one encoded payload.  The
payload encoding is a tag-length-value codec over the *closed* set of types
that legitimately cross the wire: ``None``/bools, ints, floats, complex,
str/bytes/bytearray, lists/tuples/dicts/sets/frozensets, NumPy arrays and
scalars (dtype + shape + raw buffer), instances of classes defined inside
the ``repro`` package (module + qualname + attribute state), enums from the
``repro`` package, and exception envelopes.  Nothing else is expressible,
so arbitrary-object deserialization is structurally impossible: the decoder
builds containers and fills attribute dicts, it never resolves or calls a
global outside the ``repro`` package and the exception allowlist.

Legacy pickle frames are still *accepted* (and emitted for payloads the
codec cannot express) through :class:`RestrictedUnpickler`, but only while
the fallback is enabled — set ``REPRO_WIRE_PICKLE=0`` in the environment
(or call :func:`set_pickle_fallback`) to refuse pickle on the wire
entirely, which is the recommended posture for multi-host deployments.
Codec payloads start with the magic byte ``0xC7``; pickle protocol >= 2
payloads start with ``0x80``, so the two are unambiguous on the stream.

The framing is exposed in two forms:

* :func:`send_frame` / :func:`recv_frame` — the socket-bound pair the
  runtime uses.  ``recv_frame(..., allow_idle_timeout=True)`` lets a serving
  agent distinguish "no frame started yet" (the socket timed out while the
  stream sat idle between frames — re-raised as :class:`TimeoutError` so the
  caller can apply an idle policy) from "the stream died mid-frame" (always
  a :class:`WireError`).
* :func:`encode_frame` / :class:`FrameDecoder` — the same protocol over
  plain bytes, so framing properties (round-trips, interleaving, truncation
  rejection) are testable without sockets and the decoder can be reused by
  future non-socket transports.

TLS support lives here too: :func:`secure_server_socket` /
:func:`secure_client_socket` wrap an accepted/dialled socket with a context
built by :class:`repro.core.config.TransportSecurity`, and
:func:`peer_common_name` extracts the authenticated identity (the
certificate CN) that hello verification checks party ids against.
"""

from __future__ import annotations

import importlib
import io
import os
import pickle
import socket
import ssl
import struct
import sys
import threading

import numpy as np

#: Upper bound on a single frame; a frame larger than this indicates stream
#: corruption (e.g. a desynchronised header), not a legitimate payload.
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")

#: First byte of every codec payload.  Pickle protocol >= 2 streams start
#: with ``0x80``, so the magic unambiguously separates codec frames from
#: legacy pickle frames on the same stream.
CODEC_MAGIC = 0xC7


class WireError(ConnectionError):
    """A connection failed mid-frame or produced a corrupt frame."""


class UnsupportedPayload(TypeError):
    """A payload contains an object outside the codec's closed type set."""


# --------------------------------------------------------------------------
# legacy pickle fallback (restricted unpickler), gated by REPRO_WIRE_PICKLE
# --------------------------------------------------------------------------

#: Builtins a pickle frame may name directly.  Deliberately excludes
#: ``getattr``, ``eval`` and friends — anything callable that could reach
#: beyond plain data construction.
_SAFE_BUILTINS = frozenset({
    "bool", "bytearray", "bytes", "complex", "dict", "float", "frozenset",
    "int", "list", "object", "range", "set", "slice", "str", "tuple",
})

#: Numpy reconstruction callables used by ndarray/dtype/scalar pickles,
#: covering both the numpy 1.x (``numpy.core``) and 2.x (``numpy._core``)
#: module layouts.
_SAFE_NUMPY = frozenset({"_reconstruct", "ndarray", "dtype", "scalar", "_frombuffer"})

_FALLBACK_OVERRIDE: bool | None = None


def set_pickle_fallback(enabled: bool | None) -> None:
    """Programmatically force the legacy pickle fallback on or off.

    ``None`` restores the environment-driven default (``REPRO_WIRE_PICKLE``,
    enabled unless set to ``0``).  The flag is consulted at every encode and
    decode, so it also governs frames exchanged with already-forked agent
    processes (which inherit the environment).
    """
    global _FALLBACK_OVERRIDE
    _FALLBACK_OVERRIDE = enabled


def pickle_fallback_allowed() -> bool:
    """Whether legacy pickle frames may be emitted or accepted."""
    if _FALLBACK_OVERRIDE is not None:
        return _FALLBACK_OVERRIDE
    return os.environ.get("REPRO_WIRE_PICKLE", "1") != "0"


def _resolve_exception_class(module: str, name: str) -> type | None:
    """Resolve ``module.name`` to an exception class without importing.

    Only modules that are *already loaded* (``sys.modules``) are consulted —
    a hostile frame naming an importable-but-unloaded module must not be
    able to trigger that module's import side effects on every party.
    """
    mod = sys.modules.get(module)
    if mod is None:
        return None
    obj: object = mod
    for part in name.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    if isinstance(obj, type) and issubclass(obj, BaseException):
        return obj
    return None


class RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves globals a repro frame legitimately needs.

    Allowed: safe builtins, ``collections``/``datetime`` helpers, numpy
    array reconstruction, anything from the ``repro`` package, and exception
    classes (agents ship their failures back to the coordinator).  Every
    other global — ``os.system``, ``builtins.eval``, ``subprocess.*`` — is
    rejected with :class:`pickle.UnpicklingError` before it is ever called.
    Exception classes are resolved *only* from modules already present in
    ``sys.modules``; naming a not-yet-imported module never triggers an
    import (and its side effects) on the receiving party.
    """

    def find_class(self, module: str, name: str):
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        if module in ("collections", "datetime"):
            return super().find_class(module, name)
        if (module == "numpy" or module.startswith("numpy.")) and name in _SAFE_NUMPY:
            return super().find_class(module, name)
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        obj = _resolve_exception_class(module, name)
        if obj is not None:
            return obj
        raise pickle.UnpicklingError(
            f"frame references forbidden global {module}.{name}"
        )


def restricted_loads(data: bytes) -> object:
    """Deserialise one legacy pickle payload through the allowlisting unpickler."""
    try:
        return RestrictedUnpickler(io.BytesIO(data)).load()
    except pickle.UnpicklingError as exc:
        raise WireError(f"rejected frame: {exc}") from exc


# --------------------------------------------------------------------------
# the wire codec: tag-length-value over the closed frame-payload type set
# --------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_COMPLEX = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_BYTEARRAY = 0x08
_T_LIST = 0x09
_T_TUPLE = 0x0A
_T_DICT = 0x0B
_T_SET = 0x0C
_T_FROZENSET = 0x0D
_T_NDARRAY = 0x0E
_T_NPSCALAR = 0x0F
_T_OBJ = 0x10
_T_ENUM = 0x11
_T_EXC = 0x12
_T_REF = 0x13

_FLOAT_STRUCT = struct.Struct(">d")
_COMPLEX_STRUCT = struct.Struct(">dd")

#: dtype kinds the codec will carry: booleans, signed/unsigned ints, floats,
#: complex, timedelta/datetime, and fixed-width byte/unicode strings.  The
#: object ('O') and structured-void ('V') kinds are rejected — they smuggle
#: arbitrary Python objects or lose field metadata.
_SAFE_DTYPE_KINDS = frozenset("biufcmMSU")


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise UnsupportedPayload("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _write_varint(out, len(data))
    out.extend(data)


class _Encoder:
    def __init__(self) -> None:
        self.out = bytearray()
        self.memo: dict[int, int] = {}
        # Keeps memoised objects alive so id() values cannot be recycled
        # mid-encode (a freed id reused by a new object would alias refs).
        self.memo_objs: list[object] = []

    def _memoise(self, obj: object) -> None:
        self.memo[id(obj)] = len(self.memo_objs)
        self.memo_objs.append(obj)

    def encode(self, obj: object) -> None:
        out = self.out
        if obj is None:
            out.append(_T_NONE)
            return
        if obj is True:
            out.append(_T_TRUE)
            return
        if obj is False:
            out.append(_T_FALSE)
            return
        kind = type(obj)
        if kind is int:
            out.append(_T_INT)
            data = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            _write_varint(out, len(data))
            out.extend(data)
            return
        if kind is float:
            out.append(_T_FLOAT)
            out.extend(_FLOAT_STRUCT.pack(obj))
            return
        if kind is complex:
            out.append(_T_COMPLEX)
            out.extend(_COMPLEX_STRUCT.pack(obj.real, obj.imag))
            return
        if kind is str:
            out.append(_T_STR)
            _write_str(out, obj)
            return
        if kind is bytes:
            out.append(_T_BYTES)
            _write_varint(out, len(obj))
            out.extend(obj)
            return
        ref = self.memo.get(id(obj))
        if ref is not None:
            out.append(_T_REF)
            _write_varint(out, ref)
            return
        if kind is bytearray:
            self._memoise(obj)
            out.append(_T_BYTEARRAY)
            _write_varint(out, len(obj))
            out.extend(obj)
            return
        if kind is list:
            self._memoise(obj)
            out.append(_T_LIST)
            _write_varint(out, len(obj))
            for item in obj:
                self.encode(item)
            return
        if kind is dict:
            self._memoise(obj)
            out.append(_T_DICT)
            _write_varint(out, len(obj))
            for key, value in obj.items():
                self.encode(key)
                self.encode(value)
            return
        if kind is set:
            self._memoise(obj)
            out.append(_T_SET)
            _write_varint(out, len(obj))
            for item in obj:
                self.encode(item)
            return
        if kind is tuple:
            out.append(_T_TUPLE)
            _write_varint(out, len(obj))
            for item in obj:
                self.encode(item)
            self._memoise(obj)
            return
        if kind is frozenset:
            out.append(_T_FROZENSET)
            _write_varint(out, len(obj))
            for item in obj:
                self.encode(item)
            self._memoise(obj)
            return
        if kind is np.ndarray:
            self._encode_ndarray(obj)
            return
        if isinstance(obj, np.generic):
            self._encode_npscalar(obj)
            return
        if isinstance(obj, BaseException):
            self._encode_exception(obj)
            return
        module = getattr(kind, "__module__", "") or ""
        if module == "repro" or module.startswith("repro."):
            import enum as _enum

            if isinstance(obj, _enum.Enum):
                out.append(_T_ENUM)
                _write_str(out, module)
                _write_str(out, kind.__qualname__)
                _write_str(out, obj.name)
                return
            self._encode_repro_instance(obj, module, kind)
            return
        raise UnsupportedPayload(
            f"object of type {module}.{kind.__qualname__} is outside the wire codec's type set"
        )

    def _encode_ndarray(self, arr: np.ndarray) -> None:
        if arr.dtype.kind not in _SAFE_DTYPE_KINDS or arr.dtype.hasobject:
            raise UnsupportedPayload(f"ndarray dtype {arr.dtype!r} is not wire-safe")
        out = self.out
        out.append(_T_NDARRAY)
        _write_str(out, arr.dtype.str)
        _write_varint(out, arr.ndim)
        for dim in arr.shape:
            _write_varint(out, dim)
        data = np.ascontiguousarray(arr).tobytes()
        _write_varint(out, len(data))
        out.extend(data)
        self._memoise(arr)

    def _encode_npscalar(self, value: np.generic) -> None:
        dtype = np.dtype(type(value)) if not hasattr(value, "dtype") else value.dtype
        if dtype.kind not in _SAFE_DTYPE_KINDS or dtype.hasobject:
            raise UnsupportedPayload(f"numpy scalar dtype {dtype!r} is not wire-safe")
        out = self.out
        out.append(_T_NPSCALAR)
        _write_str(out, dtype.str)
        data = value.tobytes()
        _write_varint(out, len(data))
        out.extend(data)

    def _encode_exception(self, exc: BaseException) -> None:
        kind = type(exc)
        out = self.out
        out.append(_T_EXC)
        _write_str(out, kind.__module__ or "builtins")
        _write_str(out, kind.__qualname__)
        self.encode(tuple(exc.args))
        state = getattr(exc, "__dict__", None)
        self.encode(dict(state) if state else None)
        self._memoise(exc)

    def _encode_repro_instance(self, obj: object, module: str, kind: type) -> None:
        out = self.out
        out.append(_T_OBJ)
        _write_str(out, module)
        _write_str(out, kind.__qualname__)
        self._memoise(obj)
        dict_state = getattr(obj, "__dict__", None)
        slot_state: dict[str, object] = {}
        for klass in kind.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot in ("__dict__", "__weakref__"):
                    continue
                try:
                    slot_state[slot] = getattr(obj, slot)
                except AttributeError:
                    continue
        self.encode(dict(dict_state) if dict_state is not None else None)
        self.encode(slot_state or None)


def encode_payload(obj: object) -> bytes:
    """Serialise ``obj`` with the wire codec (no length header).

    Raises :class:`UnsupportedPayload` for objects outside the closed type
    set so callers can decide whether the legacy pickle fallback applies.
    """
    encoder = _Encoder()
    try:
        encoder.encode(obj)
    except RecursionError:
        raise UnsupportedPayload("payload nesting exceeds the codec recursion limit") from None
    return bytes([CODEC_MAGIC]) + bytes(encoder.out)


class _Decoder:
    def __init__(self, data: bytes | memoryview) -> None:
        self.data = memoryview(data)
        self.pos = 0
        self.memo: list[object] = []

    def _fail(self, why: str) -> WireError:
        return WireError(f"corrupt codec frame at byte {self.pos}: {why}")

    def _take(self, n: int) -> memoryview:
        if n < 0 or self.pos + n > len(self.data):
            raise self._fail(f"needs {n} more bytes past end of payload")
        view = self.data[self.pos:self.pos + n]
        self.pos += n
        return view

    def _read_varint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.data):
                raise self._fail("truncated varint")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise self._fail("varint overflow")

    def _read_str(self) -> str:
        length = self._read_varint()
        try:
            return str(self._take(length), "utf-8")
        except UnicodeDecodeError as exc:
            raise self._fail(f"invalid utf-8: {exc}") from None

    def decode(self) -> object:
        if self.pos >= len(self.data):
            raise self._fail("truncated payload: expected a tag")
        tag = self.data[self.pos]
        self.pos += 1
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            length = self._read_varint()
            return int.from_bytes(self._take(length), "big", signed=True)
        if tag == _T_FLOAT:
            return _FLOAT_STRUCT.unpack(self._take(8))[0]
        if tag == _T_COMPLEX:
            real, imag = _COMPLEX_STRUCT.unpack(self._take(16))
            return complex(real, imag)
        if tag == _T_STR:
            return self._read_str()
        if tag == _T_BYTES:
            return bytes(self._take(self._read_varint()))
        if tag == _T_BYTEARRAY:
            value = bytearray(self._take(self._read_varint()))
            self.memo.append(value)
            return value
        if tag == _T_LIST:
            count = self._read_varint()
            out: list[object] = []
            self.memo.append(out)
            for _ in range(count):
                out.append(self.decode())
            return out
        if tag == _T_DICT:
            count = self._read_varint()
            mapping: dict = {}
            self.memo.append(mapping)
            for _ in range(count):
                key = self.decode()
                mapping[key] = self.decode()
            return mapping
        if tag == _T_SET:
            count = self._read_varint()
            values: set = set()
            self.memo.append(values)
            for _ in range(count):
                values.add(self.decode())
            return values
        if tag == _T_TUPLE:
            count = self._read_varint()
            value = tuple(self.decode() for _ in range(count))
            self.memo.append(value)
            return value
        if tag == _T_FROZENSET:
            count = self._read_varint()
            value = frozenset(self.decode() for _ in range(count))
            self.memo.append(value)
            return value
        if tag == _T_NDARRAY:
            return self._decode_ndarray()
        if tag == _T_NPSCALAR:
            dtype = self._read_dtype()
            data = self._take(self._read_varint())
            try:
                return np.frombuffer(data, dtype=dtype)[0]
            except (ValueError, IndexError) as exc:
                raise self._fail(f"bad numpy scalar: {exc}") from None
        if tag == _T_OBJ:
            return self._decode_repro_instance()
        if tag == _T_ENUM:
            return self._decode_enum()
        if tag == _T_EXC:
            return self._decode_exception()
        if tag == _T_REF:
            index = self._read_varint()
            if index >= len(self.memo):
                raise self._fail(f"dangling memo reference {index}")
            return self.memo[index]
        raise self._fail(f"unknown tag 0x{tag:02x}")

    def _read_dtype(self) -> np.dtype:
        spec = self._read_str()
        try:
            dtype = np.dtype(spec)
        except TypeError as exc:
            raise self._fail(f"bad dtype {spec!r}: {exc}") from None
        if dtype.kind not in _SAFE_DTYPE_KINDS or dtype.hasobject:
            raise self._fail(f"dtype {spec!r} is not wire-safe")
        return dtype

    def _decode_ndarray(self) -> np.ndarray:
        dtype = self._read_dtype()
        ndim = self._read_varint()
        if ndim > 32:
            raise self._fail(f"ndarray claims {ndim} dimensions")
        shape = tuple(self._read_varint() for _ in range(ndim))
        data = self._take(self._read_varint())
        try:
            arr = np.frombuffer(data, dtype=dtype).reshape(shape).copy()
        except ValueError as exc:
            raise self._fail(f"bad ndarray buffer: {exc}") from None
        self.memo.append(arr)
        return arr

    def _resolve_repro_class(self, module: str, qualname: str) -> type:
        if not (module == "repro" or module.startswith("repro.")):
            raise self._fail(f"frame references non-repro class {module}.{qualname}")
        try:
            mod = importlib.import_module(module)
        except ImportError as exc:
            raise self._fail(f"unknown repro module {module}: {exc}") from None
        obj: object = mod
        for part in qualname.split("."):
            obj = getattr(obj, part, None)
            if obj is None:
                raise self._fail(f"unknown repro class {module}.{qualname}")
        if not isinstance(obj, type):
            raise self._fail(f"{module}.{qualname} is not a class")
        return obj

    def _decode_repro_instance(self) -> object:
        module = self._read_str()
        qualname = self._read_str()
        cls = self._resolve_repro_class(module, qualname)
        try:
            inst = cls.__new__(cls)
        except TypeError as exc:
            raise self._fail(f"cannot instantiate {module}.{qualname}: {exc}") from None
        self.memo.append(inst)
        dict_state = self.decode()
        slot_state = self.decode()
        if dict_state is not None:
            if not isinstance(dict_state, dict):
                raise self._fail("instance dict state is not a dict")
            inst.__dict__.update(dict_state)
        if slot_state is not None:
            if not isinstance(slot_state, dict):
                raise self._fail("instance slot state is not a dict")
            for key, value in slot_state.items():
                object.__setattr__(inst, key, value)
        return inst

    def _decode_enum(self) -> object:
        import enum as _enum

        module = self._read_str()
        qualname = self._read_str()
        member = self._read_str()
        cls = self._resolve_repro_class(module, qualname)
        if not issubclass(cls, _enum.Enum):
            raise self._fail(f"{module}.{qualname} is not an enum")
        try:
            return cls[member]
        except KeyError:
            raise self._fail(f"unknown enum member {qualname}.{member}") from None

    def _decode_exception(self) -> BaseException:
        module = self._read_str()
        qualname = self._read_str()
        args = self.decode()
        state = self.decode()
        if not isinstance(args, tuple):
            raise self._fail("exception args are not a tuple")
        cls: type[BaseException] | None = None
        if module == "repro" or module.startswith("repro."):
            try:
                candidate: object = importlib.import_module(module)
                for part in qualname.split("."):
                    candidate = getattr(candidate, part, None)
                    if candidate is None:
                        break
                if isinstance(candidate, type) and issubclass(candidate, BaseException):
                    cls = candidate
            except ImportError:
                cls = None
        else:
            cls = _resolve_exception_class(module, qualname)
        if cls is None:
            exc: BaseException = RuntimeError(
                f"remote exception {module}.{qualname}{args!r} "
                "(class not resolvable on this party)"
            )
        else:
            try:
                exc = cls(*args)
            except Exception:
                exc = cls.__new__(cls)
                exc.args = args
        if isinstance(state, dict):
            try:
                exc.__dict__.update(state)
            except AttributeError:
                pass
        elif state is not None:
            raise self._fail("exception state is not a dict")
        self.memo.append(exc)
        return exc


def decode_payload(data: bytes | memoryview) -> object:
    """Decode one codec payload (the bytes after the length header)."""
    view = memoryview(data)
    if len(view) == 0 or view[0] != CODEC_MAGIC:
        raise WireError("payload is not a codec frame (missing magic byte)")
    decoder = _Decoder(view[1:])
    try:
        value = decoder.decode()
    except RecursionError:
        raise WireError("codec frame nesting exceeds the recursion limit") from None
    if decoder.pos != len(decoder.data):
        raise WireError(
            f"corrupt codec frame: {len(decoder.data) - decoder.pos} trailing bytes"
        )
    return value


def decode_frame_payload(payload: bytes) -> object:
    """Decode one frame payload, dispatching codec vs legacy pickle.

    Codec payloads are recognised by their magic byte; anything else is a
    legacy pickle frame, accepted through :class:`RestrictedUnpickler` only
    while the fallback is enabled (``REPRO_WIRE_PICKLE`` != ``0``).
    """
    if not payload:
        raise WireError("empty frame payload")
    if payload[0] == CODEC_MAGIC:
        return decode_payload(payload)
    if not pickle_fallback_allowed():
        raise WireError(
            "legacy pickle frame rejected: the pickle fallback is disabled "
            "(REPRO_WIRE_PICKLE=0)"
        )
    return restricted_loads(payload)


# --------------------------------------------------------------------------
# link statistics
# --------------------------------------------------------------------------


class LinkStats:
    """Byte/frame counters for one connection, safe for concurrent writers.

    The metrics layer observes *traffic shape* (bytes and frame counts per
    link), never payload contents — monitoring stays on the right side of
    the privacy boundary.  A sender thread and the peer-facing reader thread
    update the same instance, so the tiny increments take a lock.
    """

    __slots__ = ("_lock", "bytes_sent", "bytes_received", "frames_sent", "frames_received")

    def __init__(self):
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    def add_sent(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_sent += nbytes
            self.frames_sent += 1

    def add_received(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_received += nbytes
            self.frames_received += 1

    def snapshot(self) -> dict:
        """An immutable, internally consistent copy of the counters."""
        with self._lock:
            return {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "frames_sent": self.frames_sent,
                "frames_received": self.frames_received,
            }


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------


def encode_frame(obj: object) -> bytes:
    """Serialise ``obj`` as one length-prefixed frame.

    The wire codec is tried first; payloads outside its closed type set fall
    back to restricted pickle while the fallback is enabled, and raise
    :class:`WireError` when it is not.
    """
    try:
        data = encode_payload(obj)
    except UnsupportedPayload as exc:
        if not pickle_fallback_allowed():
            raise WireError(
                f"payload not expressible in the wire codec and the pickle "
                f"fallback is disabled: {exc}"
            ) from exc
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    return _HEADER.pack(len(data)) + data


class FrameDecoder:
    """Incremental decoder for a byte stream of length-prefixed frames.

    Feed arbitrary chunks (network reads split frames at arbitrary points);
    :meth:`frames` yields every complete decoded object.  :meth:`eof` must be
    called when the stream ends: a stream that stops mid-frame is truncated
    and raises :class:`WireError` instead of silently dropping the tail.
    """

    def __init__(self):
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[object]:
        """Absorb ``chunk`` and return the objects completed by it."""
        self._buffer.extend(chunk)
        frames = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
            if len(self._buffer) < _HEADER.size + length:
                break
            payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            frames.append(decode_frame_payload(payload))
        return frames

    def eof(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise WireError(
                f"stream truncated mid-frame: {len(self._buffer)} trailing bytes"
            )


def send_frame(sock: socket.socket, obj: object, *, stats: LinkStats | None = None) -> None:
    """Serialise ``obj`` and write it as one length-prefixed frame.

    With ``stats``, the frame's full wire size (header + payload) is counted
    once the write completed.
    """
    data = encode_frame(obj)
    try:
        sock.sendall(data)
    except OSError as exc:
        raise WireError(f"failed to send {len(data)}-byte frame: {exc}") from exc
    if stats is not None:
        stats.add_sent(len(data))


def send_torn_frame(sock: socket.socket, obj: object, fraction: float = 0.6) -> int:
    """Write only a *prefix* of ``obj``'s frame — a deliberately torn frame.

    Used by the fault-injection layer to reproduce what a process dying
    mid-``sendall`` looks like from the other end: the header promises a
    frame the stream can never complete, so the receiver's ``recv_frame``
    fails with a mid-frame :class:`WireError` (never a silent truncation, as
    the framing tests assert).  At least the header plus one payload byte is
    written so the receiver is genuinely *inside* the frame, and never the
    whole frame; a frame too small to satisfy both (payload under two bytes)
    raises :class:`WireError` instead of silently sending a clean prefix.
    Returns the number of bytes written.
    """
    data = encode_frame(obj)
    if len(data) < _HEADER.size + 2:
        raise WireError(
            f"frame of {len(data)} bytes is too small to tear: a torn frame "
            "must include the header, at least one payload byte, and omit at "
            "least one payload byte"
        )
    cut = max(_HEADER.size + 1, int(len(data) * fraction))
    cut = min(cut, len(data) - 1)
    try:
        sock.sendall(data[:cut])
    except OSError as exc:
        raise WireError(f"failed to send torn frame: {exc}") from exc
    return cut


def recv_frame(
    sock: socket.socket,
    *,
    allow_idle_timeout: bool = False,
    stats: LinkStats | None = None,
) -> object:
    """Read one length-prefixed frame and decode it.

    With ``allow_idle_timeout`` a socket timeout that fires *before any byte
    of the frame arrived* is re-raised as :class:`TimeoutError` (the stream
    is merely idle); a timeout mid-frame is still a :class:`WireError`.
    With ``stats``, the frame's full wire size (header + payload) is counted
    once the frame was read completely.
    """
    header = _recv_exact(sock, _HEADER.size, allow_idle_timeout=allow_idle_timeout)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
    payload = _recv_exact(sock, length)
    if stats is not None:
        stats.add_received(_HEADER.size + length)
    return decode_frame_payload(payload)


def _recv_exact(sock: socket.socket, n: int, *, allow_idle_timeout: bool = False) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except TimeoutError:
            if allow_idle_timeout and not buf:
                raise
            raise WireError("connection timed out mid-frame") from None
        except ssl.SSLError as exc:
            raise WireError(f"TLS error while reading frame: {exc}") from exc
        except OSError as exc:
            raise WireError(f"connection error while reading frame: {exc}") from exc
        if not chunk:
            raise WireError("connection closed mid-frame")
        buf.extend(chunk)
    return bytes(buf)


# --------------------------------------------------------------------------
# TLS socket wrapping + authenticated peer identity
# --------------------------------------------------------------------------


class SecureSocket:
    """A full-duplex-safe TLS channel over one blocking TCP socket.

    ``ssl.SSLSocket`` shares a single OpenSSL ``SSL`` object between its
    ``recv`` and ``send`` paths, and OpenSSL forbids driving one connection
    from two threads concurrently.  The mesh does exactly that — one reader
    thread plus (lock-serialised) writer threads per peer socket — and under
    load the shared ``SSLSocket`` state corrupts, killing the link with
    spurious mid-frame EOFs.

    This wrapper keeps the runtime's one-socket-per-peer duplex model by
    separating TLS state from network I/O: an :class:`ssl.SSLObject` over
    memory BIOs holds the TLS machine, and **every** access to it happens
    under one short-held lock that is *never* held across blocking I/O.

    * Readers feed ciphertext from blocking ``recv`` (no lock) into the
      incoming BIO and pull plaintext out (locked, non-blocking).
    * Writers encrypt into the outgoing BIO (locked, non-blocking) and then
      write ciphertext under a separate write lock, so TCP backpressure on
      sends can never stall the reader draining the peer — the deadlock the
      single-lock design would reintroduce.

    The exposed surface is the subset of the socket API the runtime uses:
    ``sendall`` / ``recv`` / ``settimeout`` / ``shutdown`` / ``close`` plus
    ``getpeercert`` for :func:`peer_common_name`.
    """

    _RECV_CHUNK = 1 << 16

    def __init__(
        self,
        sock: socket.socket,
        context: ssl.SSLContext,
        *,
        server_side: bool,
    ):
        self._sock = sock
        self._in = ssl.MemoryBIO()
        self._out = ssl.MemoryBIO()
        self._ssl = context.wrap_bio(self._in, self._out, server_side=server_side)
        #: Serialises all access to the TLS state machine (never held while
        #: blocking on the network).
        self._ssl_lock = threading.Lock()
        #: Serialises ciphertext writes, preserving TLS record order across
        #: concurrent senders.
        self._write_lock = threading.Lock()
        self._eof = False
        self._handshake()

    # -- internals ---------------------------------------------------------------------

    def _flush(self) -> None:
        """Ship any ciphertext the TLS machine queued (ordered, blocking)."""
        with self._ssl_lock:
            data = self._out.read() if self._out.pending else b""
        if data:
            with self._write_lock:
                self._sock.sendall(data)

    def _fill(self) -> None:
        """Blocking read of more ciphertext into the incoming BIO."""
        chunk = self._sock.recv(self._RECV_CHUNK)
        with self._ssl_lock:
            if chunk:
                self._in.write(chunk)
            else:
                self._eof = True
                self._in.write_eof()

    def _handshake(self) -> None:
        while True:
            try:
                with self._ssl_lock:
                    self._ssl.do_handshake()
                self._flush()
                return
            except ssl.SSLWantReadError:
                self._flush()
                self._fill()
                if self._eof:
                    raise ssl.SSLEOFError("EOF during TLS handshake")
            except ssl.SSLWantWriteError:  # pragma: no cover - memory BIOs never fill
                self._flush()

    # -- the socket surface the runtime uses -------------------------------------------

    def recv(self, n: int) -> bytes:
        while True:
            with self._ssl_lock:
                try:
                    data = self._ssl.read(n)
                except ssl.SSLWantReadError:
                    data = None
                except (ssl.SSLZeroReturnError, ssl.SSLEOFError):
                    # Clean close_notify, or a ragged EOF after the stream
                    # died: both look like EOF, exactly as for a plaintext
                    # socket (SSLSocket's suppress_ragged_eofs default).
                    return b""
            if data is not None:
                return data
            # Reading may have queued output (e.g. a TLS 1.3 KeyUpdate
            # response); ship it before blocking for more ciphertext.
            self._flush()
            if self._eof:
                return b""
            self._fill()

    def sendall(self, data) -> None:
        view = memoryview(data)
        if not len(view):
            return
        # The write lock spans encrypt + send so concurrent senders cannot
        # interleave their TLS records out of encryption order.
        with self._write_lock:
            offset = 0
            while offset < len(view):
                with self._ssl_lock:
                    written = self._ssl.write(view[offset:])
                    out = self._out.read()
                self._sock.sendall(out)
                offset += written

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def gettimeout(self):
        return self._sock.gettimeout()

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def getpeercert(self) -> dict | None:
        with self._ssl_lock:
            return self._ssl.getpeercert()


def secure_server_socket(sock: socket.socket, context: ssl.SSLContext) -> SecureSocket:
    """Wrap an *accepted* socket server-side, failing closed on handshake errors.

    The socket's existing timeout bounds the handshake, so a client that
    connects and stalls can never hang the accept loop.
    """
    try:
        return SecureSocket(sock, context, server_side=True)
    except (ssl.SSLError, OSError) as exc:
        try:
            sock.close()
        except OSError:
            pass
        raise WireError(f"TLS server handshake failed: {exc}") from exc


def secure_client_socket(sock: socket.socket, context: ssl.SSLContext) -> SecureSocket:
    """Wrap a *dialled* socket client-side, failing closed on handshake errors."""
    try:
        return SecureSocket(sock, context, server_side=False)
    except (ssl.SSLError, OSError) as exc:
        try:
            sock.close()
        except OSError:
            pass
        raise WireError(f"TLS client handshake failed: {exc}") from exc


def peer_common_name(sock: socket.socket) -> str | None:
    """The CN of the peer's verified certificate, or ``None`` without TLS.

    Both sides of every secured link require a peer certificate
    (``CERT_REQUIRED``), so on a TLS socket this is the identity the session
    CA vouched for — hello verification checks claimed party ids against it.
    """
    if not isinstance(sock, (ssl.SSLSocket, SecureSocket)):
        return None
    cert = sock.getpeercert()
    if not cert:
        return None
    for rdn in cert.get("subject", ()):
        for key, value in rdn:
            if key == "commonName":
                return value
    return None
