"""Length-prefixed pickle framing for the socket runtime.

Every connection of the distributed runtime — coordinator-to-agent control
links and the agent-to-agent mesh — speaks the same trivial protocol: a
4-byte big-endian length header followed by a pickled Python object.  The
payloads never leave the local machine group running the query (parties are
mutually known processes of one deployment), so pickle's convenience
outweighs its trust assumptions here; a production deployment would swap in
msgpack plus TLS, which is exactly why the framing lives in its own module.
"""

from __future__ import annotations

import pickle
import socket
import struct

#: Upper bound on a single frame; a frame larger than this indicates stream
#: corruption (e.g. a desynchronised header), not a legitimate payload.
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")


class WireError(ConnectionError):
    """A connection failed mid-frame or produced a corrupt frame."""


def send_frame(sock: socket.socket, obj: object) -> None:
    """Serialise ``obj`` and write it as one length-prefixed frame."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    try:
        sock.sendall(_HEADER.pack(len(data)) + data)
    except OSError as exc:
        raise WireError(f"failed to send {len(data)}-byte frame: {exc}") from exc


def recv_frame(sock: socket.socket) -> object:
    """Read one length-prefixed frame and unpickle it."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame claims {length} bytes; stream is corrupt")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except OSError as exc:
            raise WireError(f"connection error while reading frame: {exc}") from exc
        if not chunk:
            raise WireError("connection closed mid-frame")
        buf.extend(chunk)
    return bytes(buf)
