"""The persistent query service: long-lived agent pools and query sessions.

The paper's deployment model is *standing* data-owning parties answering a
stream of analyst queries.  The first socket runtime spawned a fresh agent
mesh per query, so spawn + handshake dominated latency; this module keeps
the :class:`~repro.runtime.agent.PartyAgent` processes alive across queries:

* :class:`AgentPool` — the process/socket substrate: spawns one agent OS
  process per party, brokers the mesh handshake **once**, then keeps the
  control links open, routing result/error frames (tagged by query id) from
  per-party receiver threads into per-query futures.  A control link that
  dies marks the pool broken and fails every in-flight query loudly.
* :class:`QuerySession` — the analyst-facing handle: ``submit(plan)`` many
  times (thread-safe, concurrently), per-session compiled-plan caching
  keyed by DAG fingerprint (each distinct plan is pickled and shipped once),
  and a graceful lifecycle (context manager, drain-on-close, optional idle
  timeout after which the agents retire themselves).

Single-query execution (``runtime="sockets"``) is the degenerate case: the
coordinator opens a session, submits once, and closes — so both paths share
one protocol and one set of tests.  ``runtime="service"`` reuses a shared
session per party set via :func:`shared_session`.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
import multiprocessing
import pickle
import secrets
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.config import (
    CompilationConfig,
    GatewayConfig,
    RestartPolicy,
    RetryPolicy,
    TransportSecurity,
)
from repro.runtime.agent import AGENT_MAX_WORKERS, agent_main
from repro.runtime.gateway import DEFAULT_ANALYST, QueryGateway, QueryRejected  # noqa: F401
from repro.runtime.mesh import bind_listener
from repro.runtime.metrics import GatewayMetrics, MetricsServer
from repro.runtime.supervisor import AgentSupervisor
from repro.runtime.transport import TransportError
from repro.runtime.wire import (
    WireError,
    encode_frame,
    peer_common_name,
    recv_frame,
    secure_server_socket,
    send_frame,
)

logger = logging.getLogger("repro.runtime.service")

#: Live agent processes, for leak-hunting test fixtures.
_ACTIVE_PROCESSES: "set[multiprocessing.process.BaseProcess]" = set()

#: Open sessions, for leak-hunting test fixtures and atexit cleanup.
_ACTIVE_SESSIONS: "set[QuerySession]" = set()

#: Errors swallowed on best-effort teardown paths.  Teardown must never raise
#: (there is nobody left to handle it), but silently dropping the exception
#: hides real bugs — so every swallowed error is logged at debug level and
#: counted here, where tests and operators can see it.
_TEARDOWN_ERRORS = 0
_TEARDOWN_LOCK = threading.Lock()


def _count_teardown_error(site: str, exc: BaseException) -> None:
    """Record one swallowed teardown error (debug log + metric)."""
    global _TEARDOWN_ERRORS
    with _TEARDOWN_LOCK:
        _TEARDOWN_ERRORS += 1
    logger.debug("teardown error at %s: %r", site, exc, exc_info=exc)


def teardown_errors() -> int:
    """How many errors best-effort teardown paths have swallowed so far."""
    with _TEARDOWN_LOCK:
        return _TEARDOWN_ERRORS


def active_agent_processes() -> list:
    """Agent processes started by any pool/coordinator that are still alive."""
    return [p for p in list(_ACTIVE_PROCESSES) if p.is_alive()]


def active_sessions() -> list:
    """Sessions opened anywhere in the process that are still open."""
    return [s for s in list(_ACTIVE_SESSIONS) if not s.closed]


class AgentFailure(RuntimeError):
    """An agent process failed without a reconstructable exception.

    Permanent failures raised by the supervision layer (an exhausted restart
    budget, exhausted query retries) carry an ``attempts`` attribute: a list
    of per-attempt records (``party``/``attempt``/``outcome``/``cause`` for
    restarts, ``attempt``/``error`` for query retries) so the caller can see
    the whole failure history, not just the last straw.
    """

    #: Structured per-attempt history; empty for ordinary failures.
    attempts: list = ()


class AgentCrashed(AgentFailure):
    """An agent died mid-query under supervision: the query is *retryable*.

    Queries are pure functions of (plan, inputs, seed), so once the
    supervisor has restarted the crashed agent and re-joined the mesh, a
    replayed query produces byte-identical results.  The session's
    :class:`~repro.core.config.RetryPolicy` layer catches this marker and
    replays automatically; callers without a retry policy may do the same by
    resubmitting after :meth:`AgentPool.wait_recovered`.
    """


class SessionClosed(RuntimeError):
    """The session can no longer accept queries (closed, idle, or broken)."""


def plan_fingerprint(compiled) -> str:
    """A stable fingerprint of a compiled plan, for per-session caching.

    Computed over the plan's pickled bytes: resubmitting the *same* compiled
    object (the intended reuse pattern — compile once, submit many) always
    hits the cache, and two plans with different DAGs can never collide.  A
    plan recompiled from scratch may fingerprint differently — that costs a
    redundant plan shipment, never a wrong cache hit.

    Memoized on the compiled object so the warm path ("submit many") never
    re-pickles the plan just to hash it.
    """
    cached = getattr(compiled, "_plan_fingerprint", None)
    if cached is not None:
        return cached
    fingerprint = hashlib.sha256(
        pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()
    try:
        compiled._plan_fingerprint = fingerprint
    except AttributeError:
        pass  # slotted/frozen plan object: hash again next time
    return fingerprint


def merge_payloads(compiled, parties: list[str], payloads: dict[str, dict]):
    """Merge per-agent result payloads into one QueryResult.

    Used by every socket-runtime path: per-node durations max-merge (local
    nodes are reported by their executing agent, joint nodes identically by
    every agent), each output comes from the first recipient that
    materialised it, per-party leakage concatenates while joint (replicated)
    events are taken once from the lead agent.
    """
    from repro.core.dispatch import QueryResult
    from repro.hybrid.stp import LeakageReport
    from repro.runtime.executor import completion_seconds

    lead = parties[0]

    durations: dict[int, float] = {}
    for payload in payloads.values():
        for node_id, seconds in payload["node_durations"].items():
            durations[node_id] = max(durations.get(node_id, 0.0), seconds)

    outputs: dict[str, object] = {}
    for node in compiled.dag.outputs():
        name = node.out_rel.name
        for party in [*node.recipients, *parties]:
            payload = payloads.get(party)
            if payload is not None and name in payload["outputs"]:
                outputs[name] = payload["outputs"][name]
                break

    leakage = LeakageReport()
    for party in parties:
        leakage.events.extend(payloads[party]["leakage"].events)
    leakage.events.extend(payloads[lead]["joint_leakage"].events)

    backend_seconds: dict[str, float] = {}
    for party in parties:
        mine = payloads[party]["backend_seconds"]
        key = f"local:{party}"
        if key in mine:
            backend_seconds[key] = mine[key]
    for key, value in payloads[lead]["backend_seconds"].items():
        if key.startswith("mpc:") or key not in backend_seconds:
            backend_seconds.setdefault(key, value)

    return QueryResult(
        outputs=outputs,
        simulated_seconds=completion_seconds(compiled.dag, durations),
        wall_seconds=0.0,  # stamped by the caller
        leakage=leakage,
        backend_seconds=backend_seconds,
        mpc_profile=payloads[lead]["mpc_profile"],
        runtime="sockets",
        isolation={
            party: payloads[party].get("isolation", {}) for party in parties
        },
    )


def _query_completion_counters(payloads: dict[str, dict]) -> dict[str, int]:
    """Per-query counter increments derived from the agents' payloads.

    ``rows_processed`` counts the rows of every distinct output relation
    (each output is counted once even when several parties received it);
    ``mpc_rounds`` is the joint protocol's *wire* round count — the number
    of real barrier-delimited mesh exchanges, which the batched share-vector
    protocols keep independent of relation size.  Shapes and counts only,
    never values: the counters stay on the right side of the privacy
    boundary.
    """
    rows: dict[str, int] = {}
    mpc_rounds = 0
    for payload in payloads.values():
        for name, table in payload.get("outputs", {}).items():
            rows.setdefault(name, table.num_rows)
        profile = payload.get("mpc_profile") or {}
        mpc_rounds = max(
            mpc_rounds, int(profile.get("wire_rounds", profile.get("rounds", 0)))
        )
    return {"rows_processed": sum(rows.values()), "mpc_rounds": mpc_rounds}


@dataclass
class _PendingQuery:
    """Coordinator-side state of one in-flight query."""

    remaining: set[str]
    payloads: dict[str, dict] = field(default_factory=dict)
    errors: list[BaseException] = field(default_factory=list)
    future: Future = field(default_factory=Future)

    def finish(self) -> None:
        if self.future.done():
            return
        if self.errors:
            # Prefer the root cause: an agent that hit a real error over one
            # that merely saw the failed peer's abort or timed out on it.
            primary = next(
                (e for e in self.errors if not isinstance(e, (TransportError, AgentFailure))),
                self.errors[0],
            )
            self.future.set_exception(primary)
        else:
            self.future.set_result(self.payloads)


class AgentPool:
    """One long-lived agent process per party, serving many queries.

    The pool owns the processes, control sockets and receiver threads; the
    per-query bookkeeping hands each submission a :class:`Future` resolving
    to the per-party payload dict (or the query's primary error).
    """

    def __init__(
        self,
        parties: list[str],
        *,
        inputs: dict | None = None,
        timeout: float = 60.0,
        idle_timeout: float | None = None,
        start_method: str | None = None,
        max_workers: int = AGENT_MAX_WORKERS,
        on_retire=None,
        restart: RestartPolicy | None = None,
        faults=None,
        metrics: GatewayMetrics | None = None,
        on_restart=None,
        bind_host: str = "127.0.0.1",
        security: TransportSecurity | None = None,
    ):
        self.parties = list(parties)
        self.timeout = timeout
        #: Host the control listener binds and the agents advertise their
        #: mesh endpoints on (loopback unless the session asks otherwise).
        self.bind_host = bind_host
        #: Mutual-TLS material for every control and mesh link (``None``
        #: keeps the plaintext loopback behaviour).
        self.security = security
        if security is not None:
            security.validate(list(parties) + [security.coordinator_name])
        #: Per-session secret every hello (mesh and rejoin alike) must echo;
        #: generated fresh per pool, shipped to agents inside the session
        #: bundle over the (authenticated) control link.
        self._nonce = secrets.token_hex(16)
        self.idle_timeout = idle_timeout
        self.max_workers = max_workers
        self._on_retire = on_retire
        self._on_restart = on_restart
        self._retired = False
        self._lock = threading.Lock()
        self._pending: dict[int, _PendingQuery] = {}
        self._send_locks: dict[str, threading.Lock] = {}
        self._closed = False
        self._broken: BaseException | None = None
        self._closing_reason: str | None = None
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self._connections: dict[str, socket.socket] = {}
        self._receivers: list[threading.Thread] = []
        #: Latest per-party wire-traffic snapshot (reported by each agent on
        #: every query completion), for the session's bytes-on-wire metrics.
        self._wire_traffic: dict[str, dict] = {}
        #: Standing state the supervisor re-ships to a replacement agent.
        self._inputs = dict(inputs or {})
        self._faults = faults
        #: Each agent's advertised mesh endpoint ``(host, port)``, kept
        #: current across restarts so a replacement can be told where the
        #: survivors listen.  Opaque to the pool: it only relays them.
        self._ports: dict[str, tuple[str, int]] = {}
        #: Parties currently dead-and-being-restarted.  While non-empty the
        #: pool refuses submissions with the retryable :class:`AgentCrashed`.
        self._recovering: set[str] = set()
        self._healthy = threading.Event()
        self._healthy.set()
        #: Highest query id ever framed out, used as the released-id
        #: watermark a replacement agent starts its mesh from.
        self._last_query_id = 0
        self._supervisor: AgentSupervisor | None = None

        self._ctx = multiprocessing.get_context(start_method)
        listener = bind_listener(timeout, bind_host)
        port = listener.getsockname()[1]
        try:
            for party in self.parties:
                self._processes[party] = self._spawn_agent(party, port)

            self._connections = self._accept_agents(listener)
            self._send_locks = {p: threading.Lock() for p in self._connections}
            for party, sock in self._connections.items():
                send_frame(sock, ("session", {
                    "parties": self.parties,
                    "timeout": timeout,
                    "idle_timeout": idle_timeout,
                    "max_workers": max_workers,
                    "inputs": self._inputs.get(party, {}),
                    "faults": faults.for_party(party) if faults else None,
                    "nonce": self._nonce,
                }))

            for party, sock in self._connections.items():
                self._ports[party] = self._expect(party, sock, "ports")
            for sock in self._connections.values():
                send_frame(sock, ("peers", dict(self._ports)))
            # Wait for the mesh to be fully established at every agent, so
            # an open pool is a *working* pool (handshake bugs fail here,
            # not inside the first submit).
            for party, sock in self._connections.items():
                self._expect(party, sock, "ready")
        except BaseException:
            self._teardown()
            raise
        finally:
            try:
                listener.close()
            except OSError:
                pass

        for party, sock in self._connections.items():
            thread = threading.Thread(
                target=self._receive_loop, args=(party, sock), daemon=True,
                name=f"pool-recv-{party}",
            )
            thread.start()
            self._receivers.append(thread)
        # The supervisor comes up last: its heartbeat/restart machinery must
        # only ever observe a fully established pool.
        if restart is not None:
            self._supervisor = AgentSupervisor(self, restart, metrics=metrics)

    def _spawn_agent(self, party: str, port: int):
        proc = self._ctx.Process(
            target=agent_main,
            args=(party, self.bind_host, port, self.timeout, self.bind_host,
                  self.security),
            daemon=True,
            name=f"conclave-agent-{party}",
        )
        proc.start()
        _ACTIVE_PROCESSES.add(proc)
        return proc

    # -- handshake ---------------------------------------------------------------------

    def _accept_agents(self, listener: socket.socket) -> dict[str, socket.socket]:
        server_context = (
            None if self.security is None
            else self.security.server_context(self.security.coordinator_name)
        )
        connections: dict[str, socket.socket] = {}
        for _ in self.parties:
            try:
                sock, _addr = listener.accept()
            except (socket.timeout, OSError) as exc:
                raise AgentFailure(
                    f"timed out waiting for agents to connect; got {sorted(connections)} "
                    f"of {self.parties}"
                ) from exc
            sock.settimeout(self.timeout + 10)
            if server_context is not None:
                try:
                    sock = secure_server_socket(sock, server_context)
                except WireError as exc:
                    raise AgentFailure(f"agent control handshake failed: {exc}") from exc
            tag, party = recv_frame(sock)
            if tag != "hello" or party not in self.parties or party in connections:
                raise AgentFailure(f"malformed agent hello: {(tag, party)!r}")
            cn = peer_common_name(sock)
            if cn is not None and cn != party:
                raise AgentFailure(
                    f"agent hello claims party {party!r} but its TLS certificate "
                    f"authenticates {cn!r}"
                )
            connections[party] = sock
        return connections

    def _expect(self, party: str, sock: socket.socket, expected_tag: str):
        frame = recv_frame(sock)
        tag, *rest = frame
        if tag == "fatal":
            raise _agent_error(party, rest[0], rest[1])
        if tag != expected_tag:
            raise AgentFailure(f"agent {party!r} sent {tag!r}, expected {expected_tag!r}")
        return rest[0]

    # -- the query path ----------------------------------------------------------------

    def submit(
        self,
        query_id: int,
        fingerprint: str,
        compiled_to_ship,
        config,
        seed: int,
        inputs: dict | None,
    ) -> Future:
        """Frame one query out to every agent; returns the payload future.

        ``compiled_to_ship`` is the compiled plan on the first submission of
        a fingerprint and ``None`` afterwards (the agents serve it from
        their plan cache).
        """
        with self._lock:
            if self._closed or self._broken is not None:
                raise SessionClosed(self._closed_message())
            if self._recovering:
                raise AgentCrashed(
                    f"agents {sorted(self._recovering)} are being restarted; "
                    "the query was not dispatched — retry once the pool recovers"
                )
            entry = _PendingQuery(remaining=set(self.parties))
            self._pending[query_id] = entry
            self._last_query_id = max(self._last_query_id, query_id)
        # Encode every party's frame *before* sending any: a serialization
        # failure (unpicklable inputs, frame over the cap) then fails only
        # this query — cleanly, with nothing half-shipped — and the session
        # keeps serving.  After successful encoding only socket errors
        # remain, and those mean the party is gone.
        try:
            frames = {
                party: encode_frame(("query", {
                    "query_id": query_id,
                    "fingerprint": fingerprint,
                    "compiled": compiled_to_ship,
                    "config": config,
                    "seed": seed,
                    # Per-party override: parties not named keep their
                    # standing session inputs (None -> agent falls back).
                    "inputs": None if inputs is None else inputs.get(party),
                }))
                for party in self.parties
            }
        except Exception:
            with self._lock:
                self._pending.pop(query_id, None)
            raise
        for party, data in frames.items():
            try:
                sock = self._connections[party]
                with self._send_locks[party]:
                    sock.sendall(data)
            except OSError as exc:
                # The receiver loop may race us to the diagnosis; either way
                # the entry's future is failed before we return.
                self._party_died(party, exc, sock)
                break
        return entry.future

    def _receive_loop(self, party: str, sock: socket.socket) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(sock, allow_idle_timeout=True)
                except TimeoutError:
                    continue  # idle stream; in-flight timeouts live in the mesh
                tag = frame[0]
                if tag == "result":
                    self._resolve(party, frame[1], payload=frame[2])
                elif tag == "error":
                    self._resolve(party, frame[1], error=_agent_error(party, frame[2], frame[3]))
                elif tag == "fatal":
                    raise _agent_error(party, frame[1], frame[2])
                elif tag == "closing":
                    self._mark_closing(party, frame[1])
                    return
                elif tag == "pong":
                    if self._supervisor is not None:
                        self._supervisor.note_pong(party, frame[1])
                elif tag == "rejoined":
                    if self._supervisor is not None:
                        self._supervisor.note_rejoined(party, frame[1])
                else:
                    raise AgentFailure(f"agent {party!r} sent unknown frame {tag!r}")
        except BaseException as exc:  # noqa: BLE001 - control link is gone
            self._party_died(party, exc, sock)

    def _resolve(self, party: str, query_id: int, payload=None, error=None) -> None:
        with self._lock:
            if payload is not None and "wire_traffic" in payload:
                self._wire_traffic[party] = payload["wire_traffic"]
            entry = self._pending.get(query_id)
            if entry is None:
                return  # query already failed wholesale (e.g. a peer died)
            if error is not None:
                entry.errors.append(error)
            else:
                entry.payloads[party] = payload
            entry.remaining.discard(party)
            done = not entry.remaining
            if done:
                del self._pending[query_id]
        if done:
            entry.finish()

    def _party_died(
        self, party: str, exc: BaseException, sock: socket.socket | None = None
    ) -> None:
        supervisor = self._supervisor
        with self._lock:
            # Generation guard: a stale reader (or sender) of a control link
            # that has since been *replaced* must not re-kill the healthy
            # replacement.
            if sock is not None and self._connections.get(party) is not sock:
                return
            supervised = (
                supervisor is not None
                and not self._closed
                and self._broken is None
                and self._closing_reason is None
                and not self._retired
            )
            if supervised:
                first_report = party not in self._recovering
                self._recovering.add(party)
                self._healthy.clear()
            elif self._broken is None and not self._closed:
                self._broken = exc
            # Whatever the pool state, leftover in-flight queries must fail
            # loudly — an unresolved future is a deadlocked caller.
            entries = list(self._pending.values())
            self._pending.clear()
        if supervised:
            # The crash is recoverable: fail in-flight queries with the
            # *retryable* marker and hand the party to the supervisor — the
            # pool stays open and the mesh survivors stay up.
            if entries:
                crash = AgentCrashed(
                    f"agent {party!r} crashed mid-query; a restart is under way "
                    f"and the query is safe to replay: {exc}"
                )
                crash.__cause__ = exc if isinstance(exc, Exception) else None
                for entry in entries:
                    if not entry.future.done():
                        entry.future.set_exception(crash)
            if first_report:
                supervisor.notify_death(party, exc)
            return
        if entries:
            failure = AgentFailure(
                f"agent {party!r} died mid-session; all in-flight queries failed: {exc}"
            )
            failure.__cause__ = exc if isinstance(exc, Exception) else None
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(failure)
        # Retire even when nothing was in flight: a pool broken while idle
        # must still release its surviving processes, sockets and registry
        # entries without waiting for an explicit close().
        self._retire()

    def _mark_closing(self, party: str, reason: str) -> None:
        with self._lock:
            self._closing_reason = reason
            if reason == "shutdown" or self._closed:
                return
            # Idle timeout: the agents retired themselves; the pool can no
            # longer serve queries.  Nothing was in flight (agents only
            # idle out with an empty in-flight set).
            entries = list(self._pending.values())
            self._pending.clear()
            self._broken = SessionClosed(f"agents closed the session: {reason}")
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(AgentFailure(
                    f"agent {party!r} closed ({reason}) with queries in flight"
                ))
        if reason != "shutdown":
            # Idle retirement: the agents are exiting on their own and the
            # user may never call close() on the abandoned session — release
            # the coordinator-side sockets/processes/registry entries now.
            self._retire()

    def _closed_message(self) -> str:
        if self._broken is not None:
            return f"session is no longer usable: {self._broken}"
        return "session is closed"

    # -- supervision hooks (called by AgentSupervisor) ---------------------------------

    def restart_party(self, party: str, epoch: int, supervisor) -> None:
        """Run the full recovery protocol for a dead ``party``.

        Called from the supervisor's restart worker (strictly serialized).
        Raises on any failure — the supervisor treats that as a burned
        restart-budget slot and re-queues the party.
        """
        with self._lock:
            if self._closed or self._broken is not None or self._retired:
                raise SessionClosed(self._closed_message())
            survivors = [
                p for p in self.parties if p != party and p not in self._recovering
            ]
        listener = bind_listener(self.timeout, self.bind_host)
        proc = None
        sock = None
        try:
            proc = self._spawn_agent(party, listener.getsockname()[1])
            try:
                sock, _addr = listener.accept()
            except (socket.timeout, OSError) as exc:
                raise AgentFailure(
                    f"replacement agent {party!r} never connected back"
                ) from exc
            sock.settimeout(self.timeout + 10)
            if self.security is not None:
                sock = secure_server_socket(
                    sock, self.security.server_context(self.security.coordinator_name)
                )
            tag, hello_party = recv_frame(sock)
            if tag != "hello" or hello_party != party:
                raise AgentFailure(
                    f"malformed replacement hello: {(tag, hello_party)!r}"
                )
            cn = peer_common_name(sock)
            if cn is not None and cn != party:
                raise AgentFailure(
                    f"replacement hello claims party {party!r} but its TLS "
                    f"certificate authenticates {cn!r}"
                )
            send_frame(sock, ("session", {
                "parties": self.parties,
                "timeout": self.timeout,
                "idle_timeout": self.idle_timeout,
                "max_workers": self.max_workers,
                "inputs": self._inputs.get(party, {}),
                "faults": self._faults.for_party(party) if self._faults else None,
                "rejoin": True,
                "epoch": epoch,
                "nonce": self._nonce,
                # Ids at or below this are finished (or failed-and-retried
                # under a *new* id): the replacement's mesh drops their late
                # frames instead of queueing them forever.
                "released_watermark": self._last_query_id,
            }))
            mesh_port = self._expect(party, sock, "ports")
            # Park every survivor in its rejoin accept *before* handing the
            # replacement the peer ports — the dial can then never race the
            # accept.
            for peer in survivors:
                with self._send_locks[peer]:
                    send_frame(self._connections[peer], ("rejoin", {
                        "party": party, "epoch": epoch, "timeout": self.timeout,
                    }))
            send_frame(sock, ("peers", {p: self._ports[p] for p in survivors}))
            self._expect(party, sock, "ready")
            supervisor.await_rejoined(survivors, epoch, self.timeout)
        except BaseException:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
            if proc is not None:
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
                _ACTIVE_PROCESSES.discard(proc)
            raise
        finally:
            try:
                listener.close()
            except OSError:
                pass
        self._install_replacement(party, proc, sock, mesh_port)

    def _install_replacement(
        self, party: str, proc, sock: socket.socket, mesh_port: tuple[str, int]
    ) -> None:
        with self._lock:
            old_proc = self._processes.get(party)
            old_sock = self._connections.get(party)
            self._processes[party] = proc
            self._connections[party] = sock
            self._send_locks[party] = threading.Lock()
            self._ports[party] = mesh_port
            self._recovering.discard(party)
            recovered = not self._recovering
        if old_proc is not None and old_proc is not proc:
            _ACTIVE_PROCESSES.discard(old_proc)
        if old_sock is not None and old_sock is not sock:
            try:
                old_sock.close()
            except OSError:
                pass
        thread = threading.Thread(
            target=self._receive_loop, args=(party, sock), daemon=True,
            name=f"pool-recv-{party}",
        )
        thread.start()
        self._receivers.append(thread)
        if self._on_restart is not None:
            self._on_restart(party)
        if recovered:
            self._healthy.set()

    def fail_permanently(self, party: str, history: list, cause: BaseException) -> None:
        """Escalation target for an exhausted restart budget: break the pool
        with a structured, history-carrying :class:`AgentFailure`."""
        restarts = len([r for r in history if r.get("party") == party])
        failure = AgentFailure(
            f"agent {party!r} exhausted its restart budget after {restarts} "
            f"attempt(s); the session is permanently broken: {cause}"
        )
        failure.attempts = [dict(r) for r in history]
        failure.__cause__ = cause if isinstance(cause, Exception) else None
        with self._lock:
            if self._broken is None and not self._closed:
                self._broken = failure
            entries = list(self._pending.values())
            self._pending.clear()
            self._recovering.discard(party)
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(failure)
        self._healthy.set()  # wake retry waiters; they observe broken and give up
        self._retire()

    def wait_recovered(self, timeout: float) -> bool:
        """Block until no party is mid-restart; False on timeout/broken pool."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if self._closed or self._broken is not None:
                    return False
                if not self._recovering:
                    return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            self._healthy.wait(timeout=min(remaining, 0.25))

    def live_parties(self) -> list[str]:
        """Parties with a (believed-)healthy control link right now."""
        with self._lock:
            if self._closed or self._broken is not None or self._retired:
                return []
            return [p for p in self.parties if p not in self._recovering]

    def send_ping(self, party: str, seq: int) -> bool:
        """Heartbeat one agent; False when the link is unusable (the
        receiver-side EOF path owns the actual death diagnosis)."""
        with self._lock:
            if self._closed or self._broken is not None or party in self._recovering:
                return False
            sock = self._connections.get(party)
            lock = self._send_locks.get(party)
        if sock is None or lock is None:
            return False
        try:
            with lock:
                send_frame(sock, ("ping", seq))
            return True
        except (WireError, OSError):
            return False

    def kill_party(self, party: str, reason: str = "") -> None:
        """Hard-kill one agent process (heartbeat escalation); the control
        link EOF then drives the ordinary crash/restart path."""
        proc = self._processes.get(party)
        if proc is not None and proc.is_alive():
            proc.kill()

    def _retire(self) -> None:
        """Release OS resources of a pool that can no longer serve queries.

        Runs once, from whichever thread first diagnoses the pool as broken
        (crash) or retired (idle timeout): closes the control sockets (which
        also unblocks sibling receiver threads and makes surviving agents
        exit on control-link EOF), reaps the processes, and notifies the
        owning session so registries do not pin an abandoned session.
        """
        with self._lock:
            if self._retired:
                return
            self._retired = True
        if self._supervisor is not None:
            self._supervisor.stop()
        for sock in self._connections.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._teardown(grace=2.0)
        if self._on_retire is not None:
            self._on_retire()

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> BaseException | None:
        return self._broken

    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def wire_traffic(self) -> dict[str, dict]:
        """Latest per-party mesh traffic: ``{party: {peer: {bytes_sent, ...}}}``.

        Each party's entry is the cumulative snapshot its agent reported
        with its most recent query result (deep-copied: safe to hand out).
        """
        with self._lock:
            return {
                party: {peer: dict(stats) for peer, stats in traffic.items()}
                for party, traffic in self._wire_traffic.items()
            }

    def close(self, *, drain: bool = True) -> None:
        """Shut the pool down; with ``drain``, in-flight queries finish first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [e.future for e in self._pending.values()]
            broken = self._broken is not None
        if self._supervisor is not None:
            # No restarts during shutdown; also unblocks retry waiters.
            self._supervisor.stop()
            self._healthy.set()
        if drain and not broken:
            for future in pending:
                try:
                    future.exception(timeout=self.timeout)
                except Exception as exc:  # noqa: BLE001 - drain best-effort; teardown follows
                    _count_teardown_error("AgentPool.close drain", exc)
        if not broken:
            for party, sock in self._connections.items():
                try:
                    with self._send_locks[party]:
                        send_frame(sock, ("shutdown", None))
                except (WireError, OSError):
                    pass
            # Receivers exit when their agent confirms ("closing", "shutdown").
            for thread in self._receivers:
                thread.join(timeout=self.timeout)
        # Unblock any receiver still parked in recv (e.g. the surviving
        # parties of a broken pool): shutdown() interrupts a blocked read
        # (plain close() would not), then the socket can be closed.
        for sock in self._connections.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in self._receivers:
            thread.join(timeout=5)
        # Agents that confirmed shutdown exit on their own; survivors of a
        # broken pool never will, so skip the grace period and terminate.
        self._teardown(grace=0.0 if broken else 5.0)

    def _teardown(self, grace: float = 0.0) -> None:
        for sock in self._connections.values():
            try:
                sock.close()
            except OSError:
                pass
        for proc in self._processes.values():
            if grace:
                proc.join(timeout=grace)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
            _ACTIVE_PROCESSES.discard(proc)


class PendingResult:
    """Handle for one submitted query; ``result()`` blocks and merges."""

    def __init__(self, session: "QuerySession", compiled, future: Future, started: float):
        self._session = session
        self._compiled = compiled
        self._future = future
        self._started = started

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None):
        """The merged :class:`~repro.core.dispatch.QueryResult` (blocking).

        A ``timeout`` bounds the wait: expiry raises :class:`AgentFailure`
        (the query may still be running; the session stays usable).
        """
        try:
            payloads = self._future.result(timeout)
        except TimeoutError:
            raise AgentFailure(
                f"no result within {timeout:.0f}s; the agents may be wedged "
                "(mesh-level timeouts surface blocked exchanges, but purely "
                "local agent work is unbounded)"
            ) from None
        merged = merge_payloads(self._compiled, self._session.parties, payloads)
        merged.wall_seconds = time.perf_counter() - self._started
        merged.runtime = self._session.runtime_label
        return merged


class QuerySession:
    """A standing mesh of party agents serving a stream of queries.

    Open once (agents spawn, mesh connects), ``submit`` many times — from
    any thread, concurrently — and close explicitly or via ``with``.  Plans
    are cached per session by DAG fingerprint, so resubmitting the same
    compiled plan ships only its fingerprint.
    """

    def __init__(
        self,
        parties: list[str],
        inputs: dict | None = None,
        config: CompilationConfig | None = None,
        seed: int = 0,
        *,
        timeout: float = 60.0,
        idle_timeout: float | None = None,
        start_method: str | None = None,
        runtime_label: str = "service",
        max_workers: int = AGENT_MAX_WORKERS,
        gateway: GatewayConfig | None = None,
        restart: RestartPolicy | None = None,
        retry: RetryPolicy | None = None,
        faults=None,
        security: TransportSecurity | None = None,
    ):
        if not isinstance(max_workers, int) or isinstance(max_workers, bool) or max_workers < 1:
            raise ValueError(f"max_workers must be an int >= 1, got {max_workers!r}")
        self.parties = list(parties)
        self.config = config or CompilationConfig()
        self.seed = seed
        self.runtime_label = runtime_label
        self._retry = retry.validate() if retry is not None else None
        if faults is not None:
            faults.validate()
        self._submit_lock = threading.Lock()
        # Next query id, advanced only on successful dispatch (under the
        # submit lock) so a failed submission leaves no id gap — the mesh's
        # released-id watermark relies on ids being contiguous.
        self._next_qid = 1
        self._shipped_fingerprints: set[str] = set()
        self._metrics = GatewayMetrics()
        self._metrics_server: MetricsServer | None = None
        # The gateway fronts the pool: it must exist before the pool so the
        # retire callback (which may fire from a receiver thread the moment
        # the pool is up) can always close it.
        self._gateway = QueryGateway(
            gateway,
            max_in_flight_default=max_workers,
            metrics=self._metrics,
            closed_error=SessionClosed,
            completion_counters=_query_completion_counters,
        )
        self._pool = AgentPool(
            self.parties,
            inputs=inputs,
            timeout=timeout,
            idle_timeout=idle_timeout,
            start_method=start_method,
            max_workers=max_workers,
            on_retire=self._pool_retired,
            restart=restart,
            faults=faults,
            metrics=self._metrics,
            on_restart=self._party_restarted,
            bind_host=self.config.bind_host,
            security=security,
        )
        self._metrics.set_wire_provider(self._pool.wire_traffic)
        _ACTIVE_SESSIONS.add(self)
        if self._pool._retired:  # lost the race against an immediate retire
            _ACTIVE_SESSIONS.discard(self)

    def _pool_retired(self) -> None:
        """Pool retired (broken or idle): fail queued queries, drop registries."""
        _ACTIVE_SESSIONS.discard(self)
        pool = getattr(self, "_pool", None)
        broken = pool.broken if pool is not None else None
        self._gateway.close(broken if isinstance(broken, Exception) else None)

    def _party_restarted(self, party: str) -> None:
        """A replacement agent joined: its plan cache is empty, so every plan
        must ship again on next use (re-shipping to survivors is harmless —
        their caches are simply overwritten with identical plans)."""
        with self._submit_lock:
            self._shipped_fingerprints.clear()

    # -- submission --------------------------------------------------------------------

    def submit_async(
        self,
        query,
        inputs: dict | None = None,
        seed: int | None = None,
        config: CompilationConfig | None = None,
        *,
        analyst: str = DEFAULT_ANALYST,
    ) -> PendingResult:
        """Admit one query through the gateway; returns immediately.

        ``query`` is a compiled plan (preferred — compile once, submit many)
        or anything :func:`repro.core.compiler.compile_query` accepts.
        ``inputs`` optionally overrides the session's standing inputs for
        this query only (per party; parties not named keep their standing
        inputs).  ``seed``/``config`` default to the session's.  ``analyst``
        names the submitting principal for admission control and fair
        scheduling; queries of unnamed analysts share one default principal.

        Raises :class:`~repro.runtime.gateway.QueryRejected` when the
        session's :class:`~repro.core.config.GatewayConfig` queue limits are
        exceeded — the query was shed before reaching the agents and the
        session stays fully usable.
        """
        from repro.core.compiler import CompiledQuery, compile_query

        config = config or self.config
        compiled = query if isinstance(query, CompiledQuery) else compile_query(query, config)
        fingerprint = plan_fingerprint(compiled)
        started = time.perf_counter()
        query_seed = self.seed if seed is None else seed
        future = self._gateway.submit(
            analyst,
            lambda: self._dispatch_query(compiled, fingerprint, config, query_seed, inputs),
        )
        return PendingResult(self, compiled, future, started)

    def _dispatch_query(
        self, compiled, fingerprint: str, config, seed: int, inputs: dict | None
    ) -> Future:
        """Frame one admitted query out to the agents (gateway dispatch hook).

        Without a :class:`~repro.core.config.RetryPolicy` this is one shot:
        the pool future is handed to the gateway directly.  With one, the
        gateway gets an *outer* future spanning up to ``max_attempts``
        replays of infrastructure failures (agent crash, transport error) —
        so the gateway's in-flight slot, execute-latency observation and
        completed/failed counters all cover the whole retried query, and a
        recovered crash is invisible to the analyst apart from latency.
        """
        inner = self._dispatch_once(compiled, fingerprint, config, seed, inputs)
        retry = self._retry
        if retry is None or retry.max_attempts <= 1:
            return inner
        outer: Future = Future()
        history: list[dict] = []

        def on_first_attempt(finished: Future) -> None:
            exc = finished.exception()
            if exc is None:
                outer.set_result(finished.result())
                return
            if not self._retryable(exc):
                outer.set_exception(exc)
                return
            history.append({"attempt": 1, "error": repr(exc)})
            # Retries run on a dedicated thread: this callback fires on a
            # pool receiver thread, which must never block on backoff or on
            # the pool recovering (it may *be* the thread driving recovery
            # bookkeeping).
            threading.Thread(
                target=self._retry_query, daemon=True, name="query-retry",
                args=(outer, history, compiled, fingerprint, config, seed, inputs, exc),
            ).start()

        inner.add_done_callback(on_first_attempt)
        return outer

    def _retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, AgentCrashed):
            return True
        return bool(
            self._retry is not None
            and self._retry.retry_transport_errors
            and isinstance(exc, TransportError)
        )

    def _retry_query(
        self, outer: Future, history: list, compiled, fingerprint, config, seed, inputs,
        last_exc: BaseException,
    ) -> None:
        retry = self._retry
        attempt = 2
        backoff = retry.backoff_seconds
        while True:
            # A crash retry is only worth dispatching on a recovered pool;
            # wait_recovered also notices a permanently broken pool early.
            if not self._pool.wait_recovered(self._pool.timeout):
                broken = self._pool.broken
                if broken is not None:
                    last_exc = broken
                break
            if backoff > 0:
                time.sleep(backoff)
            backoff = min(backoff * retry.backoff_multiplier, retry.max_backoff_seconds)
            self._metrics.inc("queries_retried")
            try:
                inner = self._dispatch_once(compiled, fingerprint, config, seed, inputs)
                exc = inner.exception(timeout=self._pool.timeout * 2)
            except BaseException as dispatch_exc:  # noqa: BLE001 - recorded + classified below
                exc = dispatch_exc
            if exc is None:
                outer.set_result(inner.result())
                return
            history.append({"attempt": attempt, "error": repr(exc)})
            last_exc = exc
            if not self._retryable(exc):
                outer.set_exception(exc)
                return
            if attempt >= retry.max_attempts:
                break
            attempt += 1
        self._metrics.inc("retries_exhausted")
        failure = AgentFailure(
            f"query failed after {len(history)} attempt(s) "
            f"(RetryPolicy.max_attempts={retry.max_attempts}); giving up: {last_exc}"
        )
        failure.attempts = [dict(r) for r in history]
        # A permanently broken pool carries the supervisor's restart history;
        # surface it on the failure the caller actually catches, not only on
        # the chained cause.
        supervisor_history = getattr(last_exc, "attempts", None)
        if supervisor_history:
            failure.attempts.extend(dict(r) for r in supervisor_history)
        failure.__cause__ = last_exc if isinstance(last_exc, Exception) else None
        outer.set_exception(failure)

    def _dispatch_once(
        self, compiled, fingerprint: str, config, seed: int, inputs: dict | None
    ) -> Future:
        """Frame one query attempt out to the agents.

        One lock around fingerprint bookkeeping *and* frame dispatch: the
        control links are FIFO per party, so holding the lock guarantees the
        plan-bearing frame reaches every agent before any frame that
        references the plan by fingerprint alone.
        """
        with self._submit_lock:
            ship = fingerprint not in self._shipped_fingerprints
            query_id = self._next_qid
            future = self._pool.submit(
                query_id,
                fingerprint,
                compiled if ship else None,
                config,
                seed,
                inputs,
            )
            # Only now is the id consumed: a submit that raised (e.g. its
            # frame failed to encode) shipped nothing, so the id is reused.
            self._next_qid += 1
            self._shipped_fingerprints.add(fingerprint)
            # One atomic multi-increment: any stats snapshot satisfies
            # plan_cache_hits + plan_cache_misses == queries.
            self._metrics.inc_many({
                "queries": 1,
                "plan_cache_misses" if ship else "plan_cache_hits": 1,
            })
        return future

    def submit(
        self,
        query,
        inputs: dict | None = None,
        seed: int | None = None,
        config: CompilationConfig | None = None,
        timeout: float | None = None,
        *,
        analyst: str = DEFAULT_ANALYST,
        retries: int = 0,
    ):
        """Execute one query on the standing agents and block for its result.

        ``retries`` bounds how many times a submission *shed by the gateway*
        (:class:`~repro.runtime.gateway.QueryRejected`) is automatically
        resubmitted, honouring each rejection's ``retry_after_seconds`` hint
        before trying again.  The default 0 re-raises the first rejection,
        preserving the explicit shed-and-retry contract for callers that
        implement their own backoff.
        """
        rejections = 0
        while True:
            try:
                return self.submit_async(
                    query, inputs=inputs, seed=seed, config=config, analyst=analyst
                ).result(timeout)
            except QueryRejected as exc:
                if rejections >= retries:
                    raise
                rejections += 1
                time.sleep(exc.retry_after_seconds)

    # -- observability -----------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """An immutable snapshot of the session's metrics (plain dicts).

        Every read returns a fresh, internally consistent copy — mutating it
        never touches live state, and ``plan_cache_hits + plan_cache_misses
        == queries`` holds in any snapshot, even one taken concurrently with
        submissions.  Beyond the legacy counters it carries the gateway
        counters/gauges, latency summaries (queue-wait, execute, end-to-end)
        and per-party bytes-on-wire.
        """
        snapshot = self._metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        return {
            "queries": counters.get("queries", 0),
            "plan_cache_hits": counters.get("plan_cache_hits", 0),
            "plan_cache_misses": counters.get("plan_cache_misses", 0),
            "queries_submitted": counters.get("queries_submitted", 0),
            "queries_rejected": counters.get("queries_rejected", 0),
            "queries_completed": counters.get("queries_completed", 0),
            "queries_failed": counters.get("queries_failed", 0),
            "rows_processed": counters.get("rows_processed", 0),
            "mpc_rounds": counters.get("mpc_rounds", 0),
            "in_flight": int(gauges.get("in_flight", 0)),
            "queued": int(gauges.get("queue_depth", 0)),
            "restarts": counters.get("agent_restarts", 0),
            "restart_failures": counters.get("agent_restart_failures", 0),
            "retries": counters.get("queries_retried", 0),
            "retries_exhausted": counters.get("retries_exhausted", 0),
            "latency": snapshot["latency"],
            "wire": snapshot["wire"],
        }

    @property
    def metrics(self) -> GatewayMetrics:
        """The session's live metric registry (counters/gauges/histograms)."""
        return self._metrics

    @property
    def gateway(self) -> QueryGateway:
        """The session's admission-control gateway."""
        return self._gateway

    def queued(self) -> int:
        """Queries admitted but still waiting in the gateway."""
        return self._gateway.queued()

    def render_prometheus(self) -> str:
        """The session's metrics in the Prometheus text exposition format."""
        return self._metrics.render_prometheus()

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
        """Start (or return) the session's local ``GET /metrics`` endpoint.

        Binds an ephemeral localhost port by default; the returned server's
        ``url`` is the scrape target.  Closed automatically with the session.
        """
        if self._metrics_server is None:
            self._metrics_server = MetricsServer(
                self._metrics.render_prometheus, host=host, port=port
            )
        return self._metrics_server

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._pool.closed or self._pool.broken is not None

    def in_flight(self) -> int:
        return self._pool.in_flight()

    def close(self, *, drain: bool = True) -> None:
        """Drain in-flight queries (unless ``drain=False``) and retire the agents.

        Queries still *queued* in the gateway fail with
        :class:`SessionClosed`; already-dispatched queries drain as before.
        """
        self._gateway.close(SessionClosed("session closed"))
        self._pool.close(drain=drain)
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        _ACTIVE_SESSIONS.discard(self)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)


def open_session(
    inputs: dict | None = None,
    config: CompilationConfig | None = None,
    seed: int = 0,
    *,
    parties: list[str] | None = None,
    timeout: float = 60.0,
    idle_timeout: float | None = None,
    start_method: str | None = None,
    max_workers: int = AGENT_MAX_WORKERS,
    gateway: GatewayConfig | None = None,
    restart: RestartPolicy | None = None,
    retry: RetryPolicy | None = None,
    faults=None,
    security: TransportSecurity | None = None,
) -> QuerySession:
    """Open a persistent query session over one agent process per party.

    ``inputs`` maps party name -> {relation name -> Table} and becomes the
    session's standing data (each ``submit`` may override it per query);
    ``parties`` defaults to the input owners.  ``max_workers`` bounds how
    many queries each agent executes concurrently (also the default
    in-flight cap of the gateway); ``gateway`` sets the session's admission
    control and fair-scheduling limits (:class:`~repro.core.config
    .GatewayConfig` — the default admits without queue limits, preserving
    pre-gateway behaviour).

    ``restart`` (a :class:`~repro.core.config.RestartPolicy`) turns on agent
    supervision: a crashed agent process is restarted, re-joined to the
    surviving mesh and re-armed with the session's standing inputs, instead
    of the crash breaking the session.  ``retry`` (a
    :class:`~repro.core.config.RetryPolicy`) makes queries hit by such a
    crash (or by a transport-level failure) replay transparently — safe
    because queries are pure functions of (plan, inputs, seed).  ``faults``
    (a :class:`~repro.runtime.faults.FaultPlan`) arms the deterministic
    fault-injection harness used by the chaos tests.  ``security`` (a
    :class:`~repro.core.config.TransportSecurity`) wraps every control,
    mesh and rejoin link in mutually-authenticated TLS and makes every
    hello carry the session nonce — required for deployments that leave
    loopback (pair it with ``config.bind_host``).  Close the session
    explicitly or use it as a context manager::

        with cc.open_session(inputs) as session:
            for plan in plans:
                result = session.submit(plan)
    """
    if parties is None:
        if not inputs:
            raise ValueError("open_session needs inputs or an explicit parties list")
        parties = sorted(inputs)
    return QuerySession(
        parties,
        inputs=inputs,
        config=config,
        seed=seed,
        timeout=timeout,
        idle_timeout=idle_timeout,
        start_method=start_method,
        max_workers=max_workers,
        gateway=gateway,
        restart=restart,
        retry=retry,
        faults=faults,
        security=security,
    )


# -- shared sessions for run_query(runtime="service") ---------------------------------------

_SHARED_SESSIONS: dict[tuple, QuerySession] = {}
_SHARED_LOCK = threading.Lock()


def shared_session(
    parties: list[str],
    *,
    timeout: float = 60.0,
    start_method: str | None = None,
) -> QuerySession:
    """The process-wide standing session for ``parties`` (created on demand).

    Backs ``run_query(..., runtime="service")``: repeated queries over the
    same party set reuse one warm agent mesh.  Shared sessions carry no
    standing inputs — every submission ships its own — and are closed by
    :func:`close_shared_sessions` (registered ``atexit``).
    """
    key = (tuple(parties), timeout, start_method)
    with _SHARED_LOCK:
        session = _SHARED_SESSIONS.get(key)
        if session is None or session.closed:
            session = QuerySession(
                parties, timeout=timeout, start_method=start_method,
            )
            _SHARED_SESSIONS[key] = session
        return session


def close_shared_sessions() -> None:
    """Close every shared session (used by tests and at interpreter exit)."""
    with _SHARED_LOCK:
        sessions = list(_SHARED_SESSIONS.values())
        _SHARED_SESSIONS.clear()
    for session in sessions:
        try:
            session.close()
        except Exception as exc:  # noqa: BLE001 - best-effort teardown
            _count_teardown_error("close_shared_sessions", exc)


def _close_sessions_at_exit() -> None:
    """Interpreter-exit safety net: no session may leak agent processes.

    Shared sessions drain and close as usual; explicitly opened sessions the
    user forgot to close are torn down *without* draining — at exit there is
    nobody left to consume results, only processes to reap.
    """
    close_shared_sessions()
    for session in list(_ACTIVE_SESSIONS):
        try:
            session.close(drain=False)
        except Exception as exc:  # noqa: BLE001 - best-effort teardown
            _count_teardown_error("_close_sessions_at_exit", exc)


atexit.register(_close_sessions_at_exit)


def _agent_error(party: str, exc, tb: str) -> BaseException:
    if isinstance(exc, BaseException):
        exc.__cause__ = AgentFailure(f"raised in agent {party!r}:\n{tb}")
        return exc
    return AgentFailure(f"agent {party!r} failed:\n{tb}")
