"""The persistent query service: long-lived agent pools and query sessions.

The paper's deployment model is *standing* data-owning parties answering a
stream of analyst queries.  The first socket runtime spawned a fresh agent
mesh per query, so spawn + handshake dominated latency; this module keeps
the :class:`~repro.runtime.agent.PartyAgent` processes alive across queries:

* :class:`AgentPool` — the process/socket substrate: spawns one agent OS
  process per party, brokers the mesh handshake **once**, then keeps the
  control links open, routing result/error frames (tagged by query id) from
  per-party receiver threads into per-query futures.  A control link that
  dies marks the pool broken and fails every in-flight query loudly.
* :class:`QuerySession` — the analyst-facing handle: ``submit(plan)`` many
  times (thread-safe, concurrently), per-session compiled-plan caching
  keyed by DAG fingerprint (each distinct plan is pickled and shipped once),
  and a graceful lifecycle (context manager, drain-on-close, optional idle
  timeout after which the agents retire themselves).

Single-query execution (``runtime="sockets"``) is the degenerate case: the
coordinator opens a session, submits once, and closes — so both paths share
one protocol and one set of tests.  ``runtime="service"`` reuses a shared
session per party set via :func:`shared_session`.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import pickle
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.config import CompilationConfig, GatewayConfig
from repro.runtime.agent import AGENT_MAX_WORKERS, agent_main
from repro.runtime.gateway import DEFAULT_ANALYST, QueryGateway, QueryRejected  # noqa: F401
from repro.runtime.mesh import bind_listener
from repro.runtime.metrics import GatewayMetrics, MetricsServer
from repro.runtime.transport import TransportError
from repro.runtime.wire import WireError, encode_frame, recv_frame, send_frame

#: Live agent processes, for leak-hunting test fixtures.
_ACTIVE_PROCESSES: "set[multiprocessing.process.BaseProcess]" = set()

#: Open sessions, for leak-hunting test fixtures and atexit cleanup.
_ACTIVE_SESSIONS: "set[QuerySession]" = set()


def active_agent_processes() -> list:
    """Agent processes started by any pool/coordinator that are still alive."""
    return [p for p in list(_ACTIVE_PROCESSES) if p.is_alive()]


def active_sessions() -> list:
    """Sessions opened anywhere in the process that are still open."""
    return [s for s in list(_ACTIVE_SESSIONS) if not s.closed]


class AgentFailure(RuntimeError):
    """An agent process failed without a reconstructable exception."""


class SessionClosed(RuntimeError):
    """The session can no longer accept queries (closed, idle, or broken)."""


def plan_fingerprint(compiled) -> str:
    """A stable fingerprint of a compiled plan, for per-session caching.

    Computed over the plan's pickled bytes: resubmitting the *same* compiled
    object (the intended reuse pattern — compile once, submit many) always
    hits the cache, and two plans with different DAGs can never collide.  A
    plan recompiled from scratch may fingerprint differently — that costs a
    redundant plan shipment, never a wrong cache hit.

    Memoized on the compiled object so the warm path ("submit many") never
    re-pickles the plan just to hash it.
    """
    cached = getattr(compiled, "_plan_fingerprint", None)
    if cached is not None:
        return cached
    fingerprint = hashlib.sha256(
        pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()
    try:
        compiled._plan_fingerprint = fingerprint
    except AttributeError:
        pass  # slotted/frozen plan object: hash again next time
    return fingerprint


def merge_payloads(compiled, parties: list[str], payloads: dict[str, dict]):
    """Merge per-agent result payloads into one QueryResult.

    Used by every socket-runtime path: per-node durations max-merge (local
    nodes are reported by their executing agent, joint nodes identically by
    every agent), each output comes from the first recipient that
    materialised it, per-party leakage concatenates while joint (replicated)
    events are taken once from the lead agent.
    """
    from repro.core.dispatch import QueryResult
    from repro.hybrid.stp import LeakageReport
    from repro.runtime.executor import completion_seconds

    lead = parties[0]

    durations: dict[int, float] = {}
    for payload in payloads.values():
        for node_id, seconds in payload["node_durations"].items():
            durations[node_id] = max(durations.get(node_id, 0.0), seconds)

    outputs: dict[str, object] = {}
    for node in compiled.dag.outputs():
        name = node.out_rel.name
        for party in [*node.recipients, *parties]:
            payload = payloads.get(party)
            if payload is not None and name in payload["outputs"]:
                outputs[name] = payload["outputs"][name]
                break

    leakage = LeakageReport()
    for party in parties:
        leakage.events.extend(payloads[party]["leakage"].events)
    leakage.events.extend(payloads[lead]["joint_leakage"].events)

    backend_seconds: dict[str, float] = {}
    for party in parties:
        mine = payloads[party]["backend_seconds"]
        key = f"local:{party}"
        if key in mine:
            backend_seconds[key] = mine[key]
    for key, value in payloads[lead]["backend_seconds"].items():
        if key.startswith("mpc:") or key not in backend_seconds:
            backend_seconds.setdefault(key, value)

    return QueryResult(
        outputs=outputs,
        simulated_seconds=completion_seconds(compiled.dag, durations),
        wall_seconds=0.0,  # stamped by the caller
        leakage=leakage,
        backend_seconds=backend_seconds,
        mpc_profile=payloads[lead]["mpc_profile"],
        runtime="sockets",
    )


@dataclass
class _PendingQuery:
    """Coordinator-side state of one in-flight query."""

    remaining: set[str]
    payloads: dict[str, dict] = field(default_factory=dict)
    errors: list[BaseException] = field(default_factory=list)
    future: Future = field(default_factory=Future)

    def finish(self) -> None:
        if self.future.done():
            return
        if self.errors:
            # Prefer the root cause: an agent that hit a real error over one
            # that merely saw the failed peer's abort or timed out on it.
            primary = next(
                (e for e in self.errors if not isinstance(e, (TransportError, AgentFailure))),
                self.errors[0],
            )
            self.future.set_exception(primary)
        else:
            self.future.set_result(self.payloads)


class AgentPool:
    """One long-lived agent process per party, serving many queries.

    The pool owns the processes, control sockets and receiver threads; the
    per-query bookkeeping hands each submission a :class:`Future` resolving
    to the per-party payload dict (or the query's primary error).
    """

    def __init__(
        self,
        parties: list[str],
        *,
        inputs: dict | None = None,
        timeout: float = 60.0,
        idle_timeout: float | None = None,
        start_method: str | None = None,
        max_workers: int = AGENT_MAX_WORKERS,
        on_retire=None,
    ):
        self.parties = list(parties)
        self.timeout = timeout
        self.idle_timeout = idle_timeout
        self.max_workers = max_workers
        self._on_retire = on_retire
        self._retired = False
        self._lock = threading.Lock()
        self._pending: dict[int, _PendingQuery] = {}
        self._send_locks: dict[str, threading.Lock] = {}
        self._closed = False
        self._broken: BaseException | None = None
        self._closing_reason: str | None = None
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self._connections: dict[str, socket.socket] = {}
        self._receivers: list[threading.Thread] = []
        #: Latest per-party wire-traffic snapshot (reported by each agent on
        #: every query completion), for the session's bytes-on-wire metrics.
        self._wire_traffic: dict[str, dict] = {}

        ctx = multiprocessing.get_context(start_method)
        listener = bind_listener(timeout)
        port = listener.getsockname()[1]
        try:
            for party in self.parties:
                proc = ctx.Process(
                    target=agent_main,
                    args=(party, "127.0.0.1", port, timeout),
                    daemon=True,
                    name=f"conclave-agent-{party}",
                )
                proc.start()
                self._processes[party] = proc
                _ACTIVE_PROCESSES.add(proc)

            self._connections = self._accept_agents(listener)
            self._send_locks = {p: threading.Lock() for p in self._connections}
            inputs = inputs or {}
            for party, sock in self._connections.items():
                send_frame(sock, ("session", {
                    "parties": self.parties,
                    "timeout": timeout,
                    "idle_timeout": idle_timeout,
                    "max_workers": max_workers,
                    "inputs": inputs.get(party, {}),
                }))

            ports = {}
            for party, sock in self._connections.items():
                ports[party] = self._expect(party, sock, "ports")
            for sock in self._connections.values():
                send_frame(sock, ("peers", ports))
            # Wait for the mesh to be fully established at every agent, so
            # an open pool is a *working* pool (handshake bugs fail here,
            # not inside the first submit).
            for party, sock in self._connections.items():
                self._expect(party, sock, "ready")
        except BaseException:
            self._teardown()
            raise
        finally:
            try:
                listener.close()
            except OSError:
                pass

        for party, sock in self._connections.items():
            thread = threading.Thread(
                target=self._receive_loop, args=(party, sock), daemon=True,
                name=f"pool-recv-{party}",
            )
            thread.start()
            self._receivers.append(thread)

    # -- handshake ---------------------------------------------------------------------

    def _accept_agents(self, listener: socket.socket) -> dict[str, socket.socket]:
        connections: dict[str, socket.socket] = {}
        for _ in self.parties:
            try:
                sock, _addr = listener.accept()
            except (socket.timeout, OSError) as exc:
                raise AgentFailure(
                    f"timed out waiting for agents to connect; got {sorted(connections)} "
                    f"of {self.parties}"
                ) from exc
            sock.settimeout(self.timeout + 10)
            tag, party = recv_frame(sock)
            if tag != "hello" or party not in self.parties or party in connections:
                raise AgentFailure(f"malformed agent hello: {(tag, party)!r}")
            connections[party] = sock
        return connections

    def _expect(self, party: str, sock: socket.socket, expected_tag: str):
        frame = recv_frame(sock)
        tag, *rest = frame
        if tag == "fatal":
            raise _agent_error(party, rest[0], rest[1])
        if tag != expected_tag:
            raise AgentFailure(f"agent {party!r} sent {tag!r}, expected {expected_tag!r}")
        return rest[0]

    # -- the query path ----------------------------------------------------------------

    def submit(
        self,
        query_id: int,
        fingerprint: str,
        compiled_to_ship,
        config,
        seed: int,
        inputs: dict | None,
    ) -> Future:
        """Frame one query out to every agent; returns the payload future.

        ``compiled_to_ship`` is the compiled plan on the first submission of
        a fingerprint and ``None`` afterwards (the agents serve it from
        their plan cache).
        """
        with self._lock:
            if self._closed or self._broken is not None:
                raise SessionClosed(self._closed_message())
            entry = _PendingQuery(remaining=set(self.parties))
            self._pending[query_id] = entry
        # Encode every party's frame *before* sending any: a serialization
        # failure (unpicklable inputs, frame over the cap) then fails only
        # this query — cleanly, with nothing half-shipped — and the session
        # keeps serving.  After successful encoding only socket errors
        # remain, and those mean the party is gone.
        try:
            frames = {
                party: encode_frame(("query", {
                    "query_id": query_id,
                    "fingerprint": fingerprint,
                    "compiled": compiled_to_ship,
                    "config": config,
                    "seed": seed,
                    # Per-party override: parties not named keep their
                    # standing session inputs (None -> agent falls back).
                    "inputs": None if inputs is None else inputs.get(party),
                }))
                for party in self.parties
            }
        except Exception:
            with self._lock:
                self._pending.pop(query_id, None)
            raise
        for party, data in frames.items():
            try:
                with self._send_locks[party]:
                    self._connections[party].sendall(data)
            except OSError as exc:
                # The receiver loop may race us to the diagnosis; either way
                # the entry's future is failed before we return.
                self._party_died(party, exc)
                break
        return entry.future

    def _receive_loop(self, party: str, sock: socket.socket) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(sock, allow_idle_timeout=True)
                except TimeoutError:
                    continue  # idle stream; in-flight timeouts live in the mesh
                tag = frame[0]
                if tag == "result":
                    self._resolve(party, frame[1], payload=frame[2])
                elif tag == "error":
                    self._resolve(party, frame[1], error=_agent_error(party, frame[2], frame[3]))
                elif tag == "fatal":
                    raise _agent_error(party, frame[1], frame[2])
                elif tag == "closing":
                    self._mark_closing(party, frame[1])
                    return
                else:
                    raise AgentFailure(f"agent {party!r} sent unknown frame {tag!r}")
        except BaseException as exc:  # noqa: BLE001 - control link is gone
            self._party_died(party, exc)

    def _resolve(self, party: str, query_id: int, payload=None, error=None) -> None:
        with self._lock:
            if payload is not None and "wire_traffic" in payload:
                self._wire_traffic[party] = payload["wire_traffic"]
            entry = self._pending.get(query_id)
            if entry is None:
                return  # query already failed wholesale (e.g. a peer died)
            if error is not None:
                entry.errors.append(error)
            else:
                entry.payloads[party] = payload
            entry.remaining.discard(party)
            done = not entry.remaining
            if done:
                del self._pending[query_id]
        if done:
            entry.finish()

    def _party_died(self, party: str, exc: BaseException) -> None:
        with self._lock:
            if self._broken is None and not self._closed:
                self._broken = exc
            # Whatever the pool state, leftover in-flight queries must fail
            # loudly — an unresolved future is a deadlocked caller.
            entries = list(self._pending.values())
            self._pending.clear()
        if entries:
            failure = AgentFailure(
                f"agent {party!r} died mid-session; all in-flight queries failed: {exc}"
            )
            failure.__cause__ = exc if isinstance(exc, Exception) else None
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(failure)
        # Retire even when nothing was in flight: a pool broken while idle
        # must still release its surviving processes, sockets and registry
        # entries without waiting for an explicit close().
        self._retire()

    def _mark_closing(self, party: str, reason: str) -> None:
        with self._lock:
            self._closing_reason = reason
            if reason == "shutdown" or self._closed:
                return
            # Idle timeout: the agents retired themselves; the pool can no
            # longer serve queries.  Nothing was in flight (agents only
            # idle out with an empty in-flight set).
            entries = list(self._pending.values())
            self._pending.clear()
            self._broken = SessionClosed(f"agents closed the session: {reason}")
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(AgentFailure(
                    f"agent {party!r} closed ({reason}) with queries in flight"
                ))
        if reason != "shutdown":
            # Idle retirement: the agents are exiting on their own and the
            # user may never call close() on the abandoned session — release
            # the coordinator-side sockets/processes/registry entries now.
            self._retire()

    def _closed_message(self) -> str:
        if self._broken is not None:
            return f"session is no longer usable: {self._broken}"
        return "session is closed"

    def _retire(self) -> None:
        """Release OS resources of a pool that can no longer serve queries.

        Runs once, from whichever thread first diagnoses the pool as broken
        (crash) or retired (idle timeout): closes the control sockets (which
        also unblocks sibling receiver threads and makes surviving agents
        exit on control-link EOF), reaps the processes, and notifies the
        owning session so registries do not pin an abandoned session.
        """
        with self._lock:
            if self._retired:
                return
            self._retired = True
        for sock in self._connections.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._teardown(grace=2.0)
        if self._on_retire is not None:
            self._on_retire()

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> BaseException | None:
        return self._broken

    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def wire_traffic(self) -> dict[str, dict]:
        """Latest per-party mesh traffic: ``{party: {peer: {bytes_sent, ...}}}``.

        Each party's entry is the cumulative snapshot its agent reported
        with its most recent query result (deep-copied: safe to hand out).
        """
        with self._lock:
            return {
                party: {peer: dict(stats) for peer, stats in traffic.items()}
                for party, traffic in self._wire_traffic.items()
            }

    def close(self, *, drain: bool = True) -> None:
        """Shut the pool down; with ``drain``, in-flight queries finish first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [e.future for e in self._pending.values()]
            broken = self._broken is not None
        if drain and not broken:
            for future in pending:
                try:
                    future.exception(timeout=self.timeout)
                except Exception:  # noqa: BLE001 - drain best-effort; teardown follows
                    pass
        if not broken:
            for party, sock in self._connections.items():
                try:
                    with self._send_locks[party]:
                        send_frame(sock, ("shutdown", None))
                except (WireError, OSError):
                    pass
            # Receivers exit when their agent confirms ("closing", "shutdown").
            for thread in self._receivers:
                thread.join(timeout=self.timeout)
        # Unblock any receiver still parked in recv (e.g. the surviving
        # parties of a broken pool): shutdown() interrupts a blocked read
        # (plain close() would not), then the socket can be closed.
        for sock in self._connections.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in self._receivers:
            thread.join(timeout=5)
        # Agents that confirmed shutdown exit on their own; survivors of a
        # broken pool never will, so skip the grace period and terminate.
        self._teardown(grace=0.0 if broken else 5.0)

    def _teardown(self, grace: float = 0.0) -> None:
        for sock in self._connections.values():
            try:
                sock.close()
            except OSError:
                pass
        for proc in self._processes.values():
            if grace:
                proc.join(timeout=grace)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
            _ACTIVE_PROCESSES.discard(proc)


class PendingResult:
    """Handle for one submitted query; ``result()`` blocks and merges."""

    def __init__(self, session: "QuerySession", compiled, future: Future, started: float):
        self._session = session
        self._compiled = compiled
        self._future = future
        self._started = started

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None):
        """The merged :class:`~repro.core.dispatch.QueryResult` (blocking).

        A ``timeout`` bounds the wait: expiry raises :class:`AgentFailure`
        (the query may still be running; the session stays usable).
        """
        try:
            payloads = self._future.result(timeout)
        except TimeoutError:
            raise AgentFailure(
                f"no result within {timeout:.0f}s; the agents may be wedged "
                "(mesh-level timeouts surface blocked exchanges, but purely "
                "local agent work is unbounded)"
            ) from None
        merged = merge_payloads(self._compiled, self._session.parties, payloads)
        merged.wall_seconds = time.perf_counter() - self._started
        merged.runtime = self._session.runtime_label
        return merged


class QuerySession:
    """A standing mesh of party agents serving a stream of queries.

    Open once (agents spawn, mesh connects), ``submit`` many times — from
    any thread, concurrently — and close explicitly or via ``with``.  Plans
    are cached per session by DAG fingerprint, so resubmitting the same
    compiled plan ships only its fingerprint.
    """

    def __init__(
        self,
        parties: list[str],
        inputs: dict | None = None,
        config: CompilationConfig | None = None,
        seed: int = 0,
        *,
        timeout: float = 60.0,
        idle_timeout: float | None = None,
        start_method: str | None = None,
        runtime_label: str = "service",
        max_workers: int = AGENT_MAX_WORKERS,
        gateway: GatewayConfig | None = None,
    ):
        if not isinstance(max_workers, int) or isinstance(max_workers, bool) or max_workers < 1:
            raise ValueError(f"max_workers must be an int >= 1, got {max_workers!r}")
        self.parties = list(parties)
        self.config = config or CompilationConfig()
        self.seed = seed
        self.runtime_label = runtime_label
        self._submit_lock = threading.Lock()
        # Next query id, advanced only on successful dispatch (under the
        # submit lock) so a failed submission leaves no id gap — the mesh's
        # released-id watermark relies on ids being contiguous.
        self._next_qid = 1
        self._shipped_fingerprints: set[str] = set()
        self._metrics = GatewayMetrics()
        self._metrics_server: MetricsServer | None = None
        # The gateway fronts the pool: it must exist before the pool so the
        # retire callback (which may fire from a receiver thread the moment
        # the pool is up) can always close it.
        self._gateway = QueryGateway(
            gateway,
            max_in_flight_default=max_workers,
            metrics=self._metrics,
            closed_error=SessionClosed,
        )
        self._pool = AgentPool(
            self.parties,
            inputs=inputs,
            timeout=timeout,
            idle_timeout=idle_timeout,
            start_method=start_method,
            max_workers=max_workers,
            on_retire=self._pool_retired,
        )
        self._metrics.set_wire_provider(self._pool.wire_traffic)
        _ACTIVE_SESSIONS.add(self)
        if self._pool._retired:  # lost the race against an immediate retire
            _ACTIVE_SESSIONS.discard(self)

    def _pool_retired(self) -> None:
        """Pool retired (broken or idle): fail queued queries, drop registries."""
        _ACTIVE_SESSIONS.discard(self)
        pool = getattr(self, "_pool", None)
        broken = pool.broken if pool is not None else None
        self._gateway.close(broken if isinstance(broken, Exception) else None)

    # -- submission --------------------------------------------------------------------

    def submit_async(
        self,
        query,
        inputs: dict | None = None,
        seed: int | None = None,
        config: CompilationConfig | None = None,
        *,
        analyst: str = DEFAULT_ANALYST,
    ) -> PendingResult:
        """Admit one query through the gateway; returns immediately.

        ``query`` is a compiled plan (preferred — compile once, submit many)
        or anything :func:`repro.core.compiler.compile_query` accepts.
        ``inputs`` optionally overrides the session's standing inputs for
        this query only (per party; parties not named keep their standing
        inputs).  ``seed``/``config`` default to the session's.  ``analyst``
        names the submitting principal for admission control and fair
        scheduling; queries of unnamed analysts share one default principal.

        Raises :class:`~repro.runtime.gateway.QueryRejected` when the
        session's :class:`~repro.core.config.GatewayConfig` queue limits are
        exceeded — the query was shed before reaching the agents and the
        session stays fully usable.
        """
        from repro.core.compiler import CompiledQuery, compile_query

        config = config or self.config
        compiled = query if isinstance(query, CompiledQuery) else compile_query(query, config)
        fingerprint = plan_fingerprint(compiled)
        started = time.perf_counter()
        query_seed = self.seed if seed is None else seed
        future = self._gateway.submit(
            analyst,
            lambda: self._dispatch_query(compiled, fingerprint, config, query_seed, inputs),
        )
        return PendingResult(self, compiled, future, started)

    def _dispatch_query(
        self, compiled, fingerprint: str, config, seed: int, inputs: dict | None
    ) -> Future:
        """Frame one admitted query out to the agents (gateway dispatch hook).

        One lock around fingerprint bookkeeping *and* frame dispatch: the
        control links are FIFO per party, so holding the lock guarantees the
        plan-bearing frame reaches every agent before any frame that
        references the plan by fingerprint alone.
        """
        with self._submit_lock:
            ship = fingerprint not in self._shipped_fingerprints
            query_id = self._next_qid
            future = self._pool.submit(
                query_id,
                fingerprint,
                compiled if ship else None,
                config,
                seed,
                inputs,
            )
            # Only now is the id consumed: a submit that raised (e.g. its
            # frame failed to encode) shipped nothing, so the id is reused.
            self._next_qid += 1
            self._shipped_fingerprints.add(fingerprint)
            # One atomic multi-increment: any stats snapshot satisfies
            # plan_cache_hits + plan_cache_misses == queries.
            self._metrics.inc_many({
                "queries": 1,
                "plan_cache_misses" if ship else "plan_cache_hits": 1,
            })
        return future

    def submit(
        self,
        query,
        inputs: dict | None = None,
        seed: int | None = None,
        config: CompilationConfig | None = None,
        timeout: float | None = None,
        *,
        analyst: str = DEFAULT_ANALYST,
    ):
        """Execute one query on the standing agents and block for its result."""
        return self.submit_async(
            query, inputs=inputs, seed=seed, config=config, analyst=analyst
        ).result(timeout)

    # -- observability -----------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """An immutable snapshot of the session's metrics (plain dicts).

        Every read returns a fresh, internally consistent copy — mutating it
        never touches live state, and ``plan_cache_hits + plan_cache_misses
        == queries`` holds in any snapshot, even one taken concurrently with
        submissions.  Beyond the legacy counters it carries the gateway
        counters/gauges, latency summaries (queue-wait, execute, end-to-end)
        and per-party bytes-on-wire.
        """
        snapshot = self._metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        return {
            "queries": counters.get("queries", 0),
            "plan_cache_hits": counters.get("plan_cache_hits", 0),
            "plan_cache_misses": counters.get("plan_cache_misses", 0),
            "queries_submitted": counters.get("queries_submitted", 0),
            "queries_rejected": counters.get("queries_rejected", 0),
            "queries_completed": counters.get("queries_completed", 0),
            "queries_failed": counters.get("queries_failed", 0),
            "in_flight": int(gauges.get("in_flight", 0)),
            "queued": int(gauges.get("queue_depth", 0)),
            "latency": snapshot["latency"],
            "wire": snapshot["wire"],
        }

    @property
    def metrics(self) -> GatewayMetrics:
        """The session's live metric registry (counters/gauges/histograms)."""
        return self._metrics

    @property
    def gateway(self) -> QueryGateway:
        """The session's admission-control gateway."""
        return self._gateway

    def queued(self) -> int:
        """Queries admitted but still waiting in the gateway."""
        return self._gateway.queued()

    def render_prometheus(self) -> str:
        """The session's metrics in the Prometheus text exposition format."""
        return self._metrics.render_prometheus()

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
        """Start (or return) the session's local ``GET /metrics`` endpoint.

        Binds an ephemeral localhost port by default; the returned server's
        ``url`` is the scrape target.  Closed automatically with the session.
        """
        if self._metrics_server is None:
            self._metrics_server = MetricsServer(
                self._metrics.render_prometheus, host=host, port=port
            )
        return self._metrics_server

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._pool.closed or self._pool.broken is not None

    def in_flight(self) -> int:
        return self._pool.in_flight()

    def close(self, *, drain: bool = True) -> None:
        """Drain in-flight queries (unless ``drain=False``) and retire the agents.

        Queries still *queued* in the gateway fail with
        :class:`SessionClosed`; already-dispatched queries drain as before.
        """
        self._gateway.close(SessionClosed("session closed"))
        self._pool.close(drain=drain)
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        _ACTIVE_SESSIONS.discard(self)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)


def open_session(
    inputs: dict | None = None,
    config: CompilationConfig | None = None,
    seed: int = 0,
    *,
    parties: list[str] | None = None,
    timeout: float = 60.0,
    idle_timeout: float | None = None,
    start_method: str | None = None,
    max_workers: int = AGENT_MAX_WORKERS,
    gateway: GatewayConfig | None = None,
) -> QuerySession:
    """Open a persistent query session over one agent process per party.

    ``inputs`` maps party name -> {relation name -> Table} and becomes the
    session's standing data (each ``submit`` may override it per query);
    ``parties`` defaults to the input owners.  ``max_workers`` bounds how
    many queries each agent executes concurrently (also the default
    in-flight cap of the gateway); ``gateway`` sets the session's admission
    control and fair-scheduling limits (:class:`~repro.core.config
    .GatewayConfig` — the default admits without queue limits, preserving
    pre-gateway behaviour).  Close the session explicitly or use it as a
    context manager::

        with cc.open_session(inputs) as session:
            for plan in plans:
                result = session.submit(plan)
    """
    if parties is None:
        if not inputs:
            raise ValueError("open_session needs inputs or an explicit parties list")
        parties = sorted(inputs)
    return QuerySession(
        parties,
        inputs=inputs,
        config=config,
        seed=seed,
        timeout=timeout,
        idle_timeout=idle_timeout,
        start_method=start_method,
        max_workers=max_workers,
        gateway=gateway,
    )


# -- shared sessions for run_query(runtime="service") ---------------------------------------

_SHARED_SESSIONS: dict[tuple, QuerySession] = {}
_SHARED_LOCK = threading.Lock()


def shared_session(
    parties: list[str],
    *,
    timeout: float = 60.0,
    start_method: str | None = None,
) -> QuerySession:
    """The process-wide standing session for ``parties`` (created on demand).

    Backs ``run_query(..., runtime="service")``: repeated queries over the
    same party set reuse one warm agent mesh.  Shared sessions carry no
    standing inputs — every submission ships its own — and are closed by
    :func:`close_shared_sessions` (registered ``atexit``).
    """
    key = (tuple(parties), timeout, start_method)
    with _SHARED_LOCK:
        session = _SHARED_SESSIONS.get(key)
        if session is None or session.closed:
            session = QuerySession(
                parties, timeout=timeout, start_method=start_method,
            )
            _SHARED_SESSIONS[key] = session
        return session


def close_shared_sessions() -> None:
    """Close every shared session (used by tests and at interpreter exit)."""
    with _SHARED_LOCK:
        sessions = list(_SHARED_SESSIONS.values())
        _SHARED_SESSIONS.clear()
    for session in sessions:
        try:
            session.close()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass


atexit.register(close_shared_sessions)


def _agent_error(party: str, exc, tb: str) -> BaseException:
    if isinstance(exc, BaseException):
        exc.__cause__ = AgentFailure(f"raised in agent {party!r}:\n{tb}")
        return exc
    return AgentFailure(f"agent {party!r} failed:\n{tb}")
