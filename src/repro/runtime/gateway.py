"""The query gateway: admission control, backpressure and fair scheduling.

The service runtime (PR 5) gave the reproduction standing agents that serve
a stream of queries, but no *front door*: every submission was framed out to
the agents immediately, each agent ran up to its worker-pool limit
concurrently, and everything beyond that buffered without bound — one hot
analyst could wedge the session for everyone and nobody could tell.  This
module is the front door:

* **Admission control** — a query is *dispatched* while in-flight capacity
  lasts, *queued* while the configured depth limits allow, and *shed* with
  an explicit :class:`QueryRejected` beyond that.  Rejection is immediate
  and stateless: the query never reached the agents, the session is
  untouched, and the analyst can retry.
* **Fair scheduling** — queued queries are dispatched by smooth weighted
  round-robin across analyst principals, so a burst from one analyst cannot
  starve the others of agent worker slots.  Per-analyst order stays FIFO.
* **Metrics** — every transition is recorded in a
  :class:`~repro.runtime.metrics.GatewayMetrics`: submitted / admitted /
  rejected / completed / failed counters, in-flight and queue-depth gauges,
  and queue-wait vs execute vs end-to-end latency histograms.

The gateway is deliberately independent of the socket machinery: it fronts
any ``dispatch`` callable returning a :class:`~concurrent.futures.Future`
(the session passes a closure around :meth:`AgentPool.submit`), which keeps
admission and fairness unit-testable without processes or sockets.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.config import GatewayConfig
from repro.runtime.metrics import GatewayMetrics

#: Analyst principal used when a submission does not name one.
DEFAULT_ANALYST = "anonymous"


class QueryRejected(RuntimeError):
    """The gateway shed a query: an admission limit was exceeded.

    The query was never dispatched (the agents never saw it) and the
    session remains fully usable — shed-and-retry is the intended
    backpressure signal for saturating clients.
    """

    def __init__(
        self,
        message: str,
        *,
        analyst: str,
        queued: int,
        in_flight: int,
        retry_after_seconds: float = 0.1,
    ):
        super().__init__(message)
        self.analyst = analyst
        self.queued = queued
        self.in_flight = in_flight
        #: Data-driven backoff hint: roughly how long the gateway expects the
        #: congestion to take to clear, derived from the session's observed
        #: queue-wait latency (see :meth:`QueryGateway._retry_after_hint`).
        self.retry_after_seconds = retry_after_seconds


class GatewayClosed(RuntimeError):
    """The gateway is closed; used internally before mapping to the
    session's ``SessionClosed``."""


@dataclass
class _Job:
    """One admitted query travelling through the gateway."""

    analyst: str
    dispatch: object  # zero-argument callable -> Future resolving to payloads
    future: Future = field(default_factory=Future)
    admitted_at: float = field(default_factory=time.monotonic)
    dispatched_at: float = 0.0


class QueryGateway:
    """Admission control + weighted-fair dispatch in front of a session.

    ``dispatch`` closures are invoked outside the gateway lock (they do real
    socket writes); all scheduling state is guarded by one small lock.  The
    pump loop is iterative, so a cascade of dispatch failures (e.g. a broken
    pool draining a deep queue) cannot overflow the stack.
    """

    def __init__(
        self,
        config: GatewayConfig | None = None,
        *,
        max_in_flight_default: int = 8,
        metrics: GatewayMetrics | None = None,
        closed_error=GatewayClosed,
        completion_counters=None,
    ):
        self.config = (config or GatewayConfig()).validate()
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        self._closed_error = closed_error
        #: Optional callable mapping a successful dispatch result to extra
        #: counter increments (e.g. ``rows_processed``/``mpc_rounds``); the
        #: session installs one that reads the per-party payloads.
        self._completion_counters = completion_counters
        self._max_in_flight = self.config.max_in_flight or max_in_flight_default
        if self._max_in_flight < 1:
            raise ValueError(f"gateway needs max_in_flight >= 1, got {self._max_in_flight}")
        self._lock = threading.Lock()
        self._queues: dict[str, deque[_Job]] = {}
        self._wrr_current: dict[str, int] = {}
        self._in_flight_total = 0
        self._in_flight: dict[str, int] = {}
        self._closed: BaseException | None = None

    # -- introspection ----------------------------------------------------------------

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight_total

    def queued(self, analyst: str | None = None) -> int:
        with self._lock:
            if analyst is not None:
                queue = self._queues.get(analyst)
                return len(queue) if queue else 0
            return sum(len(q) for q in self._queues.values())

    # -- admission --------------------------------------------------------------------

    def submit(self, analyst: str, dispatch) -> Future:
        """Admit one query: dispatch now, queue, or shed with ``QueryRejected``.

        Returns the gateway-level future resolving to whatever the dispatch
        future resolves to.  A dispatch that raises synchronously (e.g. an
        unserializable frame) re-raises here for immediately dispatched
        queries and fails the future for queued ones.
        """
        job = _Job(analyst=analyst, dispatch=dispatch)
        with self._lock:
            if self._closed is not None:
                raise self._closed_error(f"gateway is closed: {self._closed}")
            self.metrics.inc("queries_submitted")
            queue = self._queues.get(analyst)
            if (queue is None or not queue) and self._has_slot(analyst):
                self._mark_dispatched(analyst)
                dispatch_now = True
            else:
                self._check_shed(analyst)
                if queue is None:
                    queue = self._queues[analyst] = deque()
                queue.append(job)
                self.metrics.inc("queries_queued")
                self._update_queue_gauges()
                dispatch_now = False
        if dispatch_now:
            error = self._dispatch(job)
            if error is not None:
                self._pump()
                raise error
        return job.future

    def _has_slot(self, analyst: str) -> bool:
        """Caller holds the lock."""
        if self._in_flight_total >= self._max_in_flight:
            return False
        per_analyst = self.config.max_in_flight_per_analyst
        if per_analyst is not None and self._in_flight.get(analyst, 0) >= per_analyst:
            return False
        return True

    def _check_shed(self, analyst: str) -> None:
        """Caller holds the lock; raises ``QueryRejected`` on a full queue."""
        total_queued = sum(len(q) for q in self._queues.values())
        queue = self._queues.get(analyst)
        analyst_queued = len(queue) if queue else 0
        reason = None
        if (
            self.config.max_queue_depth is not None
            and total_queued >= self.config.max_queue_depth
        ):
            reason = f"gateway queue is full ({total_queued}/{self.config.max_queue_depth})"
        elif (
            self.config.max_queue_per_analyst is not None
            and analyst_queued >= self.config.max_queue_per_analyst
        ):
            reason = (
                f"analyst {analyst!r} queue is full "
                f"({analyst_queued}/{self.config.max_queue_per_analyst})"
            )
        if reason is None:
            return
        self.metrics.inc("queries_rejected")
        raise QueryRejected(
            f"query shed: {reason}; retry later or raise the session's GatewayConfig limits",
            analyst=analyst,
            queued=total_queued,
            in_flight=self._in_flight_total,
            retry_after_seconds=self._retry_after_hint(),
        )

    def _retry_after_hint(self) -> float:
        """How long a shed client should wait before retrying.

        The median *observed* queue wait is the best single predictor of how
        fast this session drains one queue slot — a client that waits that
        long will, in the median case, find a free slot.  Clamped to
        [50 ms, 30 s] so a cold histogram or a pathological outlier never
        produces a useless hint; 100 ms before any query ever queued.
        """
        histogram = self.metrics.histogram("queue_wait_seconds")
        if histogram is None:
            return 0.1
        p50 = histogram.percentile(50.0)
        if p50 <= 0.0:
            return 0.1
        return max(0.05, min(p50, 30.0))

    # -- dispatch / scheduling --------------------------------------------------------

    def _mark_dispatched(self, analyst: str) -> None:
        """Caller holds the lock."""
        self._in_flight_total += 1
        self._in_flight[analyst] = self._in_flight.get(analyst, 0) + 1
        self.metrics.set_gauge("in_flight", self._in_flight_total)

    def _release(self, analyst: str) -> None:
        with self._lock:
            self._in_flight_total -= 1
            remaining = self._in_flight.get(analyst, 0) - 1
            if remaining > 0:
                self._in_flight[analyst] = remaining
            else:
                self._in_flight.pop(analyst, None)
            self.metrics.set_gauge("in_flight", self._in_flight_total)

    def _update_queue_gauges(self) -> None:
        """Caller holds the lock."""
        self.metrics.set_gauge("queue_depth", sum(len(q) for q in self._queues.values()))

    def _select_analyst(self) -> str | None:
        """Smooth weighted round-robin over analysts with dispatchable work.

        Caller holds the lock.  The classic nginx algorithm: every eligible
        analyst gains its weight, the largest accumulated credit wins and
        pays back the total — over time dispatch opportunities converge to
        the weight proportions, with a deterministic, starvation-free order.
        """
        candidates = [
            analyst
            for analyst, queue in self._queues.items()
            if queue and self._has_slot(analyst)
        ]
        if not candidates:
            return None
        weights = {
            analyst: self.config.analyst_weights.get(analyst, self.config.default_weight)
            for analyst in candidates
        }
        for analyst in candidates:
            self._wrr_current[analyst] = self._wrr_current.get(analyst, 0) + weights[analyst]
        # Deterministic tie-break by name so tests (and incident timelines)
        # are reproducible.
        best = max(sorted(candidates), key=lambda a: self._wrr_current[a])
        self._wrr_current[best] -= sum(weights.values())
        return best

    def _pump(self) -> None:
        """Dispatch queued work while slots last (iterative, lock-chunked)."""
        while True:
            with self._lock:
                if self._closed is not None or self._in_flight_total >= self._max_in_flight:
                    return
                analyst = self._select_analyst()
                if analyst is None:
                    return
                queue = self._queues[analyst]
                job = queue.popleft()
                if not queue:
                    del self._queues[analyst]
                    self._wrr_current.pop(analyst, None)
                self._mark_dispatched(analyst)
                self._update_queue_gauges()
            error = self._dispatch(job)
            if error is not None:
                job.future.set_exception(error)

    def _dispatch(self, job: _Job) -> BaseException | None:
        """Invoke the dispatch closure (outside the lock); wire completion.

        Returns the synchronous dispatch error, if any, with the slot
        already released — the caller decides whether to re-raise (inline
        submissions) or fail the job future (queued submissions).
        """
        job.dispatched_at = time.monotonic()
        self.metrics.observe("queue_wait_seconds", job.dispatched_at - job.admitted_at)
        try:
            inner: Future = job.dispatch()
        except BaseException as exc:  # noqa: BLE001 - dispatch failure sheds one query
            self._release(job.analyst)
            self.metrics.inc("queries_failed")
            return exc
        self.metrics.inc("queries_admitted")
        inner.add_done_callback(lambda finished: self._on_done(job, finished))
        return None

    def _on_done(self, job: _Job, finished: Future) -> None:
        now = time.monotonic()
        self._release(job.analyst)
        self.metrics.observe("execute_seconds", now - job.dispatched_at)
        self.metrics.observe("query_seconds", now - job.admitted_at)
        error = finished.exception()
        if error is not None:
            self.metrics.inc("queries_failed")
            if not job.future.done():
                job.future.set_exception(error)
        else:
            counters = {"queries_completed": 1}
            if self._completion_counters is not None:
                try:
                    counters.update(self._completion_counters(finished.result()))
                except Exception:  # noqa: BLE001 - counters must never fail a query
                    pass
            self.metrics.inc_many(counters)
            if not job.future.done():
                job.future.set_result(finished.result())
        self._pump()

    # -- lifecycle --------------------------------------------------------------------

    def close(self, reason: BaseException | None = None) -> None:
        """Stop admitting and dispatching; fail every queued query.

        Already-dispatched queries are untouched (their futures resolve via
        the pool as usual) — ``close`` only empties the waiting room.
        """
        with self._lock:
            if self._closed is not None:
                return
            self._closed = reason or self._closed_error("gateway closed")
            jobs = [job for queue in self._queues.values() for job in queue]
            self._queues.clear()
            self._wrr_current.clear()
            self._update_queue_gauges()
            failure = self._closed
        for job in jobs:
            if not job.future.done():
                job.future.set_exception(
                    self._closed_error(f"query was still queued when the session closed: {failure}")
                )
