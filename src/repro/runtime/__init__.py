"""Distributed party-agent runtime (§4.1 deployment model).

The paper's prototype runs one Conclave *agent* per data-owning party; the
agents execute their local sub-plans against the party's cleartext engine
and meet in joint MPC steps over real datacentre links.  This package grows
the reproduction from a purely in-process simulation to that deployment
shape:

* :mod:`repro.runtime.transport` — the :class:`Transport` abstraction the
  party-to-party :class:`~repro.mpc.network.Network` sends its messages
  through.  :class:`SimulatedTransport` keeps the original in-process
  queues (and byte-for-byte identical :class:`NetworkStats` accounting);
  :class:`SocketTransport` moves every cross-party message over a real TCP
  connection between per-party OS processes.
* :mod:`repro.runtime.wire` / :mod:`repro.runtime.mesh` — length-prefixed
  pickle framing and the full TCP mesh connecting the party agents.
* :mod:`repro.runtime.executor` — the node-by-node plan executor shared by
  the in-process :class:`~repro.core.dispatch.QueryRunner` and the
  per-party agents.
* :mod:`repro.runtime.agent` / :mod:`repro.runtime.coordinator` — the
  long-lived per-party agent process and the driver that partitions the
  plan, ships each party its sub-plans and input tables, and collects the
  authorised reveals.
* :mod:`repro.runtime.service` — the persistent query service:
  :class:`QuerySession`/:class:`AgentPool` keep the agent processes and the
  TCP mesh alive across a *stream* of queries (query-id multiplexing,
  per-session compiled-plan caching, concurrent submission, drain-on-close,
  idle timeout and crash detection).  :func:`open_session` is the public
  entry point; ``runtime="service"`` on :func:`repro.core.compiler.run_query`
  reuses a shared session per party set.

Heavy modules (coordinator, agent, executor) are imported lazily so that
importing :mod:`repro.mpc.network` (which needs only the transports) does
not drag in the whole execution stack.
"""

from __future__ import annotations

from repro.runtime.transport import (
    Message,
    NetworkStats,
    SimulatedTransport,
    SocketTransport,
    Transport,
    TransportError,
)

__all__ = [
    "Message",
    "NetworkStats",
    "SimulatedTransport",
    "SocketTransport",
    "Transport",
    "TransportError",
    "PlanExecutor",
    "PartyAgent",
    "SocketCoordinator",
    "run_query_sockets",
    "AgentPool",
    "QuerySession",
    "SessionClosed",
    "open_session",
    "active_sessions",
    "close_shared_sessions",
    "QueryGateway",
    "QueryRejected",
    "GatewayMetrics",
    "LatencyHistogram",
    "MetricsServer",
    "AgentFailure",
    "AgentCrashed",
    "AgentSupervisor",
    "FaultPlan",
    "KillFault",
    "LinkFault",
    "FaultInjector",
]

_LAZY = {
    "PlanExecutor": ("repro.runtime.executor", "PlanExecutor"),
    "PartyAgent": ("repro.runtime.agent", "PartyAgent"),
    "SocketCoordinator": ("repro.runtime.coordinator", "SocketCoordinator"),
    "run_query_sockets": ("repro.runtime.coordinator", "run_query_sockets"),
    "AgentPool": ("repro.runtime.service", "AgentPool"),
    "QuerySession": ("repro.runtime.service", "QuerySession"),
    "SessionClosed": ("repro.runtime.service", "SessionClosed"),
    "open_session": ("repro.runtime.service", "open_session"),
    "active_sessions": ("repro.runtime.service", "active_sessions"),
    "close_shared_sessions": ("repro.runtime.service", "close_shared_sessions"),
    "QueryGateway": ("repro.runtime.gateway", "QueryGateway"),
    "QueryRejected": ("repro.runtime.gateway", "QueryRejected"),
    "GatewayMetrics": ("repro.runtime.metrics", "GatewayMetrics"),
    "LatencyHistogram": ("repro.runtime.metrics", "LatencyHistogram"),
    "MetricsServer": ("repro.runtime.metrics", "MetricsServer"),
    "AgentFailure": ("repro.runtime.service", "AgentFailure"),
    "AgentCrashed": ("repro.runtime.service", "AgentCrashed"),
    "AgentSupervisor": ("repro.runtime.supervisor", "AgentSupervisor"),
    "FaultPlan": ("repro.runtime.faults", "FaultPlan"),
    "KillFault": ("repro.runtime.faults", "KillFault"),
    "LinkFault": ("repro.runtime.faults", "LinkFault"),
    "FaultInjector": ("repro.runtime.faults", "FaultInjector"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
