"""Distributed party-agent runtime (§4.1 deployment model).

The paper's prototype runs one Conclave *agent* per data-owning party; the
agents execute their local sub-plans against the party's cleartext engine
and meet in joint MPC steps over real datacentre links.  This package grows
the reproduction from a purely in-process simulation to that deployment
shape:

* :mod:`repro.runtime.transport` — the :class:`Transport` abstraction the
  party-to-party :class:`~repro.mpc.network.Network` sends its messages
  through.  :class:`SimulatedTransport` keeps the original in-process
  queues (and byte-for-byte identical :class:`NetworkStats` accounting);
  :class:`SocketTransport` moves every cross-party message over a real TCP
  connection between per-party OS processes.
* :mod:`repro.runtime.wire` / :mod:`repro.runtime.mesh` — length-prefixed
  pickle framing and the full TCP mesh connecting the party agents.
* :mod:`repro.runtime.executor` — the node-by-node plan executor shared by
  the in-process :class:`~repro.core.dispatch.QueryRunner` and the
  per-party agents.
* :mod:`repro.runtime.agent` / :mod:`repro.runtime.coordinator` — the
  per-party agent process and the driver that partitions the plan, ships
  each party its sub-plans and input tables, and collects the authorised
  reveals.

Heavy modules (coordinator, agent, executor) are imported lazily so that
importing :mod:`repro.mpc.network` (which needs only the transports) does
not drag in the whole execution stack.
"""

from __future__ import annotations

from repro.runtime.transport import (
    Message,
    NetworkStats,
    SimulatedTransport,
    SocketTransport,
    Transport,
    TransportError,
)

__all__ = [
    "Message",
    "NetworkStats",
    "SimulatedTransport",
    "SocketTransport",
    "Transport",
    "TransportError",
    "PlanExecutor",
    "PartyAgent",
    "SocketCoordinator",
    "run_query_sockets",
]

_LAZY = {
    "PlanExecutor": ("repro.runtime.executor", "PlanExecutor"),
    "PartyAgent": ("repro.runtime.agent", "PartyAgent"),
    "SocketCoordinator": ("repro.runtime.coordinator", "SocketCoordinator"),
    "run_query_sockets": ("repro.runtime.coordinator", "run_query_sockets"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
