"""Per-party agent supervision: crash detection, restart, mesh rejoin.

The service runtime keeps one OS process per data-owning party alive across
a stream of queries.  Without supervision, any of those processes dying —
OOM kill, segfault in a native backend, an injected chaos fault — breaks the
whole session: every in-flight query fails terminally and the surviving
agents are torn down.  This module turns that into a *recoverable* event.

One :class:`AgentSupervisor` serves one :class:`~repro.runtime.service
.AgentPool`.  It owns two daemon threads:

* the **restart worker** consumes a queue of dead parties and restarts them
  strictly one at a time (two parties dying together recover sequentially —
  mesh rejoin choreography assumes one replacement in flight).  Each attempt
  runs the full recovery protocol below; a failed attempt burns a slot of
  the party's *restart budget* (:class:`~repro.core.config.RestartPolicy`:
  at most ``max_restarts`` deaths per ``window_seconds``, exponential
  backoff between attempts) and re-queues the party.  An exhausted budget
  escalates to a **permanent failure**: the pool breaks with a structured
  :class:`~repro.runtime.service.AgentFailure` carrying the attempt history.
* the **heartbeat thread** (optional, ``heartbeat_interval_seconds``) pings
  every live control link; an agent that misses ``heartbeat_misses``
  consecutive pongs is declared wedged and its process killed — which funnels
  into the same control-link-EOF crash path as a real death.  Agents answer
  pings without counting them as activity, so heartbeats never defeat the
  session's idle timeout.  Enforcement is suspended while a recovery is in
  progress (survivors legitimately stall while parked in the rejoin accept).

The recovery protocol for a dead ``party`` (all on the restart worker):

1. spawn a fresh agent process and accept its control-link hello;
2. send it a **rejoin session frame**: the standing session config plus
   ``rejoin=True``, a monotonically increasing ``epoch``, the party's
   standing inputs and fault sub-plan, and the pool's current released-id
   watermark (so the replacement's mesh drops late frames of finished
   queries instead of queueing them forever);
3. receive the replacement's new mesh port;
4. broadcast a ``rejoin`` control frame to every survivor, parking each in
   :func:`~repro.runtime.mesh.accept_rejoin` for the replacement's
   epoch-tagged dial (stale connections from earlier failed attempts are
   drained by the epoch check; on a session with a
   :class:`~repro.core.config.TransportSecurity`, the rejoin link is
   mutually-authenticated TLS and the hello must also echo the session
   nonce and match the dialler's certificate CN — a crashed party's
   identity cannot be claimed by an impostor during the rejoin window);
5. send the replacement the *live* peer ports; it dials every survivor via
   :func:`~repro.runtime.mesh.rejoin_mesh` and reports ``ready``;
6. await every survivor's ``rejoined`` acknowledgement (forwarded by the
   pool's receiver threads), then install the new process, control link and
   receiver thread into the pool, record ``agent_restarts`` /
   ``recovery_seconds`` metrics, and mark the pool healthy — unblocking the
   session-level query retries waiting in
   :meth:`~repro.runtime.service.AgentPool.wait_recovered`.

The supervisor never touches query state: failing and retrying in-flight
queries is the session layer's job (:class:`~repro.core.config.RetryPolicy`).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.core.config import RestartPolicy


class AgentSupervisor:
    """Watches one pool's agent processes; restarts the ones that die."""

    def __init__(self, pool, policy: RestartPolicy, metrics=None):
        self._pool = pool
        self.policy = policy.validate()
        self._metrics = metrics
        self._lock = threading.Lock()
        self._dead: deque[tuple[str, BaseException]] = deque()
        self._wake = threading.Condition(self._lock)
        self._stopped = False
        #: Per-party death timestamps inside the budget window, and the
        #: structured attempt history carried by a permanent failure.
        self._death_times: dict[str, list[float]] = {}
        self._attempts: dict[str, list[dict]] = {}
        self._epoch = 0
        #: Parties whose restart is queued or in progress (dedup guard).
        self._recovering: set[str] = set()
        self._restart_in_progress = False
        #: (peer, epoch) -> ack payload from the survivor's "rejoined" frame.
        self._rejoined: dict[tuple[str, int], dict] = {}
        #: Heartbeat bookkeeping: pings sent minus pongs seen, per party.
        self._hb_outstanding: dict[str, int] = {}
        self._hb_seq = 0

        self._worker = threading.Thread(
            target=self._restart_loop, daemon=True, name="agent-supervisor"
        )
        self._worker.start()
        self._heartbeat_thread = None
        if self.policy.heartbeat_interval_seconds is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True, name="agent-heartbeat"
            )
            self._heartbeat_thread.start()

    # -- events from the pool ----------------------------------------------------------

    def notify_death(self, party: str, exc: BaseException) -> None:
        """A control link died; queue the party for restart (idempotent)."""
        with self._wake:
            if self._stopped or party in self._recovering:
                return
            self._recovering.add(party)
            self._dead.append((party, exc))
            self._wake.notify_all()

    def note_pong(self, party: str, seq) -> None:
        with self._lock:
            self._hb_outstanding[party] = 0

    def note_rejoined(self, party: str, info: dict) -> None:
        """A survivor acknowledged (or failed) a rejoin accept."""
        with self._wake:
            self._rejoined[(party, info.get("epoch", -1))] = info
            self._wake.notify_all()

    def stop(self) -> None:
        with self._wake:
            self._stopped = True
            self._wake.notify_all()

    # -- restart worker ----------------------------------------------------------------

    def _restart_loop(self) -> None:
        while True:
            with self._wake:
                while not self._dead and not self._stopped:
                    self._wake.wait(timeout=1.0)
                if self._stopped:
                    return
                party, cause = self._dead.popleft()
                self._restart_in_progress = True
                self._epoch += 1
                epoch = self._epoch
            try:
                self._recover_party(party, cause, epoch)
            finally:
                with self._wake:
                    self._restart_in_progress = False

    def _recover_party(self, party: str, cause: BaseException, epoch: int) -> None:
        policy = self.policy
        now = time.monotonic()
        times = self._death_times.setdefault(party, [])
        times.append(now)
        # Slide the budget window.
        times[:] = [t for t in times if now - t <= policy.window_seconds]
        attempt_no = len(self._attempts.setdefault(party, [])) + 1
        record = {
            "party": party,
            "attempt": attempt_no,
            "epoch": epoch,
            "cause": repr(cause),
        }
        if len(times) > policy.max_restarts:
            record["outcome"] = "budget-exhausted"
            self._attempts[party].append(record)
            self._escalate(party, cause)
            return

        backoff = min(
            policy.backoff_seconds * policy.backoff_multiplier ** (len(times) - 1),
            policy.max_backoff_seconds,
        )
        if backoff > 0:
            time.sleep(backoff)
        started = time.monotonic()
        try:
            self._pool.restart_party(party, epoch, self)
        except BaseException as exc:  # noqa: BLE001 - a failed attempt is re-queued
            record["outcome"] = f"failed: {exc}"
            record["error"] = repr(exc)
            self._attempts[party].append(record)
            if self._metrics is not None:
                self._metrics.inc("agent_restart_failures")
            with self._wake:
                if self._stopped:
                    return
                # Re-queue: the *next* attempt re-evaluates the budget, so a
                # party whose restarts keep failing escalates via the same
                # window arithmetic as one that keeps crashing.
                self._dead.append((party, exc))
            return
        record["outcome"] = "restarted"
        record["recovery_seconds"] = time.monotonic() - started
        self._attempts[party].append(record)
        if self._metrics is not None:
            self._metrics.inc("agent_restarts")
            self._metrics.observe("recovery_seconds", record["recovery_seconds"])
        with self._lock:
            self._recovering.discard(party)
            self._hb_outstanding[party] = 0

    def _escalate(self, party: str, cause: BaseException) -> None:
        history = [dict(r) for records in self._attempts.values() for r in records]
        self.stop()
        self._pool.fail_permanently(party, history, cause)

    def await_rejoined(self, peers: list[str], epoch: int, timeout: float) -> None:
        """Block until every survivor acked this epoch's rejoin (or fail)."""
        deadline = time.monotonic() + timeout
        with self._wake:
            while True:
                missing = [p for p in peers if (p, epoch) not in self._rejoined]
                failed = [
                    (p, self._rejoined[(p, epoch)])
                    for p in peers
                    if (p, epoch) in self._rejoined and not self._rejoined[(p, epoch)].get("ok")
                ]
                if failed:
                    peer, info = failed[0]
                    raise RuntimeError(
                        f"survivor {peer!r} failed to accept the rejoin (epoch {epoch}): "
                        f"{info.get('error', 'unknown error')}"
                    )
                if not missing:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stopped:
                    raise TimeoutError(
                        f"survivors {missing} never acknowledged the rejoin (epoch {epoch})"
                    )
                self._wake.wait(timeout=min(remaining, 1.0))

    # -- heartbeats --------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = self.policy.heartbeat_interval_seconds
        while True:
            with self._wake:
                if self._stopped:
                    return
                suspended = self._restart_in_progress or bool(self._recovering)
            if suspended:
                # Survivors may be parked in a rejoin accept; silence is
                # expected, so neither ping nor judge until recovery settles.
                with self._lock:
                    for party in list(self._hb_outstanding):
                        self._hb_outstanding[party] = 0
            else:
                with self._lock:
                    self._hb_seq += 1
                    seq = self._hb_seq
                stale = []
                for party in self._pool.live_parties():
                    with self._lock:
                        outstanding = self._hb_outstanding.get(party, 0)
                    if outstanding >= self.policy.heartbeat_misses:
                        stale.append(party)
                        continue
                    if self._pool.send_ping(party, seq):
                        with self._lock:
                            self._hb_outstanding[party] = outstanding + 1
                for party in stale:
                    with self._lock:
                        self._hb_outstanding[party] = 0
                    # A wedged agent: kill the process so the control link
                    # EOFs and the ordinary crash path takes over.
                    self._pool.kill_party(party, reason="missed heartbeats")
            with self._wake:
                if self._stopped:
                    return
                self._wake.wait(timeout=interval)

    # -- introspection ------------------------------------------------------------------

    def attempt_history(self, party: str | None = None) -> list[dict]:
        """Copies of the per-attempt records (all parties by default)."""
        with self._lock:
            if party is not None:
                return [dict(r) for r in self._attempts.get(party, [])]
            return [dict(r) for records in self._attempts.values() for r in records]
