"""Typed expression AST for the analyst-facing frontend.

Analysts build predicates and derived columns with ordinary Python
operators over :func:`col` and :func:`lit`::

    import repro as cc

    paid   = trips.filter(cc.col("price") > 0)
    flagged = scores.filter((cc.col("score") > 600) & ~(cc.col("region") == 4))
    shares  = revenue.with_column("share", cc.col("local_rev") / cc.col("total_rev"))

Expressions are *descriptions*, not computations: the frontend lowers each
expression into the compiler's existing operator vocabulary (``Filter``,
``Multiply``, ``Divide``) plus the row-wise ``Compare``, ``BoolOp`` and
``Map`` operators, so every downstream pass — ownership/trust propagation,
MPC-frontier push-down, hybrid rewrites, partitioning, and all execution
backends — sees plain relational operators and needs no knowledge of the
AST.  The lowering lives in :mod:`repro.core.lang`; this module only defines
the node types and the structural analyses the lowering relies on
(column-set extraction, conjunction flattening, simple-predicate
classification).

Design notes:

* ``==`` and ``!=`` are overloaded to build :class:`Comparison` nodes, so
  expression objects are identity-hashed and must not be used as dict keys
  expecting value semantics.
* ``&``, ``|`` and ``~`` build boolean nodes (Python's ``and``/``or``/``not``
  cannot be overloaded); comparisons bind tighter than ``&``/``|`` only when
  parenthesised, exactly as in pandas/PySpark.
* Arithmetic on two booleans or boolean tests of arithmetic results are
  permitted — booleans lower to 0/1 integer columns.
"""

from __future__ import annotations

from typing import Iterator, Union

#: Comparison operators an expression (and the ``Filter`` operator) may use.
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: Arithmetic operators supported in expressions.
ARITHMETIC_OPS = ("+", "-", "*", "/")

_MIRRORED = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_COMPLEMENTED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

Scalar = Union[int, float]


class Expr:
    """Base class of all expression nodes."""

    __hash__ = object.__hash__

    # -- structural analyses -----------------------------------------------------------

    def columns(self) -> set[str]:
        """Names of every input column this expression reads.

        The frontier pass uses this to decide whether an expression-derived
        operator can be pushed below a partition point, and the frontend uses
        it for eager schema validation.
        """
        return {node.name for node in self.walk() if isinstance(node, ColumnRef)}

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every sub-expression (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Expr", ...]:
        return ()

    def is_boolean(self) -> bool:
        """True for nodes that evaluate to a 0/1 truth value."""
        return isinstance(self, (Comparison, BooleanOp, Negation))

    # -- operator overloading ------------------------------------------------------------

    def _arith(self, op: str, other, reflected: bool = False) -> "Arithmetic":
        other = _coerce(other)
        return Arithmetic(other, op, self) if reflected else Arithmetic(self, op, other)

    def __add__(self, other):
        return self._arith("+", other)

    def __radd__(self, other):
        return self._arith("+", other, reflected=True)

    def __sub__(self, other):
        return self._arith("-", other)

    def __rsub__(self, other):
        return self._arith("-", other, reflected=True)

    def __mul__(self, other):
        return self._arith("*", other)

    def __rmul__(self, other):
        return self._arith("*", other, reflected=True)

    def __truediv__(self, other):
        return self._arith("/", other)

    def __rtruediv__(self, other):
        return self._arith("/", other, reflected=True)

    def __neg__(self):
        return Arithmetic(Literal(0), "-", self)

    def _compare(self, op: str, other) -> "Comparison":
        return Comparison(self, op, _coerce(other))

    def __eq__(self, other):  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare("!=", other)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    def __and__(self, other):
        return BooleanOp("and", (_require_boolean(self, "&"), _require_boolean(other, "&")))

    def __rand__(self, other):
        return BooleanOp("and", (_require_boolean(other, "&"), _require_boolean(self, "&")))

    def __or__(self, other):
        return BooleanOp("or", (_require_boolean(self, "|"), _require_boolean(other, "|")))

    def __ror__(self, other):
        return BooleanOp("or", (_require_boolean(other, "|"), _require_boolean(self, "|")))

    def __invert__(self):
        return Negation(_require_boolean(self, "~"))

    def __bool__(self):
        raise TypeError(
            "Conclave expressions have no truth value; use & (and), | (or) and "
            "~ (not) to combine predicates instead of and/or/not"
        )


class ColumnRef(Expr):
    """Reference to a column of the relation the expression is applied to."""

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("col() needs a non-empty column name")
        self.name = name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expr):
    """A public scalar constant embedded in the query."""

    def __init__(self, value: Scalar):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"lit() supports int/float constants, got {type(value).__name__}")
        self.value = value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Arithmetic(Expr):
    """Binary arithmetic: ``left <op> right`` with ``op`` in ``+ - * /``."""

    def __init__(self, left: Expr, op: str, right: Expr):
        if op not in ARITHMETIC_OPS:
            raise ValueError(f"unsupported arithmetic op {op!r}; supported: {ARITHMETIC_OPS}")
        self.left = left
        self.op = op
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Comparison(Expr):
    """Row-wise comparison producing a 0/1 truth value."""

    def __init__(self, left: Expr, op: str, right: Expr):
        if op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison op {op!r}; supported: {COMPARISON_OPS}")
        self.left = left
        self.op = op
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def normalised(self) -> "Comparison":
        """Return an equivalent comparison with any literal on the right."""
        if isinstance(self.left, Literal) and not isinstance(self.right, Literal):
            return Comparison(self.right, _MIRRORED[self.op], self.left)
        return self

    def is_simple(self) -> bool:
        """True for ``column <op> constant`` — the shape ``Filter`` handles natively."""
        norm = self.normalised()
        return isinstance(norm.left, ColumnRef) and isinstance(norm.right, Literal)

    def complement(self) -> "Comparison":
        """The logically negated comparison (``not (a < b)`` is ``a >= b``)."""
        return Comparison(self.left, _COMPLEMENTED[self.op], self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expr):
    """N-ary conjunction or disjunction of boolean sub-expressions."""

    def __init__(self, op: str, operands: tuple[Expr, ...]):
        if op not in ("and", "or"):
            raise ValueError(f"boolean op must be 'and' or 'or', got {op!r}")
        if len(operands) < 2:
            raise ValueError("boolean op needs at least two operands")
        # Flatten nested same-op nodes so (a & b) & c lowers to one chain.
        flat: list[Expr] = []
        for operand in operands:
            if not operand.is_boolean():
                raise TypeError(
                    f"boolean {op!r} operands must be predicates, got {operand!r}"
                )
            if isinstance(operand, BooleanOp) and operand.op == op:
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        self.op = op
        self.operands: tuple[Expr, ...] = tuple(flat)

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def __repr__(self) -> str:
        sep = f" {'&' if self.op == 'and' else '|'} "
        return "(" + sep.join(repr(o) for o in self.operands) + ")"


class Negation(Expr):
    """Logical negation of a boolean sub-expression."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


# -- public constructors ---------------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """Reference a column of the relation an expression is applied to."""
    return ColumnRef(name)


def lit(value: Scalar) -> Literal:
    """Embed a public scalar constant in an expression."""
    return Literal(value)


# -- helpers used by the lowering ------------------------------------------------------------


def _coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(
            f"cannot use {type(value).__name__} in an expression; wrap columns with "
            "col() and constants with lit()"
        )
    return Literal(value)


def _require_boolean(value, operator: str) -> Expr:
    value = _coerce(value)
    if not value.is_boolean():
        raise TypeError(
            f"operands of {operator} must be predicates (comparisons or boolean "
            f"combinations), got {value!r}"
        )
    return value


def conjuncts(expr: Expr) -> list[Expr]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(expr, BooleanOp) and expr.op == "and":
        return list(expr.operands)
    return [expr]


def as_simple_comparison(expr: Expr) -> "Comparison | None":
    """A ``column <op> constant`` comparison equivalent to ``expr``, or None.

    Recognises plain simple comparisons and their negations (``~(a == 1)``
    is ``a != 1``), so the filter lowering can keep both on the cheap
    ``Filter`` fast path instead of materialising a mask column.
    """
    if isinstance(expr, Comparison) and expr.is_simple():
        return expr
    if isinstance(expr, Negation):
        inner = expr.operand
        if isinstance(inner, Comparison) and inner.is_simple():
            return inner.complement()
    return None


def validate_columns(expr: Expr, available: set[str], context: str) -> None:
    """Eagerly reject expressions referencing unknown columns."""
    missing = sorted(expr.columns() - available)
    if missing:
        raise KeyError(
            f"{context} references unknown column(s) {missing}; have {sorted(available)}"
        )
