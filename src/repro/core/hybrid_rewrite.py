"""Hybrid operator insertion (§5.3).

After trust propagation, operators running under MPC whose key columns have
a non-empty trust set can be replaced by hybrid operators:

* an MPC join whose two key columns share a trusted party becomes a
  :class:`~repro.core.operators.HybridJoin` with that party as the
  selectively-trusted party (STP);
* an MPC join whose key columns are public on both sides becomes a
  :class:`~repro.core.operators.PublicJoin` hosted by one party;
* an MPC grouped aggregation whose group-by column has a trusted party
  becomes a :class:`~repro.core.operators.HybridAggregate`.

Only a single STP may exist in one Conclave execution; when several
candidate parties are available the pass deterministically picks the one
usable by the largest number of operators (ties broken by name), restricted
to ``config.allowed_stps`` when set.
"""

from __future__ import annotations

from collections import Counter

from repro.core.config import CompilationConfig
from repro.core.dag import Dag
from repro.core.operators import (
    Aggregate,
    HybridAggregate,
    HybridJoin,
    Join,
    PublicJoin,
)
from repro.core.propagation import intersect_trust, propagate_ownership, propagate_trust, mark_mpc_frontier
from repro.data.schema import PUBLIC


def apply_hybrid_operators(dag: Dag, config: CompilationConfig) -> list[str]:
    """Insert hybrid operators where trust annotations permit.

    Returns a human-readable list of the rewrites applied (useful for the
    compilation report and the tests).
    """
    propagate_trust(dag)
    all_parties = dag.parties()
    candidates = _collect_candidates(dag, all_parties, config)
    stp = _choose_stp(candidates, config)

    applied: list[str] = []
    for node, kind, parties in candidates:
        if not node.is_mpc or node.parents == []:
            continue
        if kind == "public_join":
            host = _choose_host(node, all_parties)
            new_node = _replace_join(node, PublicJoin, host=host)
            applied.append(f"public_join({new_node.out_rel.name}) host={host}")
        elif kind == "hybrid_join" and stp is not None and stp in parties:
            new_node = _replace_join(node, HybridJoin, stp=stp)
            applied.append(f"hybrid_join({new_node.out_rel.name}) stp={stp}")
        elif kind == "hybrid_aggregate" and stp is not None and stp in parties:
            new_node = _replace_aggregate(node, stp)
            applied.append(f"hybrid_aggregate({new_node.out_rel.name}) stp={stp}")

    propagate_ownership(dag)
    mark_mpc_frontier(dag)
    propagate_trust(dag)
    return applied


def _collect_candidates(dag: Dag, all_parties: set[str], config: CompilationConfig):
    """Find MPC joins/aggregations eligible for a hybrid rewrite."""
    candidates = []
    for node in dag.topological():
        if not node.is_mpc:
            continue
        if isinstance(node, (HybridJoin, PublicJoin, HybridAggregate)):
            continue
        if isinstance(node, Join):
            left_rel, right_rel = node.parents[0].out_rel, node.parents[1].out_rel
            left_trust = left_rel.column_trust(node.left_on)
            right_trust = right_rel.column_trust(node.right_on)
            if PUBLIC in left_trust and PUBLIC in right_trust:
                candidates.append((node, "public_join", set(all_parties)))
                continue
            # The STP may be any party the annotations name — including one
            # that contributes no input and only assists the MPC (§3.2).
            shared = intersect_trust(left_trust, right_trust) - {PUBLIC}
            if shared:
                candidates.append((node, "hybrid_join", set(shared)))
        elif (
            isinstance(node, Aggregate)
            and node.group_col is not None
            and node.func in ("sum", "count")
        ):
            parent_rel = node.parent.out_rel
            group_trust = parent_rel.column_trust(node.group_col)
            trusted = set(group_trust) - {PUBLIC}
            if PUBLIC in group_trust:
                trusted = trusted | set(all_parties)
            if trusted:
                candidates.append((node, "hybrid_aggregate", trusted))
    return candidates


def _choose_stp(candidates, config: CompilationConfig) -> str | None:
    """Pick the single STP used for this query execution."""
    votes: Counter[str] = Counter()
    for _node, kind, parties in candidates:
        if kind == "public_join":
            continue
        for party in parties:
            if config.allowed_stps is None or party in config.allowed_stps:
                votes[party] += 1
    if not votes:
        return None
    best = max(votes.values())
    top = sorted(p for p, v in votes.items() if v == best)
    return top[0]


def _choose_host(node: Join, all_parties: set[str]) -> str:
    """Pick the party computing a public join in the clear."""
    stored = set()
    for parent in node.parents:
        stored |= parent.out_rel.stored_with
    pool = sorted(stored or all_parties)
    return pool[0]


def _replace_join(node: Join, cls, **extra) -> Join:
    left, right = node.parents
    new_node = cls(node.out_rel, left, right, node.left_on, node.right_on, **extra)
    # The constructor appended new_node to the parents' child lists; detach
    # the old node and transfer its children.
    for parent in (left, right):
        parent.children.remove(node)
    for child in list(node.children):
        child.replace_parent(node, new_node)
    node.parents = []
    node.children = []
    return new_node


def _replace_aggregate(node: Aggregate, stp: str) -> HybridAggregate:
    parent = node.parent
    new_node = HybridAggregate(
        node.out_rel, parent, node.group_col, node.agg_col, node.func, node.out_name, stp
    )
    new_node.is_secondary = node.is_secondary
    new_node.presorted = node.presorted
    parent.children.remove(node)
    for child in list(node.children):
        child.replace_parent(node, new_node)
    node.parents = []
    node.children = []
    return new_node
