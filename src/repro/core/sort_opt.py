"""Reducing oblivious operations (§5.4).

Oblivious sorts dominate the cost of MPC aggregations and order-bys.  This
pass tracks, for every intermediate relation, the column it is known to be
sorted by, and uses that information to

* drop ``SortBy`` operators whose input is already sorted by the same
  column, and
* mark aggregations (and distincts) whose input is already grouped by the
  group-by column as ``presorted``, so the backends skip their internal
  sorting network.

Order tracking rules: order-preserving unary operators (project, filter,
arithmetic, limit) propagate the sort column as long as it survives the
projection; joins, concats and oblivious shuffles destroy it; sort-based
operators (sort, aggregation, public join) establish it.
"""

from __future__ import annotations

import itertools

from repro.core.config import CompilationConfig
from repro.core.dag import Dag
from repro.core.operators import (
    Aggregate,
    Collect,
    Concat,
    Create,
    Distinct,
    HybridJoin,
    Join,
    Limit,
    Merge,
    OpNode,
    Project,
    PublicJoin,
    SortBy,
)
from repro.core.propagation import mark_mpc_frontier, propagate_ownership, propagate_trust
from repro.core.relation import Relation

_fresh_sort = itertools.count()


def eliminate_redundant_sorts(dag: Dag, config: CompilationConfig) -> int:
    """Annotate sort order through the DAG and drop redundant sorts.

    Returns the number of oblivious sorts eliminated or avoided (dropped
    ``SortBy`` nodes plus aggregations marked ``presorted``).
    """
    removed = 0
    for node in dag.topological():
        if isinstance(node, Create):
            # Analysts may declare inputs as pre-sorted via the relation.
            continue

        input_order = node.parents[0].out_rel.sorted_by if node.parents else None

        if isinstance(node, SortBy):
            if input_order == node.column:
                # The relation is already in the right order: splice the sort out.
                parent = node.parent
                parent.out_rel.sorted_by = node.column
                node.out_rel.sorted_by = node.column
                node.remove_from_dag()
                removed += 1
                continue
            node.out_rel.sorted_by = node.column
            continue

        if isinstance(node, Aggregate):
            if node.group_col is not None and input_order == node.group_col and not node.presorted:
                node.presorted = True
                removed += 1
            node.out_rel.sorted_by = node.group_col
            continue

        if isinstance(node, Distinct):
            node.out_rel.sorted_by = node.columns[0] if node.columns else None
            continue

        if isinstance(node, Merge):
            node.out_rel.sorted_by = node.column
            continue

        if isinstance(node, PublicJoin):
            # The host joins in the clear and can emit the result ordered by
            # the join key at no extra cost.
            node.out_rel.sorted_by = node.left_on
            continue

        if isinstance(node, (HybridJoin, Join)):
            # Hybrid joins end with an oblivious shuffle; MPC joins shuffle too.
            node.out_rel.sorted_by = None
            continue

        if isinstance(node, Concat):
            node.out_rel.sorted_by = None
            continue

        if node.order_preserving:
            if input_order is not None and input_order in node.out_rel.schema:
                node.out_rel.sorted_by = input_order
            else:
                node.out_rel.sorted_by = None
            continue

        node.out_rel.sorted_by = None

    return removed


def push_up_sorts(dag: Dag, config: CompilationConfig) -> int:
    """Push oblivious sorts through ``concat`` into per-party cleartext sorts.

    The paper sketches this as an extension of §5.4: a sort whose input is a
    concat of singleton-owned relations can be replaced by local sorts at
    each contributing party followed by an oblivious *merge* — O(n log n)
    multiplications instead of an O(n log^2 n) comparison network.  The
    rewrite is applied only when ``config.enable_sort_pushup`` is set.

    Returns the number of sorts rewritten.
    """
    if not config.enable_sort_pushup:
        return 0
    rewritten = 0
    for sort in list(dag.find(lambda n: isinstance(n, SortBy))):
        if not sort.is_mpc or not sort.parents:
            continue
        concat = sort.parent
        if not isinstance(concat, Concat) or len(concat.children) != 1:
            continue
        owners = [p.out_rel.owner for p in concat.parents]
        if any(owner is None for owner in owners):
            continue
        _split_sort_through_concat(sort, concat)
        rewritten += 1
    if rewritten:
        propagate_ownership(dag)
        mark_mpc_frontier(dag)
        propagate_trust(dag)
    return rewritten


def _split_sort_through_concat(sort: SortBy, concat: Concat) -> None:
    """Rewrite ``sort(concat(R1..Rn))`` into ``merge(sort(R1)..sort(Rn))``."""
    per_party_sorts = []
    for parent in concat.parents:
        rel = Relation(
            name=f"{sort.out_rel.name}__{parent.out_rel.owner}_{next(_fresh_sort)}",
            schema=sort.out_rel.schema,
            stored_with=set(parent.out_rel.stored_with),
        )
        per_party_sorts.append(SortBy(rel, parent, sort.column, sort.ascending))

    merge = Merge(
        sort.out_rel.copy(f"{sort.out_rel.name}__merged_{next(_fresh_sort)}"),
        per_party_sorts,
        sort.column,
        sort.ascending,
    )
    for child in list(sort.children):
        child.replace_parent(sort, merge)
    concat.children.remove(sort)
    sort.parents = []
    sort.children = []
    if not concat.children:
        for parent in list(concat.parents):
            parent.children.remove(concat)
        concat.parents = []
