"""Frontend column specifications and type constants.

These are the names analysts use when declaring input relations, mirroring
Listing 1/2 of the paper::

    schema = [cc.Column("ssn", cc.INT, trust=[regulator]),
              cc.Column("score", cc.INT)]

A :class:`Column` here is a *frontend* specification; the compiler converts
it to the data plane's :class:`~repro.data.schema.ColumnDef`, resolving the
``trust`` list of :class:`~repro.core.party.Party` objects into a set of
party names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.party import Party
from repro.data.schema import ColumnDef, ColumnType, PUBLIC, Schema

#: Frontend aliases for column types.
INT = ColumnType.INT
FLOAT = ColumnType.FLOAT


@dataclass(frozen=True)
class AggSpec:
    """One aggregate of a multi-aggregate ``aggregate`` call.

    Built by calling an aggregation function: ``SUM("price")``,
    ``COUNT()``, ``MEAN("score")``.  ``over`` is the aggregated column
    (``None`` only for ``count``).
    """

    func: str
    over: str | None = None

    def __post_init__(self) -> None:
        func = self.func.lower()
        object.__setattr__(self, "func", func)
        if func != "count" and self.over is None:
            raise ValueError(f"aggregation {func!r} needs a column: {func.upper()}('col')")


class AggFunc(str):
    """Aggregation function usable both as the legacy string constant and as
    a callable building an :class:`AggSpec` for the expression frontend.

    ``SUM`` compares equal to ``"sum"`` (so pre-redesign call sites keep
    working) while ``SUM("price")`` names the aggregated column for the
    multi-aggregate ``aggregate(group=..., aggs=...)`` form.
    """

    def __call__(self, over: str | None = None) -> AggSpec:
        return AggSpec(str(self), over)


#: Frontend aliases for aggregation functions.
SUM = AggFunc("sum")
COUNT = AggFunc("count")
MIN = AggFunc("min")
MAX = AggFunc("max")
MEAN = AggFunc("mean")


@dataclass
class Column:
    """Frontend column specification with an optional trust annotation.

    ``trust`` lists parties authorised to learn this column in the clear
    (§4.3); pass :data:`PUBLIC_COLUMN` (or ``public=True``) to mark the
    column as public to every party.
    """

    name: str
    ctype: ColumnType = INT
    trust: Sequence[Party] = field(default_factory=tuple)
    public: bool = False

    def to_column_def(self, owner: Party | None = None) -> ColumnDef:
        """Convert to a data-plane column definition.

        The owning party is implicitly a member of every trust set
        (§4.3: "A party storing an input relation is implicitly in the
        trust set for all its columns").
        """
        trust: set[str] = set()
        if self.public:
            trust.add(PUBLIC)
        for party in self.trust:
            trust.add(party.name if isinstance(party, Party) else str(party))
        if owner is not None:
            trust.add(owner.name)
        return ColumnDef(self.name, self.ctype, frozenset(trust))


def build_schema(columns: Iterable[Column], owner: Party | None = None) -> Schema:
    """Convert a list of frontend columns into a data-plane schema."""
    return Schema([c.to_column_def(owner) for c in columns])
