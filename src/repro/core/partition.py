"""DAG partitioning into per-backend sub-plans (compilation stage 6, part 1).

After the rewrite passes every operator carries an execution *locus*: either
``("mpc", "joint")`` or ``("local", <party>)``.  The partitioner walks the
DAG in topological order and groups maximal runs of consecutive nodes with
the same locus into :class:`SubPlan` objects.  Because grouping follows the
topological order, the resulting sub-plan list is itself a valid execution
order; the dispatcher and the code generators consume it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dag import Dag
from repro.core.operators import Collect, Create, OpNode


@dataclass
class SubPlan:
    """A maximal run of operators executing on the same backend/party."""

    index: int
    #: ``"mpc"`` or ``"local"``.
    kind: str
    #: Executing party for local sub-plans; ``"joint"`` for MPC sub-plans.
    party: str
    nodes: list[OpNode] = field(default_factory=list)

    @property
    def relation_names(self) -> list[str]:
        return [n.out_rel.name for n in self.nodes]

    def input_relations(self) -> list[str]:
        """Relations consumed from outside this sub-plan."""
        produced = {n.out_rel.name for n in self.nodes}
        inputs: list[str] = []
        for node in self.nodes:
            for parent in node.parents:
                name = parent.out_rel.name
                if name not in produced and name not in inputs:
                    inputs.append(name)
        return inputs

    def output_relations(self) -> list[str]:
        """Relations produced here and consumed by later sub-plans (or outputs)."""
        produced = {n.out_rel.name for n in self.nodes}
        outputs: list[str] = []
        for node in self.nodes:
            is_output = isinstance(node, Collect)
            consumed_outside = any(
                child.out_rel.name not in produced for child in node.children
            ) or not node.children
            if (is_output or consumed_outside) and node.out_rel.name not in outputs:
                outputs.append(node.out_rel.name)
        return outputs

    def __repr__(self) -> str:
        return (
            f"SubPlan(#{self.index}, {self.kind}@{self.party}, "
            f"ops=[{', '.join(n.op_name for n in self.nodes)}])"
        )


def partition_dag(dag: Dag) -> list[SubPlan]:
    """Split the DAG into an ordered list of per-locus sub-plans."""
    subplans: list[SubPlan] = []
    current: SubPlan | None = None

    for node in dag.topological():
        kind, party = node.locus()
        if isinstance(node, Create):
            kind, party = "local", node.out_rel.owner or party
        if current is None or current.kind != kind or current.party != party:
            current = SubPlan(index=len(subplans), kind=kind, party=party)
            subplans.append(current)
        current.nodes.append(node)

    return subplans


def describe_partitioning(subplans: list[SubPlan]) -> str:
    """Render the sub-plan structure as readable text (for explain output)."""
    lines = []
    for sp in subplans:
        lines.append(f"--- sub-plan {sp.index}: {sp.kind} @ {sp.party} ---")
        for node in sp.nodes:
            inputs = ", ".join(p.out_rel.name for p in node.parents) or "-"
            lines.append(f"    {node.op_name:<18} {node.out_rel.name:<30} <- [{inputs}]")
    return "\n".join(lines)
