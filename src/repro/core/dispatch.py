"""Multi-party execution of a compiled query.

The dispatcher plays the role of the per-party Conclave agents (§4.1): it
instantiates one cleartext backend per party and one MPC backend for the
joint steps, executes the compiled DAG node by node in topological order,
and moves relations across the MPC boundary exactly where the plan says —
secret-sharing local relations into MPC, revealing MPC relations only to
parties the plan authorises, and routing hybrid operators through the
selectively-trusted party.

Alongside the actual results, the dispatcher produces:

* a simulated wall-clock time, computed from the backends' cost models with
  a completion-time recurrence so that independent local work at different
  parties overlaps (as it would on real, separate clusters), and
* a :class:`~repro.hybrid.stp.LeakageReport` listing every value or
  cardinality that left the cryptographic envelope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cleartext.python_engine import PythonBackend
from repro.cleartext.spark_sim import SparkBackend
from repro.core.config import CompilationConfig
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    HybridAggregate,
    HybridJoin,
    Join,
    Limit,
    Map,
    Merge,
    Multiply,
    OpNode,
    Project,
    PublicJoin,
    SortBy,
)
from repro.data.schema import PUBLIC
from repro.data.table import Table
from repro.hybrid.hybrid_agg import hybrid_aggregate
from repro.hybrid.hybrid_join import hybrid_join
from repro.hybrid.public_join import public_join
from repro.hybrid.stp import LeakageReport, SelectivelyTrustedParty
from repro.mpc.garbled import OblivCBackend
from repro.mpc.sharemind import SharemindBackend


class SecurityError(RuntimeError):
    """Raised when an execution step would reveal data to an unauthorised party."""


@dataclass
class _Entry:
    """A relation handle plus where it currently lives."""

    kind: str  # "local" or "mpc"
    party: str | None
    handle: object


@dataclass
class QueryResult:
    """Outputs and accounting of one query execution."""

    outputs: dict[str, Table]
    simulated_seconds: float
    wall_seconds: float
    leakage: LeakageReport
    backend_seconds: dict[str, float] = field(default_factory=dict)

    def output(self, name: str) -> Table:
        if name not in self.outputs:
            raise KeyError(f"no output named {name!r}; have {sorted(self.outputs)}")
        return self.outputs[name]


def load_party_inputs(input_dirs: dict[str, str]) -> dict[str, dict[str, Table]]:
    """Load each party's input relations from its CSV directory.

    ``input_dirs`` maps party name to a directory containing one
    ``<relation>.csv`` file per input relation the party owns — the same
    layout the per-party Conclave agents use in the original prototype.
    """
    from pathlib import Path

    from repro.data.csvio import read_csv

    inputs: dict[str, dict[str, Table]] = {}
    for party, directory in input_dirs.items():
        path = Path(directory)
        if not path.is_dir():
            raise FileNotFoundError(f"input directory for party {party!r} not found: {path}")
        inputs[party] = {
            csv_file.stem: read_csv(csv_file) for csv_file in sorted(path.glob("*.csv"))
        }
    return inputs


def run_query_from_csv(
    compiled,
    input_dirs: dict[str, str],
    output_dir: str | None = None,
    config: CompilationConfig | None = None,
    seed: int = 0,
) -> QueryResult:
    """Execute a compiled query whose inputs live in per-party CSV directories.

    Outputs are returned as tables and, when ``output_dir`` is given, also
    written there as ``<relation>.csv`` (one file per query output).
    """
    from pathlib import Path

    from repro.data.csvio import write_csv

    config = config or compiled.config
    inputs = load_party_inputs(input_dirs)
    parties = sorted(set(input_dirs) | compiled.dag.parties())
    runner = QueryRunner(parties, inputs, config, seed=seed)
    result = runner.run(compiled)
    if output_dir is not None:
        for name, table in result.outputs.items():
            write_csv(table, Path(output_dir) / f"{name}.csv")
    return result


class QueryRunner:
    """Executes compiled queries over in-memory party inputs."""

    def __init__(
        self,
        parties: list[str],
        inputs: dict[str, dict[str, Table]],
        config: CompilationConfig | None = None,
        seed: int = 0,
    ):
        self.parties = list(parties)
        self.inputs = inputs
        self.config = config or CompilationConfig()
        self.seed = seed
        self.local_backends = {p: self._make_cleartext_backend() for p in self.parties}
        # A single-party query never crosses the MPC boundary; the MPC
        # substrates require at least two computing parties.
        self.mpc_backend = self._make_mpc_backend() if len(self.parties) >= 2 else None

    # -- backend construction -------------------------------------------------------------

    def _make_cleartext_backend(self):
        if self.config.cleartext_backend == "spark":
            return SparkBackend()
        return PythonBackend()

    def _make_mpc_backend(self):
        if self.config.mpc_backend == "obliv-c":
            compute = self.parties[: OblivCBackend.MAX_PARTIES]
            return OblivCBackend(compute)
        compute = self.parties[: SharemindBackend.MAX_PARTIES]
        return SharemindBackend(compute, seed=self.seed)

    # -- execution -------------------------------------------------------------------------

    def run(self, compiled) -> QueryResult:
        """Execute a :class:`~repro.core.compiler.CompiledQuery`."""
        dag = compiled.dag
        leakage = LeakageReport()
        env: dict[str, _Entry] = {}
        outputs: dict[str, Table] = {}
        finish_time: dict[int, float] = {}
        all_parties = set(self.parties) | dag.parties()

        wall_start = time.perf_counter()
        for node in dag.topological():
            start = max((finish_time[p.node_id] for p in node.parents), default=0.0)
            before = self._engine_seconds()
            entry = self._execute_node(node, env, outputs, leakage, all_parties)
            env[node.out_rel.name] = entry
            duration = self._engine_seconds() - before
            finish_time[node.node_id] = start + duration
        wall_seconds = time.perf_counter() - wall_start

        simulated = max(finish_time.values(), default=0.0)
        return QueryResult(
            outputs=outputs,
            simulated_seconds=simulated,
            wall_seconds=wall_seconds,
            leakage=leakage,
            backend_seconds=self._backend_breakdown(),
        )

    # -- node execution ----------------------------------------------------------------------

    def _execute_node(
        self,
        node: OpNode,
        env: dict[str, _Entry],
        outputs: dict[str, Table],
        leakage: LeakageReport,
        all_parties: set[str],
    ) -> _Entry:
        if isinstance(node, Create):
            return self._execute_create(node)
        if isinstance(node, Collect):
            return self._execute_collect(node, env, outputs, leakage, all_parties)
        if node.is_mpc:
            return self._execute_mpc_node(node, env, leakage, all_parties)
        return self._execute_local_node(node, env, leakage, all_parties)

    def _execute_create(self, node: Create) -> _Entry:
        owner = node.out_rel.owner
        if owner is None:
            raise ValueError(f"input relation {node.out_rel.name!r} has no owner")
        try:
            table = self.inputs[owner][node.out_rel.name]
        except KeyError as exc:
            raise KeyError(
                f"party {owner!r} has no input relation {node.out_rel.name!r}; "
                f"available: {sorted(self.inputs.get(owner, {}))}"
            ) from exc
        handle = self.local_backends[owner].ingest(table, contributor=owner)
        return _Entry("local", owner, handle)

    def _execute_collect(
        self,
        node: Collect,
        env: dict[str, _Entry],
        outputs: dict[str, Table],
        leakage: LeakageReport,
        all_parties: set[str],
    ) -> _Entry:
        parent = node.parents[0]
        entry = env[parent.out_rel.name]
        if entry.kind == "mpc":
            table = self.mpc_backend.reveal(entry.handle)
            leakage.record(
                "output", node.out_rel.name, node.out_rel.schema.names, node.recipients,
                detail=f"{table.num_rows} rows revealed as query output",
            )
        else:
            table = self.local_backends[entry.party].collect(entry.handle)
            if entry.party not in node.recipients:
                leakage.record(
                    "cleartext_transfer", node.out_rel.name, node.out_rel.schema.names,
                    node.recipients, detail=f"sent from {entry.party}",
                )
        outputs[node.out_rel.name] = table
        return _Entry("local", node.recipients[0], table)

    def _execute_local_node(
        self,
        node: OpNode,
        env: dict[str, _Entry],
        leakage: LeakageReport,
        all_parties: set[str],
    ) -> _Entry:
        party = node.run_at or node.out_rel.owner
        if party is None:
            raise ValueError(f"cleartext operator {node!r} has no executing party")
        engine = self.local_backends[party]
        handles = [
            self._as_local_handle(parent, node, party, env, leakage, all_parties)
            for parent in node.parents
        ]
        result = self._apply_operator(engine, node, handles)
        return _Entry("local", party, result)

    def _execute_mpc_node(
        self,
        node: OpNode,
        env: dict[str, _Entry],
        leakage: LeakageReport,
        all_parties: set[str],
    ) -> _Entry:
        handles = [self._as_mpc_handle(parent, env) for parent in node.parents]

        if isinstance(node, HybridJoin):
            stp = self._stp_for(node.stp)
            result = hybrid_join(
                self._require_sharemind("hybrid join"), stp, handles[0], handles[1],
                node.left_on, node.right_on, leakage,
            )
            return _Entry("mpc", None, result)
        if isinstance(node, PublicJoin):
            host = self._stp_for(node.host)
            result = public_join(
                self._require_sharemind("public join"), host, handles[0], handles[1],
                node.left_on, node.right_on, leakage,
            )
            return _Entry("mpc", None, result)
        if isinstance(node, HybridAggregate):
            stp = self._stp_for(node.stp)
            result = hybrid_aggregate(
                self._require_sharemind("hybrid aggregation"), stp, handles[0],
                node.group_col, node.agg_col, node.func, node.out_name, leakage,
            )
            return _Entry("mpc", None, result)

        result = self._apply_operator(self.mpc_backend, node, handles)
        return _Entry("mpc", None, result)

    # -- operator application ----------------------------------------------------------------------

    def _apply_operator(self, engine, node: OpNode, handles: list):
        if isinstance(node, Concat):
            return engine.concat(handles)
        if isinstance(node, Project):
            return engine.project(handles[0], node.columns)
        if isinstance(node, Filter):
            return engine.filter(handles[0], node.column, node.op, node.value)
        if isinstance(node, Aggregate):
            return engine.aggregate(
                handles[0], node.group_col, node.agg_col, node.func, node.out_name,
                presorted=node.presorted,
            )
        if isinstance(node, Multiply):
            return engine.multiply(handles[0], node.out_name, node.left, node.right)
        if isinstance(node, Divide):
            return engine.divide(handles[0], node.out_name, node.left, node.right)
        if isinstance(node, Map):
            return engine.arith(handles[0], node.out_name, node.left, node.op, node.right)
        if isinstance(node, Compare):
            return engine.compare(handles[0], node.out_name, node.left, node.op, node.right)
        if isinstance(node, BoolOp):
            return engine.bool_op(handles[0], node.out_name, node.op, node.operands)
        if isinstance(node, Join):
            return engine.join(handles[0], handles[1], node.left_on, node.right_on)
        if isinstance(node, Merge):
            return engine.merge_sorted(handles, node.column, ascending=node.ascending)
        if isinstance(node, SortBy):
            return engine.sort_by(handles[0], node.column, ascending=node.ascending)
        if isinstance(node, Distinct):
            return engine.distinct(handles[0], node.columns)
        if isinstance(node, Limit):
            return engine.limit(handles[0], node.n)
        raise TypeError(f"unsupported operator {type(node).__name__}")

    # -- handle conversion across the MPC boundary ----------------------------------------------------

    def _as_mpc_handle(self, parent: OpNode, env: dict[str, _Entry]):
        if self.mpc_backend is None:
            raise ValueError(
                "plan contains MPC operators but the runner has a single party; "
                "MPC needs at least two computing parties"
            )
        entry = env[parent.out_rel.name]
        if entry.kind == "mpc":
            return entry.handle
        table = self.local_backends[entry.party].collect(entry.handle)
        return self.mpc_backend.ingest(table, contributor=entry.party)

    def _as_local_handle(
        self,
        parent: OpNode,
        consumer: OpNode,
        party: str,
        env: dict[str, _Entry],
        leakage: LeakageReport,
        all_parties: set[str],
    ):
        entry = env[parent.out_rel.name]
        engine = self.local_backends[party]
        if entry.kind == "local":
            if entry.party == party:
                return entry.handle
            if not self._authorized(parent, consumer, party, all_parties):
                raise SecurityError(
                    f"plan would transfer relation {parent.out_rel.name!r} from "
                    f"{entry.party} to unauthorised party {party}"
                )
            table = self.local_backends[entry.party].collect(entry.handle)
            leakage.record(
                "cleartext_transfer", parent.out_rel.name, parent.out_rel.schema.names,
                [party], detail=f"sent from {entry.party}",
            )
            return engine.ingest(table, contributor=entry.party)
        # MPC-resident relation revealed to a single party.
        if not self._authorized(parent, consumer, party, all_parties):
            raise SecurityError(
                f"plan would reveal MPC relation {parent.out_rel.name!r} to "
                f"unauthorised party {party}"
            )
        table = self.mpc_backend.reveal_to(entry.handle, party)
        leakage.record(
            "column_reveal", parent.out_rel.name, parent.out_rel.schema.names, [party],
            detail=f"{table.num_rows} rows revealed for cleartext post-processing",
        )
        return engine.ingest(table, contributor=party)

    def _authorized(
        self, parent: OpNode, consumer: OpNode, party: str, all_parties: set[str]
    ) -> bool:
        """Check that revealing ``parent``'s relation to ``party`` is allowed."""
        rel = parent.out_rel
        if rel.owner == party:
            return True
        if isinstance(consumer, Collect) and party in consumer.recipients:
            return True
        if consumer.run_at == party and getattr(consumer, "lifted", False):
            # Push-up lifted a reversible operator to the output recipient:
            # its input is derivable from the output the recipient receives.
            return True
        trust_ok = all(
            party in rel.column_trust(col) or PUBLIC in rel.column_trust(col)
            for col in rel.schema.names
        )
        return trust_ok

    # -- helpers ------------------------------------------------------------------------------------------

    def _stp_for(self, party: str) -> SelectivelyTrustedParty:
        if party not in self.local_backends:
            self.local_backends[party] = self._make_cleartext_backend()
        return SelectivelyTrustedParty(party, self.local_backends[party])

    def _require_sharemind(self, what: str) -> SharemindBackend:
        if not isinstance(self.mpc_backend, SharemindBackend):
            raise ValueError(
                f"{what} requires the secret-sharing (sharemind) MPC backend; "
                f"configured backend is {self.config.mpc_backend!r}"
            )
        return self.mpc_backend

    def _engine_seconds(self) -> float:
        total = sum(engine.elapsed_seconds() for engine in self.local_backends.values())
        if self.mpc_backend is not None:
            total += self.mpc_backend.elapsed_seconds()
        return total

    def _backend_breakdown(self) -> dict[str, float]:
        breakdown = {
            f"local:{party}": engine.elapsed_seconds()
            for party, engine in self.local_backends.items()
        }
        if self.mpc_backend is not None:
            breakdown[f"mpc:{self.mpc_backend.name}"] = self.mpc_backend.elapsed_seconds()
        return breakdown
