"""Multi-party execution of a compiled query.

The in-process :class:`QueryRunner` plays the role of *all* the per-party
Conclave agents at once (§4.1): it instantiates one cleartext backend per
party and one MPC backend for the joint steps, executes the compiled DAG
node by node in topological order, and moves relations across the MPC
boundary exactly where the plan says — secret-sharing local relations into
MPC, revealing MPC relations only to parties the plan authorises, and
routing hybrid operators through the selectively-trusted party.

The node-execution logic itself lives in
:class:`repro.runtime.executor.PlanExecutor`, which is shared with the
distributed runtime (:mod:`repro.runtime.coordinator` /
:mod:`repro.runtime.agent`) where each party really is a separate OS
process.  Pass ``runtime="sockets"`` to :func:`run_query_from_csv` (or to
:func:`repro.core.compiler.run_query`) to execute over real per-party
processes instead of the in-process simulation.

Alongside the actual results, both runtimes produce:

* a simulated wall-clock time, computed from the backends' cost models with
  a completion-time recurrence so that independent local work at different
  parties overlaps (as it would on real, separate clusters), and
* a :class:`~repro.hybrid.stp.LeakageReport` listing every value or
  cardinality that left the cryptographic envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CompilationConfig
from repro.data.table import Table
from repro.hybrid.stp import LeakageReport
from repro.runtime.executor import PlanExecutor, SecurityError, completion_seconds

__all__ = [
    "QueryResult",
    "QueryRunner",
    "SecurityError",
    "load_party_inputs",
    "run_query_from_csv",
]


@dataclass
class QueryResult:
    """Outputs and accounting of one query execution."""

    outputs: dict[str, Table]
    simulated_seconds: float
    wall_seconds: float
    leakage: LeakageReport
    backend_seconds: dict[str, float] = field(default_factory=dict)
    #: JSON-friendly counters of the joint MPC work (operation counts and
    #: network traffic); empty for single-party queries.
    mpc_profile: dict = field(default_factory=dict)
    #: Which runtime executed the query: ``"simulated"`` (in-process) or
    #: ``"sockets"`` (one OS process per party).
    runtime: str = "simulated"
    #: Per-party isolation audit (which share slices / cleartext inputs each
    #: agent process held); populated by the sockets runtime, empty otherwise.
    isolation: dict = field(default_factory=dict)

    def output(self, name: str) -> Table:
        if name not in self.outputs:
            raise KeyError(f"no output named {name!r}; have {sorted(self.outputs)}")
        return self.outputs[name]


def load_party_inputs(input_dirs: dict[str, str]) -> dict[str, dict[str, Table]]:
    """Load each party's input relations from its CSV directory.

    ``input_dirs`` maps party name to a directory containing one
    ``<relation>.csv`` file per input relation the party owns — the same
    layout the per-party Conclave agents use in the original prototype.
    """
    from pathlib import Path

    from repro.data.csvio import read_csv

    inputs: dict[str, dict[str, Table]] = {}
    for party, directory in input_dirs.items():
        path = Path(directory)
        if not path.is_dir():
            raise FileNotFoundError(f"input directory for party {party!r} not found: {path}")
        inputs[party] = {
            csv_file.stem: read_csv(csv_file) for csv_file in sorted(path.glob("*.csv"))
        }
    return inputs


def run_query_from_csv(
    compiled,
    input_dirs: dict[str, str],
    output_dir: str | None = None,
    config: CompilationConfig | None = None,
    seed: int = 0,
    runtime: str = "simulated",
    timeout: float = 60.0,
) -> QueryResult:
    """Execute a compiled query whose inputs live in per-party CSV directories.

    Outputs are returned as tables and, when ``output_dir`` is given, also
    written there as ``<relation>.csv`` (one file per query output).
    ``runtime="sockets"`` runs each party as a separate OS process;
    ``runtime="service"`` reuses a standing per-party agent mesh across
    calls; ``timeout`` bounds their blocking socket operations.
    """
    from pathlib import Path

    from repro.data.csvio import write_csv

    config = config or compiled.config
    inputs = load_party_inputs(input_dirs)
    parties = sorted(set(input_dirs) | compiled.dag.parties())
    if runtime == "sockets":
        from repro.runtime.coordinator import SocketCoordinator

        coordinator = SocketCoordinator(parties, inputs, config, seed=seed, timeout=timeout)
        result = coordinator.run(compiled)
    elif runtime == "service":
        from repro.runtime.service import shared_session

        session = shared_session(parties, timeout=timeout)
        result = session.submit(
            compiled, inputs=inputs, seed=seed, config=config, timeout=timeout + 10
        )
    elif runtime == "simulated":
        result = QueryRunner(parties, inputs, config, seed=seed).run(compiled)
    else:
        raise ValueError(
            f"unknown runtime {runtime!r}; use 'simulated', 'sockets' or 'service'"
        )
    if output_dir is not None:
        for name, table in result.outputs.items():
            write_csv(table, Path(output_dir) / f"{name}.csv")
    return result


class QueryRunner(PlanExecutor):
    """Executes compiled queries over in-memory party inputs, in one process."""

    def run(self, compiled) -> QueryResult:
        """Execute a :class:`~repro.core.compiler.CompiledQuery`."""
        outcome = self.execute(compiled)
        return QueryResult(
            outputs=outcome.outputs,
            simulated_seconds=completion_seconds(compiled.dag, outcome.node_durations),
            wall_seconds=outcome.wall_seconds,
            leakage=outcome.leakage,
            backend_seconds=outcome.backend_seconds,
            mpc_profile=outcome.mpc_profile,
            runtime="simulated",
        )
