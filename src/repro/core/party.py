"""Parties participating in a Conclave query.

A party is identified by a hostname-like name (``"mpc.a.com"``).  Parties
own input relations, receive output relations, and may act as the
selectively-trusted party (STP) for hybrid operators when other parties'
trust annotations name them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Party:
    """A participant in the multi-party computation."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("party name must be non-empty")

    def __str__(self) -> str:
        return self.name
