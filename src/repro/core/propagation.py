"""Annotation propagation (§5.1).

Two passes over the DAG:

* :func:`propagate_ownership` — derives, for every intermediate relation,
  which parties store it and which single party (if any) could compute it
  locally from its own data.  Operators whose output has no owner combine
  data across parties and must run under MPC.
* :func:`propagate_trust` — derives per-column *trust sets* for every
  intermediate relation from the input annotations, using the column
  dependency rules described in the paper: a result column's trust set is
  the intersection of the trust sets of every operand column that
  contributes rows to it or that affects how its rows are combined,
  filtered, or reordered.

Both passes are deterministic and idempotent; the frontier and hybrid
rewrite passes re-run them after restructuring the DAG.
"""

from __future__ import annotations

from repro.core.dag import Dag
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    Join,
    Limit,
    Map,
    Merge,
    Multiply,
    OpNode,
    Project,
    SortBy,
)
from repro.data.schema import PUBLIC


def intersect_trust(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
    """Intersection of two trust sets, treating ``"*"`` (public) as the universe."""
    if PUBLIC in a:
        return b
    if PUBLIC in b:
        return a
    return a & b


def intersect_all(sets: list[frozenset[str]]) -> frozenset[str]:
    if not sets:
        return frozenset()
    result = sets[0]
    for s in sets[1:]:
        result = intersect_trust(result, s)
    return result


# -- ownership --------------------------------------------------------------------------------


def propagate_ownership(dag: Dag) -> None:
    """Fill in ``owner`` and ``stored_with`` for every relation in the DAG."""
    for node in dag.topological():
        if isinstance(node, Create):
            if node.out_rel.owner is None:
                if len(node.out_rel.stored_with) == 1:
                    node.out_rel.owner = next(iter(node.out_rel.stored_with))
            continue
        input_rels = node.input_relations()
        owners = {rel.owner for rel in input_rels}
        stored: set[str] = set()
        for rel in input_rels:
            stored |= rel.stored_with
        if len(owners) == 1 and None not in owners:
            node.out_rel.owner = next(iter(owners))
        else:
            node.out_rel.owner = None
        if isinstance(node, Collect):
            # Output relations end up stored at their recipients.
            node.out_rel.stored_with = set(node.recipients)
        else:
            node.out_rel.stored_with = stored
        _estimate_rows(node)


def mark_mpc_frontier(dag: Dag) -> None:
    """Initial MPC marking: operators without a single owner run under MPC.

    Hybrid operators keep their MPC flag; operators explicitly placed at a
    party by the push-up pass (``run_at``) stay in the clear.
    """
    for node in dag.topological():
        if isinstance(node, Create):
            node.is_mpc = False
            continue
        if node.run_at is not None:
            node.is_mpc = False
            continue
        if getattr(node, "stp", None) is not None or getattr(node, "host", None) is not None:
            # Hybrid operators always involve the MPC backend.
            node.is_mpc = True
            continue
        if isinstance(node, Collect):
            # Revealing the output is handled by the producer; the collect
            # node itself runs at the recipients.
            node.is_mpc = False
            node.run_at = node.recipients[0]
            continue
        node.is_mpc = node.out_rel.owner is None


# -- trust -------------------------------------------------------------------------------------


def propagate_trust(dag: Dag) -> None:
    """Fill in per-column trust sets for every intermediate relation."""
    for node in dag.topological():
        if isinstance(node, Create):
            # Input trust sets come from the analyst's annotations (already
            # stored on the relation by the frontend).
            continue
        node.out_rel.trust = _derive_trust(node)


def _derive_trust(node: OpNode) -> dict[str, frozenset[str]]:
    if isinstance(node, Merge):
        # Row interleaving is determined by the merge column, so every output
        # column additionally depends on it (like a sort).
        concat_trust = _concat_trust(node)
        key_trust = concat_trust.get(node.column, frozenset())
        return {
            name: intersect_trust(trust, key_trust) for name, trust in concat_trust.items()
        }
    if isinstance(node, Concat):
        return _concat_trust(node)
    if isinstance(node, Join):
        return _join_trust(node)
    if isinstance(node, Aggregate):
        return _aggregate_trust(node)
    if isinstance(node, (Multiply, Divide, Map, Compare)):
        return _arithmetic_trust(node)
    if isinstance(node, BoolOp):
        return _bool_op_trust(node)
    if isinstance(node, Filter):
        return _filter_trust(node)
    if isinstance(node, SortBy):
        return _sort_trust(node)
    if isinstance(node, (Project, Distinct)):
        parent = node.parent.out_rel
        return {name: parent.column_trust(name) for name in node.out_rel.schema.names}
    if isinstance(node, (Limit, Collect)):
        parent = node.parent.out_rel
        return {name: parent.column_trust(name) for name in node.out_rel.schema.names}
    # Default: inherit matching columns from the first parent.
    parent = node.parents[0].out_rel
    return {
        name: parent.column_trust(name) if name in parent.schema else frozenset()
        for name in node.out_rel.schema.names
    }


def _concat_trust(node: Concat | Merge) -> dict[str, frozenset[str]]:
    trust: dict[str, frozenset[str]] = {}
    for i, name in enumerate(node.out_rel.schema.names):
        sets = []
        for parent in node.parents:
            in_name = parent.out_rel.schema.names[i]
            sets.append(parent.out_rel.column_trust(in_name))
        trust[name] = intersect_all(sets)
    return trust


def _join_trust(node: Join) -> dict[str, frozenset[str]]:
    left_rel = node.parents[0].out_rel
    right_rel = node.parents[1].out_rel
    key_trust = intersect_trust(
        left_rel.column_trust(node.left_on), right_rel.column_trust(node.right_on)
    )
    trust: dict[str, frozenset[str]] = {}
    left_names = set(left_rel.schema.names)
    for name in node.out_rel.schema.names:
        if name == node.left_on:
            trust[name] = key_trust
            continue
        if name in left_names:
            source = left_rel.column_trust(name)
        else:
            # Right-side column, possibly suffixed with "_r" on collision.
            base = name[:-2] if name.endswith("_r") and name[:-2] in right_rel.schema else name
            source = right_rel.column_trust(base)
        trust[name] = intersect_trust(source, key_trust)
    return trust


def _aggregate_trust(node: Aggregate) -> dict[str, frozenset[str]]:
    parent = node.parent.out_rel
    trust: dict[str, frozenset[str]] = {}
    group_trust = (
        parent.column_trust(node.group_col) if node.group_col is not None else frozenset({PUBLIC})
    )
    if node.group_col is not None:
        trust[node.group_col] = group_trust
    if node.agg_col is not None:
        value_trust = intersect_trust(parent.column_trust(node.agg_col), group_trust)
    else:
        # count: depends only on the group-by column.
        value_trust = group_trust
    trust[node.out_name] = value_trust
    return trust


def _bool_op_trust(node: BoolOp) -> dict[str, frozenset[str]]:
    parent = node.parent.out_rel
    trust = {name: parent.column_trust(name) for name in parent.schema.names}
    trust[node.out_name] = intersect_all([parent.column_trust(c) for c in node.operands])
    return trust


def _arithmetic_trust(node: Multiply | Divide | Map | Compare) -> dict[str, frozenset[str]]:
    parent = node.parent.out_rel
    trust = {name: parent.column_trust(name) for name in parent.schema.names}
    left_trust = parent.column_trust(node.left)
    if isinstance(node.right, str):
        out_trust = intersect_trust(left_trust, parent.column_trust(node.right))
    else:
        out_trust = left_trust
    trust[node.out_name] = out_trust
    return trust


def _filter_trust(node: Filter) -> dict[str, frozenset[str]]:
    parent = node.parent.out_rel
    filter_trust = parent.column_trust(node.column)
    return {
        name: intersect_trust(parent.column_trust(name), filter_trust)
        for name in node.out_rel.schema.names
    }


def _sort_trust(node: SortBy) -> dict[str, frozenset[str]]:
    parent = node.parent.out_rel
    key_trust = parent.column_trust(node.column)
    return {
        name: intersect_trust(parent.column_trust(name), key_trust)
        for name in node.out_rel.schema.names
    }


# -- row estimates -----------------------------------------------------------------------------


#: Default selectivity assumptions used when the analyst provides no hints.
DEFAULT_FILTER_SELECTIVITY = 0.5
DEFAULT_DISTINCT_FRACTION = 0.1
DEFAULT_JOIN_MULTIPLIER = 1.0


def _estimate_rows(node: OpNode) -> None:
    """Propagate coarse row-count estimates (used by the plan cost estimator)."""
    input_rows = [rel.estimated_rows for rel in node.input_relations()]
    if any(r is None for r in input_rows):
        node.out_rel.estimated_rows = None
        return
    rows = [int(r) for r in input_rows if r is not None]
    if isinstance(node, (Concat, Merge)):
        estimate = sum(rows)
    elif isinstance(node, Filter):
        estimate = int(rows[0] * DEFAULT_FILTER_SELECTIVITY)
    elif isinstance(node, Aggregate):
        if node.group_col is None:
            estimate = 1
        else:
            estimate = max(1, int(rows[0] * DEFAULT_DISTINCT_FRACTION))
    elif isinstance(node, Distinct):
        estimate = max(1, int(rows[0] * DEFAULT_DISTINCT_FRACTION))
    elif isinstance(node, Join):
        estimate = max(1, int(min(rows) * DEFAULT_JOIN_MULTIPLIER))
    elif isinstance(node, Limit):
        estimate = min(rows[0], node.n)
    else:
        estimate = rows[0]
    node.out_rel.estimated_rows = estimate
