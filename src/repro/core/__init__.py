"""Conclave's core: the query compiler and multi-party execution layer.

The sub-modules follow the paper's structure:

================  =======================================================
``party``          parties and their roles
``types``          frontend column specifications / trust annotations
``lang``           LINQ-style query frontend (builds the operator DAG)
``relation``       intermediate-relation metadata (ownership, trust, order)
``operators``      DAG node types, including the hybrid operators
``dag``            DAG container and traversals
``propagation``    ownership and trust-set propagation (§5.1)
``frontier``       MPC-frontier push-down / push-up (§5.2)
``hybrid_rewrite`` hybrid-operator insertion (§5.3)
``sort_opt``       oblivious-operation reduction (§5.4)
``partition``      per-backend sub-plan partitioning (§6)
``codegen``        per-backend code generation (§6)
``compiler``       the six-stage pipeline tying the passes together
``dispatch``       multi-party execution of compiled queries
``estimator``      plan cost estimation for large-scale benchmark sweeps
``config``         compilation switches (optimizations, consent, backends)
================  =======================================================
"""

from repro.core.compiler import CompiledQuery, CompilationReport, compile_query, run_query
from repro.core.config import CompilationConfig, GatewayConfig, RestartPolicy, RetryPolicy
from repro.core.dispatch import QueryResult, QueryRunner, SecurityError
from repro.core.estimator import EstimatedOOM, EstimatorParams, PlanEstimate, PlanEstimator
from repro.core.expr import Expr, col, lit
from repro.core.lang import COMPOSITE_KEY_BASE, QueryContext, RelationHandle, concat, new_table
from repro.core.party import Party
from repro.core.types import (
    AggFunc,
    AggSpec,
    COUNT,
    FLOAT,
    INT,
    MAX,
    MEAN,
    MIN,
    SUM,
    Column,
)

__all__ = [
    "AggFunc",
    "AggSpec",
    "COMPOSITE_KEY_BASE",
    "Expr",
    "col",
    "lit",
    "CompiledQuery",
    "CompilationReport",
    "CompilationConfig",
    "GatewayConfig",
    "RestartPolicy",
    "RetryPolicy",
    "compile_query",
    "run_query",
    "QueryResult",
    "QueryRunner",
    "SecurityError",
    "EstimatedOOM",
    "EstimatorParams",
    "PlanEstimate",
    "PlanEstimator",
    "QueryContext",
    "RelationHandle",
    "concat",
    "new_table",
    "Party",
    "Column",
    "INT",
    "FLOAT",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "MEAN",
]
