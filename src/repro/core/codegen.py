"""Per-backend code generation (compilation stage 6, part 2).

The original Conclave emits Python/PySpark scripts for cleartext sub-plans
and SecreC (Sharemind) or Obliv-C source for MPC sub-plans, then hands them
to per-party agents for execution.  The reproduction's backends are driven
in-process, so the artefact that matters is the :class:`GeneratedJob`: the
ordered list of operator steps a backend must run, plus a faithful textual
rendering of the code Conclave would have produced (useful for inspection,
documentation, and the codegen tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CompilationConfig
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    HybridAggregate,
    HybridJoin,
    Join,
    Limit,
    Map,
    Merge,
    Multiply,
    OpNode,
    Project,
    PublicJoin,
    SortBy,
)
from repro.core.partition import SubPlan


@dataclass
class GeneratedJob:
    """One executable job produced by code generation."""

    index: int
    #: ``"python"``, ``"spark"``, ``"sharemind"`` or ``"obliv-c"``.
    backend: str
    #: Executing party for cleartext jobs, ``"joint"`` for MPC jobs.
    party: str
    #: Operator nodes, in execution order.
    steps: list[OpNode] = field(default_factory=list)
    #: Relations this job reads from other jobs.
    inputs: list[str] = field(default_factory=list)
    #: Relations this job publishes for later jobs / as query outputs.
    outputs: list[str] = field(default_factory=list)
    #: Generated source text for inspection.
    source: str = ""

    def __repr__(self) -> str:
        return f"GeneratedJob(#{self.index}, {self.backend}@{self.party}, steps={len(self.steps)})"


def generate_jobs(subplans: list[SubPlan], config: CompilationConfig) -> list[GeneratedJob]:
    """Generate one job per sub-plan for the configured backends."""
    jobs = []
    for sp in subplans:
        backend = config.mpc_backend if sp.kind == "mpc" else config.cleartext_backend
        job = GeneratedJob(
            index=sp.index,
            backend=backend,
            party=sp.party,
            steps=list(sp.nodes),
            inputs=sp.input_relations(),
            outputs=sp.output_relations(),
        )
        job.source = render_source(job)
        jobs.append(job)
    return jobs


def render_source(job: GeneratedJob) -> str:
    """Render a job as backend-flavoured source text."""
    if job.backend == "spark":
        return _render_spark(job)
    if job.backend == "sharemind":
        return _render_secrec(job)
    if job.backend == "obliv-c":
        return _render_oblivc(job)
    return _render_python(job)


# -- cleartext renderers -----------------------------------------------------------------------


def _render_python(job: GeneratedJob) -> str:
    lines = [
        f"# generated sequential Python job #{job.index} for party {job.party}",
        "from repro.data.csvio import read_csv, write_csv",
        "",
    ]
    for rel in job.inputs:
        lines.append(f"{_var(rel)} = read_csv('{rel}.csv')")
    for node in job.steps:
        lines.append(_python_statement(node))
    for rel in job.outputs:
        lines.append(f"write_csv({_var(rel)}, '{rel}.csv')")
    return "\n".join(lines)


def _render_spark(job: GeneratedJob) -> str:
    lines = [
        f"# generated PySpark job #{job.index} for party {job.party}",
        "from pyspark.sql import SparkSession",
        f"spark = SparkSession.builder.appName('conclave_job_{job.index}').getOrCreate()",
        "",
    ]
    for rel in job.inputs:
        lines.append(f"{_var(rel)} = spark.read.csv('{rel}.csv', header=True)")
    for node in job.steps:
        lines.append(_spark_statement(node))
    for rel in job.outputs:
        lines.append(f"{_var(rel)}.write.csv('{rel}.csv', header=True)")
    return "\n".join(lines)


def _python_statement(node: OpNode) -> str:
    out = _var(node.out_rel.name)
    if isinstance(node, Create):
        return f"{out} = read_csv('{node.out_rel.name}.csv')"
    args = [_var(p.out_rel.name) for p in node.parents]
    if isinstance(node, Concat):
        return f"{out} = {args[0]}.concat({', '.join(args[1:])})"
    if isinstance(node, Project):
        return f"{out} = {args[0]}.project({node.columns!r})"
    if isinstance(node, Filter):
        return f"{out} = {args[0]}.filter({node.column!r}, {node.op!r}, {node.value!r})"
    if isinstance(node, (HybridAggregate, Aggregate)):
        group = [node.group_col] if node.group_col else []
        return (
            f"{out} = {args[0]}.aggregate({group!r}, {node.agg_col!r}, "
            f"{node.func!r}, {node.out_name!r})"
        )
    if isinstance(node, Multiply):
        return f"{out} = {args[0]}.arithmetic({node.out_name!r}, {node.left!r}, '*', {node.right!r})"
    if isinstance(node, Divide):
        return f"{out} = {args[0]}.arithmetic({node.out_name!r}, {node.left!r}, '/', {node.right!r})"
    if isinstance(node, Map):
        return f"{out} = {args[0]}.arithmetic({node.out_name!r}, {node.left!r}, {node.op!r}, {node.right!r})"
    if isinstance(node, Compare):
        return f"{out} = {args[0]}.compare({node.out_name!r}, {node.left!r}, {node.op!r}, {node.right!r})"
    if isinstance(node, BoolOp):
        return f"{out} = {args[0]}.bool_op({node.out_name!r}, {node.op!r}, {node.operands!r})"
    if isinstance(node, (HybridJoin, PublicJoin, Join)):
        return f"{out} = {args[0]}.join({args[1]}, [{node.left_on!r}], [{node.right_on!r}])"
    if isinstance(node, Merge):
        return f"{out} = merge_sorted([{', '.join(args)}], {node.column!r})"
    if isinstance(node, SortBy):
        return f"{out} = {args[0]}.sort_by([{node.column!r}])"
    if isinstance(node, Distinct):
        return f"{out} = {args[0]}.distinct({node.columns!r})"
    if isinstance(node, Limit):
        return f"{out} = {args[0]}.limit({node.n})"
    if isinstance(node, Collect):
        return f"{out} = {args[0]}  # revealed to {', '.join(node.recipients)}"
    return f"{out} = {args[0]}  # {node.op_name}"


def _spark_statement(node: OpNode) -> str:
    out = _var(node.out_rel.name)
    args = [_var(p.out_rel.name) for p in node.parents]
    if isinstance(node, Create):
        return f"{out} = spark.read.csv('{node.out_rel.name}.csv', header=True)"
    if isinstance(node, Concat):
        expr = args[0]
        for a in args[1:]:
            expr += f".union({a})"
        return f"{out} = {expr}"
    if isinstance(node, Project):
        return f"{out} = {args[0]}.select({', '.join(repr(c) for c in node.columns)})"
    if isinstance(node, Filter):
        return f"{out} = {args[0]}.where('{node.column} {node.op} {node.value}')"
    if isinstance(node, (HybridAggregate, Aggregate)):
        if node.group_col:
            return (
                f"{out} = {args[0]}.groupBy({node.group_col!r})"
                f".agg({{'{node.agg_col or '*'}': '{node.func}'}})"
            )
        return f"{out} = {args[0]}.agg({{'{node.agg_col or '*'}': '{node.func}'}})"
    if isinstance(node, Multiply):
        return f"{out} = {args[0]}.withColumn({node.out_name!r}, col({node.left!r}) * {_lit(node.right)})"
    if isinstance(node, Divide):
        return f"{out} = {args[0]}.withColumn({node.out_name!r}, col({node.left!r}) / {_lit(node.right)})"
    if isinstance(node, Map):
        return f"{out} = {args[0]}.withColumn({node.out_name!r}, col({node.left!r}) {node.op} {_lit(node.right)})"
    if isinstance(node, Compare):
        return (
            f"{out} = {args[0]}.withColumn({node.out_name!r}, "
            f"(col({node.left!r}) {node.op} {_lit(node.right)}).cast('int'))"
        )
    if isinstance(node, BoolOp):
        if node.op == "not":
            expr = f"~col({node.operands[0]!r})"
        else:
            glue = " & " if node.op == "and" else " | "
            expr = glue.join(f"col({c!r})" for c in node.operands)
        return f"{out} = {args[0]}.withColumn({node.out_name!r}, ({expr}).cast('int'))"
    if isinstance(node, (HybridJoin, PublicJoin, Join)):
        return (
            f"{out} = {args[0]}.join({args[1]}, "
            f"{args[0]}['{node.left_on}'] == {args[1]}['{node.right_on}'])"
        )
    if isinstance(node, Merge):
        expr = args[0]
        for a in args[1:]:
            expr += f".union({a})"
        return f"{out} = {expr}.orderBy({node.column!r})"
    if isinstance(node, SortBy):
        return f"{out} = {args[0]}.orderBy({node.column!r})"
    if isinstance(node, Distinct):
        return f"{out} = {args[0]}.select({', '.join(repr(c) for c in node.columns)}).distinct()"
    if isinstance(node, Limit):
        return f"{out} = {args[0]}.limit({node.n})"
    if isinstance(node, Collect):
        return f"{out} = {args[0]}  # revealed to {', '.join(node.recipients)}"
    return f"{out} = {args[0]}  # {node.op_name}"


# -- MPC renderers --------------------------------------------------------------------------------


def _render_secrec(job: GeneratedJob) -> str:
    lines = [
        f"// generated SecreC-style program for MPC job #{job.index}",
        "import shared3p;",
        "domain pd_shared3p shared3p;",
        "",
        "void main() {",
    ]
    for rel in job.inputs:
        lines.append(f"    pd_shared3p int64 [[2]] {_var(rel)} = argument(\"{rel}\");")
    for node in job.steps:
        lines.append("    " + _secrec_statement(node))
    for rel in job.outputs:
        lines.append(f"    publish(\"{rel}\", {_var(rel)});")
    lines.append("}")
    return "\n".join(lines)


def _secrec_statement(node: OpNode) -> str:
    out = _var(node.out_rel.name)
    args = [_var(p.out_rel.name) for p in node.parents]
    if isinstance(node, Concat):
        return f"pd_shared3p int64 [[2]] {out} = cat({', '.join(args)});"
    if isinstance(node, Project):
        return f"pd_shared3p int64 [[2]] {out} = project({args[0]}, {node.columns});"
    if isinstance(node, Filter):
        return f"pd_shared3p int64 [[2]] {out} = obliviousFilter({args[0]}, \"{node.column} {node.op} {node.value}\");"
    if isinstance(node, HybridAggregate):
        return (
            f"pd_shared3p int64 [[2]] {out} = hybridAggregate({args[0]}, \"{node.group_col}\", "
            f"\"{node.func}\", /* stp = {node.stp} */);"
        )
    if isinstance(node, Aggregate):
        return (
            f"pd_shared3p int64 [[2]] {out} = sortingAggregate({args[0]}, \"{node.group_col}\", "
            f"\"{node.func}\", presorted={str(node.presorted).lower()});"
        )
    if isinstance(node, HybridJoin):
        return f"pd_shared3p int64 [[2]] {out} = hybridJoin({args[0]}, {args[1]}, /* stp = {node.stp} */);"
    if isinstance(node, PublicJoin):
        return f"pd_shared3p int64 [[2]] {out} = publicJoin({args[0]}, {args[1]}, /* host = {node.host} */);"
    if isinstance(node, Join):
        return f"pd_shared3p int64 [[2]] {out} = cartesianJoin({args[0]}, {args[1]});"
    if isinstance(node, Multiply):
        return f"pd_shared3p int64 [[2]] {out} = mulColumn({args[0]}, \"{node.left}\", {_lit(node.right)});"
    if isinstance(node, Divide):
        return f"pd_shared3p int64 [[2]] {out} = divColumn({args[0]}, \"{node.left}\", {_lit(node.right)});"
    if isinstance(node, Map):
        fn = "addColumn" if node.op == "+" else "subColumn"
        return f"pd_shared3p int64 [[2]] {out} = {fn}({args[0]}, \"{node.left}\", {_lit(node.right)});"
    if isinstance(node, Compare):
        return (
            f"pd_shared3p int64 [[2]] {out} = cmpColumn({args[0]}, "
            f"\"{node.left} {node.op} {node.right}\");"
        )
    if isinstance(node, BoolOp):
        operands = ", ".join(f'"{c}"' for c in node.operands)
        return f"pd_shared3p int64 [[2]] {out} = boolColumns({args[0]}, \"{node.op}\", {{{operands}}});"
    if isinstance(node, Merge):
        return f"pd_shared3p int64 [[2]] {out} = obliviousMerge({{{', '.join(args)}}}, \"{node.column}\");"
    if isinstance(node, SortBy):
        return f"pd_shared3p int64 [[2]] {out} = obliviousSort({args[0]}, \"{node.column}\");"
    if isinstance(node, Distinct):
        return f"pd_shared3p int64 [[2]] {out} = obliviousDistinct({args[0]}, {node.columns});"
    if isinstance(node, Limit):
        return f"pd_shared3p int64 [[2]] {out} = head({args[0]}, {node.n});"
    if isinstance(node, Collect):
        return f"pd_shared3p int64 [[2]] {out} = {args[0]}; // declassified to {', '.join(node.recipients)}"
    return f"pd_shared3p int64 [[2]] {out} = {args[0]}; // {node.op_name}"


def _render_oblivc(job: GeneratedJob) -> str:
    lines = [
        f"// generated Obliv-C-style program for MPC job #{job.index}",
        "#include <obliv.oh>",
        "",
        "void conclaveMain(void *args) {",
    ]
    for rel in job.inputs:
        lines.append(f"    obliv int64 *{_var(rel)} = feedOblivInputs(\"{rel}\");")
    for node in job.steps:
        lines.append("    " + _secrec_statement(node).replace("pd_shared3p int64 [[2]]", "obliv int64 *"))
    for rel in job.outputs:
        lines.append(f"    revealOblivArray(\"{rel}\", {_var(rel)});")
    lines.append("}")
    return "\n".join(lines)


# -- helpers --------------------------------------------------------------------------------------


def _var(relation_name: str) -> str:
    return relation_name.replace("-", "_").replace(".", "_")


def _lit(value) -> str:
    return repr(value) if isinstance(value, str) else str(value)
