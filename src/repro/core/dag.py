"""The query DAG container.

A :class:`Dag` owns the roots (``Create`` nodes) of an operator graph and
provides the traversals the compiler passes need: topological order, reverse
topological order, node lookup by output-relation name, and structural
validation (acyclicity, consistent parent/child links, unique relation
names).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.operators import Collect, Create, OpNode


class Dag:
    """Directed acyclic graph of relational operators."""

    def __init__(self, roots: Iterable[OpNode]):
        self.roots: list[OpNode] = list(roots)
        if not self.roots:
            raise ValueError("a query DAG needs at least one input relation")
        for root in self.roots:
            if not isinstance(root, Create):
                raise TypeError(f"DAG roots must be Create nodes, got {type(root).__name__}")

    # -- traversal --------------------------------------------------------------------------

    def nodes(self) -> list[OpNode]:
        """All nodes reachable from the roots (unordered)."""
        seen: dict[int, OpNode] = {}
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen[node.node_id] = node
            stack.extend(node.children)
        return list(seen.values())

    def topological(self) -> list[OpNode]:
        """Nodes in topological order (parents before children)."""
        nodes = self.nodes()
        in_deg = {n.node_id: len(n.parents) for n in nodes}
        by_id = {n.node_id: n for n in nodes}
        ready = sorted(
            [n for n in nodes if in_deg[n.node_id] == 0], key=lambda n: n.node_id
        )
        order: list[OpNode] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in node.children:
                if child.node_id not in in_deg:
                    continue
                in_deg[child.node_id] -= 1
                if in_deg[child.node_id] == 0:
                    ready.append(by_id[child.node_id])
            ready.sort(key=lambda n: n.node_id)
        if len(order) != len(nodes):
            raise ValueError("query graph contains a cycle")
        return order

    def reverse_topological(self) -> list[OpNode]:
        return list(reversed(self.topological()))

    def __iter__(self) -> Iterator[OpNode]:
        return iter(self.topological())

    # -- lookups ----------------------------------------------------------------------------

    def leaves(self) -> list[OpNode]:
        """Nodes with no children (normally the Collect outputs)."""
        return [n for n in self.nodes() if not n.children]

    def outputs(self) -> list[Collect]:
        return [n for n in self.nodes() if isinstance(n, Collect)]

    def inputs(self) -> list[Create]:
        return [n for n in self.roots if isinstance(n, Create)]

    def node_for_relation(self, name: str) -> OpNode:
        for node in self.nodes():
            if node.out_rel.name == name:
                return node
        raise KeyError(f"no operator produces relation {name!r}")

    def find(self, predicate: Callable[[OpNode], bool]) -> list[OpNode]:
        return [n for n in self.topological() if predicate(n)]

    def parties(self) -> set[str]:
        """All party names mentioned by input owners and output recipients."""
        parties: set[str] = set()
        for node in self.nodes():
            parties.update(node.out_rel.stored_with)
            if isinstance(node, Collect):
                parties.update(node.recipients)
        return parties

    # -- validation -------------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        nodes = self.topological()  # raises on cycles
        names = [n.out_rel.name for n in nodes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate relation names in DAG: {sorted(duplicates)}")
        for node in nodes:
            for parent in node.parents:
                if node not in parent.children:
                    raise ValueError(f"broken parent/child link between {parent} and {node}")
            for child in node.children:
                if node not in child.parents:
                    raise ValueError(f"broken child/parent link between {node} and {child}")

    def render(self) -> str:
        """Human-readable rendering of the DAG (one line per node)."""
        lines = []
        for node in self.topological():
            locus = "MPC" if node.is_mpc else (node.run_at or node.out_rel.owner or "?")
            inputs = ", ".join(p.out_rel.name for p in node.parents) or "-"
            lines.append(
                f"{node.op_name:<18} {node.out_rel.name:<28} at={locus:<14} inputs=[{inputs}]"
            )
        return "\n".join(lines)
