"""The Conclave query compiler: the six-stage pipeline of §5.

``compile_query`` takes the operator DAG produced by the frontend and a
:class:`~repro.core.config.CompilationConfig` and runs:

1. input/output annotation propagation (ownership, §5.1);
2. MPC-frontier push-down and push-up (§5.2);
3. trust-set propagation (§5.1);
4. hybrid-operator insertion (§5.3);
5. oblivious-operation reduction (sort elimination, §5.4);
6. partitioning into per-backend sub-plans and code generation (§6).

The result is a :class:`CompiledQuery`, which the
:class:`~repro.core.dispatch.QueryRunner` executes and the plan
cost estimator (:mod:`repro.core.estimator`) prices for large inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.codegen import GeneratedJob, generate_jobs
from repro.core.config import CompilationConfig
from repro.core.dag import Dag
from repro.core.frontier import push_down, push_up
from repro.core.hybrid_rewrite import apply_hybrid_operators
from repro.core.lang import QueryContext
from repro.core.operators import Aggregate, Collect, HybridAggregate, HybridJoin, Join, PublicJoin
from repro.core.partition import SubPlan, describe_partitioning, partition_dag
from repro.core.propagation import mark_mpc_frontier, propagate_ownership, propagate_trust
from repro.core.sort_opt import eliminate_redundant_sorts, push_up_sorts


@dataclass
class CompilationReport:
    """What the rewrite passes did to the query."""

    push_down_rewrites: int = 0
    push_up_rewrites: int = 0
    hybrid_rewrites: list[str] = field(default_factory=list)
    sorts_eliminated: int = 0
    sorts_pushed_up: int = 0

    def summary(self) -> str:
        lines = [
            f"push-down rewrites applied : {self.push_down_rewrites}",
            f"push-up rewrites applied   : {self.push_up_rewrites}",
            f"oblivious sorts eliminated : {self.sorts_eliminated}",
            f"sorts pushed through concat: {self.sorts_pushed_up}",
        ]
        if self.hybrid_rewrites:
            lines.append("hybrid operators inserted  :")
            lines.extend(f"  - {r}" for r in self.hybrid_rewrites)
        else:
            lines.append("hybrid operators inserted  : none")
        return "\n".join(lines)


@dataclass
class CompiledQuery:
    """The output of the compiler: an annotated DAG plus generated jobs."""

    dag: Dag
    config: CompilationConfig
    subplans: list[SubPlan]
    jobs: list[GeneratedJob]
    report: CompilationReport

    def mpc_operator_count(self) -> int:
        """Number of operators that still execute under MPC."""
        return sum(1 for n in self.dag.topological() if n.is_mpc)

    def operator_count(self) -> int:
        return len(self.dag.topological())

    def explain(self) -> str:
        """Human-readable compilation summary (DAG, rewrites, partitioning)."""
        parts = [
            "== Conclave compilation ==",
            self.report.summary(),
            "",
            "== operator DAG ==",
            self.dag.render(),
            "",
            "== partitioning ==",
            describe_partitioning(self.subplans),
        ]
        return "\n".join(parts)


def compile_query(query: Dag | QueryContext, config: CompilationConfig | None = None) -> CompiledQuery:
    """Run the full six-stage compilation pipeline."""
    config = config or CompilationConfig()
    dag = query.build_dag() if isinstance(query, QueryContext) else query
    dag.validate()
    report = CompilationReport()

    # Stage 1: propagate input locations / ownership and the initial frontier.
    propagate_ownership(dag)
    mark_mpc_frontier(dag)
    propagate_trust(dag)

    # Stage 2: move the MPC frontier (push-down, then push-up).
    if config.enable_push_down:
        report.push_down_rewrites = push_down(dag, config)
    if config.enable_push_up:
        report.push_up_rewrites = push_up(dag, config)

    # Stage 3: propagate trust annotations through the (rewritten) DAG.
    propagate_trust(dag)

    # Stage 4: insert hybrid operators where trust annotations allow.
    if config.enable_hybrid_operators:
        report.hybrid_rewrites = apply_hybrid_operators(dag, config)

    # Stage 5: reduce oblivious operations.
    if config.enable_sort_pushup:
        report.sorts_pushed_up = push_up_sorts(dag, config)
    if config.enable_sort_elimination:
        report.sorts_eliminated = eliminate_redundant_sorts(dag, config)

    # Stage 6: partition and generate per-backend code.
    propagate_ownership(dag)
    mark_mpc_frontier(dag)
    propagate_trust(dag)
    _apply_row_hints(dag, config)
    dag.validate()
    subplans = partition_dag(dag)
    jobs = generate_jobs(subplans, config)

    return CompiledQuery(dag=dag, config=config, subplans=subplans, jobs=jobs, report=report)


def run_query(
    query: Dag | QueryContext,
    inputs,
    config: CompilationConfig | None = None,
    seed: int = 0,
    runtime: str = "simulated",
    timeout: float = 60.0,
    executor: str | None = None,
):
    """Compile and execute a query in one call.

    ``inputs`` maps party name -> {relation name -> Table}.  Returns the
    :class:`~repro.core.dispatch.QueryResult`.

    ``runtime`` selects the execution substrate: ``"simulated"`` runs every
    party inside this process over the in-process transport (the default);
    ``"sockets"`` spawns one OS process per party and moves all cross-party
    traffic — including the secret-sharing rounds of the MPC sub-plans —
    over real TCP connections; ``"service"`` does the same over a *standing*
    per-party agent mesh (shared across calls with the same party set, so
    spawn + mesh setup are amortised — see
    :func:`repro.runtime.service.shared_session`).  All three produce
    byte-identical outputs and identical MPC operator counts.  ``timeout``
    (sockets/service only) bounds every blocking socket operation; raise it
    for long-running queries.

    ``executor`` overrides :attr:`CompilationConfig.executor` for this call:
    ``"columnar"`` runs the cleartext sub-plans on the vectorized batch
    engine (:mod:`repro.exec`), ``"row"`` on the per-operator table engines.
    The override travels inside the config, so every runtime — including
    the standing service agents — honours it.
    """
    import dataclasses

    from repro.core.dispatch import QueryRunner

    config = config or CompilationConfig()
    if executor is not None:
        config = dataclasses.replace(config, executor=executor)
    compiled = compile_query(query, config)
    parties = sorted(compiled.dag.parties() | set(inputs))
    if runtime == "sockets":
        from repro.runtime.coordinator import SocketCoordinator

        coordinator = SocketCoordinator(parties, inputs, config, seed=seed, timeout=timeout)
        return coordinator.run(compiled)
    if runtime == "service":
        from repro.runtime.service import shared_session

        session = shared_session(parties, timeout=timeout)
        return session.submit(
            compiled, inputs=inputs, seed=seed, config=config, timeout=timeout + 10
        )
    if runtime != "simulated":
        raise ValueError(
            f"unknown runtime {runtime!r}; use 'simulated', 'sockets' or 'service'"
        )
    runner = QueryRunner(parties, inputs, config, seed=seed)
    return runner.run(compiled)


def _apply_row_hints(dag: Dag, config: CompilationConfig) -> None:
    """Override estimated row counts with analyst-provided hints."""
    if not config.row_hints:
        return
    for node in dag.topological():
        hint = config.row_hints.get(node.out_rel.name)
        if hint is not None:
            node.out_rel.estimated_rows = int(hint)
