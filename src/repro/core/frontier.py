"""Finding the MPC frontier (§5.2).

Two families of rewrites shrink the portion of the DAG executed under MPC:

* **Push-down** moves the frontier *down* from the inputs: a ``concat`` of
  per-party relations is pushed past operators that distribute over the
  union (project, filter, row-wise arithmetic), so those operators run
  locally at each party before the data ever enters MPC.  Aggregations are
  *split* into per-party partial aggregations (local) and a small secondary
  aggregation over the partials (MPC).  Splits change the cardinality of the
  MPC's input — the number of distinct keys per party instead of the raw
  record count — so they require the parties' consent
  (``consent_to_cardinality_leakage``).
* **Push-up** moves the frontier *up* from the outputs: a chain of
  reversible operators directly above an output is computed in the clear by
  the recipient, because the output already determines the operators'
  inputs.  A leaf ``count`` aggregation is rewritten into an MPC projection
  of the group-by column plus a cleartext count at the recipient.
"""

from __future__ import annotations

import itertools

from repro.core.config import CompilationConfig
from repro.core.dag import Dag
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    DISTRIBUTIVE_OPS,
    Divide,
    Filter,
    Map,
    Multiply,
    OpNode,
    Project,
    SPLITTABLE_AGGS,
    is_reversible,
)
from repro.core.propagation import mark_mpc_frontier, propagate_ownership, propagate_trust
from repro.core.relation import Relation
from repro.data.schema import PUBLIC, Schema

_fresh = itertools.count()


def _fresh_name(base: str, suffix: str) -> str:
    return f"{base}__{suffix}_{next(_fresh)}"


# -- push-down ------------------------------------------------------------------------------------


def push_down(dag: Dag, config: CompilationConfig) -> int:
    """Apply push-down rewrites until a fixpoint; returns the number applied."""
    applied = 0
    changed = True
    while changed:
        changed = False
        propagate_ownership(dag)
        mark_mpc_frontier(dag)
        for concat in list(dag.find(lambda n: isinstance(n, Concat))):
            if not _is_partition_point(concat):
                continue
            for child in list(concat.children):
                if _push_concat_past(dag, concat, child, config):
                    applied += 1
                    changed = True
                    break
            if changed:
                break
    propagate_ownership(dag)
    mark_mpc_frontier(dag)
    propagate_trust(dag)
    return applied


def _is_partition_point(concat: Concat) -> bool:
    """A concat of singleton-owned relations is where data crosses parties."""
    owners = [p.out_rel.owner for p in concat.parents]
    return all(o is not None for o in owners) and len(set(owners)) > 1


def _push_concat_past(dag: Dag, concat: Concat, child: OpNode, config: CompilationConfig) -> bool:
    """Try to push ``concat`` below ``child``; returns True if rewritten."""
    if isinstance(child, DISTRIBUTIVE_OPS):
        if isinstance(child, Filter) and not config.push_down_private_filters:
            # SMCQL-compatible mode: only push filters on public columns down.
            parent_rel = concat.out_rel
            if PUBLIC not in parent_rel.column_trust(child.column):
                return False
        _distribute_unary(dag, concat, child)
        return True
    if isinstance(child, Aggregate) and not child.is_secondary:
        if child.func in SPLITTABLE_AGGS and config.consent_to_cardinality_leakage:
            _split_aggregate(dag, concat, child)
            return True
    return False


def _distribute_unary(dag: Dag, concat: Concat, child: OpNode) -> None:
    """Rewrite ``child(concat(R1..Rn))`` into ``concat(child(R1)..child(Rn))``."""
    per_party_nodes: list[OpNode] = []
    for parent in concat.parents:
        rel = Relation(
            name=_fresh_name(child.out_rel.name, parent.out_rel.owner or "local"),
            schema=child.out_rel.schema,
            stored_with=set(parent.out_rel.stored_with),
        )
        per_party_nodes.append(_clone_unary(child, rel, parent))

    new_concat_rel = Relation(
        name=_fresh_name(child.out_rel.name, "concat"),
        schema=child.out_rel.schema,
        stored_with=set(concat.out_rel.stored_with),
    )
    new_concat = Concat(new_concat_rel, per_party_nodes)

    # Children of the distributed operator now read from the new concat.
    for grandchild in list(child.children):
        grandchild.replace_parent(child, new_concat)
    # Detach the old operator and, if no longer used, the old concat.
    concat.children.remove(child)
    child.parents = []
    child.children = []
    if not concat.children:
        for parent in list(concat.parents):
            parent.children.remove(concat)
        concat.parents = []


def _split_aggregate(dag: Dag, concat: Concat, agg: Aggregate) -> None:
    """Split ``agg(concat(R1..Rn))`` into local partials plus an MPC merge."""
    merge_func = SPLITTABLE_AGGS[agg.func]
    partial_schema = agg.out_rel.schema

    partials: list[OpNode] = []
    for parent in concat.parents:
        rel = Relation(
            name=_fresh_name(agg.out_rel.name, parent.out_rel.owner or "local"),
            schema=partial_schema,
            stored_with=set(parent.out_rel.stored_with),
        )
        partials.append(
            Aggregate(rel, parent, agg.group_col, agg.agg_col, agg.func, agg.out_name)
        )

    concat_rel = Relation(
        name=_fresh_name(agg.out_rel.name, "partials"),
        schema=partial_schema,
        stored_with=set(concat.out_rel.stored_with),
    )
    partial_concat = Concat(concat_rel, partials)

    secondary = Aggregate(
        agg.out_rel.copy(_fresh_name(agg.out_rel.name, "merge")),
        partial_concat,
        agg.group_col,
        agg.out_name,
        merge_func,
        agg.out_name,
    )
    secondary.is_secondary = True

    for grandchild in list(agg.children):
        grandchild.replace_parent(agg, secondary)
    concat.children.remove(agg)
    agg.parents = []
    agg.children = []
    if not concat.children:
        for parent in list(concat.parents):
            parent.children.remove(concat)
        concat.parents = []


def _clone_unary(node: OpNode, out_rel: Relation, parent: OpNode) -> OpNode:
    if isinstance(node, Project):
        clone = Project(out_rel, parent, node.columns)
    elif isinstance(node, Filter):
        clone = Filter(out_rel, parent, node.column, node.op, node.value)
    elif isinstance(node, Multiply):
        clone = Multiply(out_rel, parent, node.out_name, node.left, node.right)
    elif isinstance(node, Divide):
        clone = Divide(out_rel, parent, node.out_name, node.left, node.right)
    elif isinstance(node, Map):
        clone = Map(out_rel, parent, node.out_name, node.left, node.op, node.right)
    elif isinstance(node, Compare):
        clone = Compare(out_rel, parent, node.out_name, node.left, node.op, node.right)
    elif isinstance(node, BoolOp):
        clone = BoolOp(out_rel, parent, node.out_name, node.op, node.operands)
    else:
        raise TypeError(f"cannot distribute operator {type(node).__name__}")
    check = getattr(node, "key_range_check", None)
    if check is not None:
        # Keep the composite-key range guard on every per-party copy of a
        # distributed encode operator.
        clone.key_range_check = check
    return clone


# -- push-up ---------------------------------------------------------------------------------------


def push_up(dag: Dag, config: CompilationConfig) -> int:
    """Lift reversible leaf operators out of MPC; returns the number lifted."""
    lifted = 0
    for output in dag.outputs():
        recipient = output.recipients[0]
        node = output.parent
        # Walk up through reversible single-use operators.
        while (
            node.is_mpc
            and is_reversible(node)
            and len(node.children) == 1
            and len(node.parents) == 1
        ):
            node.is_mpc = False
            node.run_at = recipient
            node.lifted = True
            lifted += 1
            node = node.parent
        # Special case: a leaf count aggregation reveals its group-key
        # frequencies anyway, so replace it with an MPC projection and a
        # cleartext count at the recipient.
        if (
            isinstance(node, Aggregate)
            and node.func == "count"
            and node.group_col is not None
            and node.is_mpc
            and len(node.children) == 1
            and not node.is_secondary
        ):
            _rewrite_leaf_count(node, recipient)
            lifted += 1
    propagate_trust(dag)
    return lifted


def _rewrite_leaf_count(agg: Aggregate, recipient: str) -> None:
    """Rewrite an MPC leaf count into MPC project + cleartext count."""
    parent = agg.parent
    project_rel = Relation(
        name=_fresh_name(agg.out_rel.name, "keys"),
        schema=parent.out_rel.schema.project([agg.group_col]),
        stored_with=set(parent.out_rel.stored_with),
    )
    project = Project(project_rel, parent, [agg.group_col])
    project.is_mpc = True

    clear_count = Aggregate(
        agg.out_rel.copy(_fresh_name(agg.out_rel.name, "clear_count")),
        project,
        agg.group_col,
        None,
        "count",
        agg.out_name,
    )
    clear_count.is_mpc = False
    clear_count.run_at = recipient
    clear_count.lifted = True

    for child in list(agg.children):
        child.replace_parent(agg, clear_count)
    parent.children.remove(agg)
    agg.parents = []
    agg.children = []
