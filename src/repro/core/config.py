"""Compilation and execution configuration.

The flags here correspond to the optimizations and consent decisions the
paper describes; disabling individual flags is how the ablation benchmarks
isolate the contribution of each transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CompilationConfig:
    """Switches controlling the compiler's rewrite passes."""

    #: Apply the MPC-frontier push-down (splitting work into local
    #: pre-processing, §5.2).  Required for Figure 4 / 7b behaviour.
    enable_push_down: bool = True
    #: Apply the MPC-frontier push-up (cleartext post-processing of
    #: reversible leaf operators, §5.2).
    enable_push_up: bool = True
    #: Insert hybrid operators when trust annotations allow it (§5.3).
    enable_hybrid_operators: bool = True
    #: Eliminate redundant oblivious sorts (§5.4).
    enable_sort_elimination: bool = True
    #: Push sorts up through concat via an oblivious merge (§5.4, listed as
    #: future work in the paper; implemented here as an optional extension).
    enable_sort_pushup: bool = False
    #: Push-down transformations may change the cardinality of MPC inputs
    #: (e.g. a split aggregation reveals per-party distinct-key counts);
    #: the paper requires all parties to consent to such rewrites.
    consent_to_cardinality_leakage: bool = True
    #: Parties allowed to act as the selectively-trusted party.  ``None``
    #: means any annotated party may be chosen; at most one STP is ever used.
    allowed_stps: list[str] | None = None
    #: MPC backend to generate code for: ``"sharemind"`` or ``"obliv-c"``.
    mpc_backend: str = "sharemind"
    #: Cleartext backend: ``"spark"`` or ``"python"``.
    cleartext_backend: str = "python"
    #: Disable the push-down of filters on private columns past the MPC
    #: frontier.  Matching SMCQL's (stricter) guarantee for the §7.4
    #: comparison requires setting this to False.
    push_down_private_filters: bool = True
    #: Extra per-relation row hints, keyed by relation name (overrides the
    #: default selectivity-based estimates used by the cost estimator).
    row_hints: dict[str, int] = field(default_factory=dict)
