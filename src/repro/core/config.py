"""Compilation and execution configuration.

The flags here correspond to the optimizations and consent decisions the
paper describes; disabling individual flags is how the ablation benchmarks
isolate the contribution of each transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CompilationConfig:
    """Switches controlling the compiler's rewrite passes."""

    #: Apply the MPC-frontier push-down (splitting work into local
    #: pre-processing, §5.2).  Required for Figure 4 / 7b behaviour.
    enable_push_down: bool = True
    #: Apply the MPC-frontier push-up (cleartext post-processing of
    #: reversible leaf operators, §5.2).
    enable_push_up: bool = True
    #: Insert hybrid operators when trust annotations allow it (§5.3).
    enable_hybrid_operators: bool = True
    #: Eliminate redundant oblivious sorts (§5.4).
    enable_sort_elimination: bool = True
    #: Push sorts up through concat via an oblivious merge (§5.4, listed as
    #: future work in the paper; implemented here as an optional extension).
    enable_sort_pushup: bool = False
    #: Push-down transformations may change the cardinality of MPC inputs
    #: (e.g. a split aggregation reveals per-party distinct-key counts);
    #: the paper requires all parties to consent to such rewrites.
    consent_to_cardinality_leakage: bool = True
    #: Parties allowed to act as the selectively-trusted party.  ``None``
    #: means any annotated party may be chosen; at most one STP is ever used.
    allowed_stps: list[str] | None = None
    #: MPC backend to generate code for: ``"sharemind"`` or ``"obliv-c"``.
    mpc_backend: str = "sharemind"
    #: Cleartext backend: ``"spark"`` or ``"python"``.
    cleartext_backend: str = "python"
    #: Disable the push-down of filters on private columns past the MPC
    #: frontier.  Matching SMCQL's (stricter) guarantee for the §7.4
    #: comparison requires setting this to False.
    push_down_private_filters: bool = True
    #: Extra per-relation row hints, keyed by relation name (overrides the
    #: default selectivity-based estimates used by the cost estimator).
    row_hints: dict[str, int] = field(default_factory=dict)
    #: Cleartext execution engine: ``"row"`` (one ``Table`` call per
    #: operator — the semantic oracle) or ``"columnar"`` (the vectorized
    #: :mod:`repro.exec` engine running whole-column batches with lazy
    #: filter masks).  ``"columnar"`` replaces both row engines; the
    #: differential corpus holds it byte-identical to the row oracle.
    executor: str = "row"
    #: Host the runtime's mesh and control listeners bind and advertise to
    #: peers.  The loopback default keeps single-machine behaviour; set a
    #: routable address to run agents across real hosts (TLS is a separate,
    #: still-open roadmap item).
    bind_host: str = "127.0.0.1"


@dataclass
class RestartPolicy:
    """How the service runtime supervises and restarts crashed party agents.

    Passing a policy to :func:`repro.runtime.service.open_session` turns on
    the :class:`~repro.runtime.supervisor.AgentSupervisor`: an agent process
    that dies (control-link EOF, or missed heartbeats when
    :attr:`heartbeat_interval_seconds` is set) is restarted with exponential
    backoff, re-joined to the surviving agents' TCP mesh, and re-armed with
    the session's standing inputs — instead of the crash breaking the whole
    session.  A party that keeps dying exhausts its *restart budget*
    (:attr:`max_restarts` deaths within :attr:`window_seconds`) and escalates
    to a permanent failure: the session breaks with a structured
    :class:`~repro.runtime.service.AgentFailure` carrying the attempt
    history.
    """

    #: Restart budget: deaths of one party tolerated within
    #: :attr:`window_seconds` before the failure is declared permanent.
    max_restarts: int = 5
    #: Sliding window (seconds) the restart budget is counted over.
    window_seconds: float = 60.0
    #: Backoff before the first restart attempt (seconds); doubled per
    #: consecutive attempt for the same party up to
    #: :attr:`max_backoff_seconds`.
    backoff_seconds: float = 0.05
    #: Multiplier applied to the backoff after each consecutive restart.
    backoff_multiplier: float = 2.0
    #: Upper bound on the per-attempt backoff (seconds).
    max_backoff_seconds: float = 5.0
    #: Interval between supervisor heartbeat pings on each control link.
    #: ``None`` disables heartbeats (death is then detected only via
    #: control-link EOF — a crashed process, not a wedged one).
    heartbeat_interval_seconds: float | None = 1.0
    #: Consecutive missed heartbeats after which a silent agent is declared
    #: dead and its process killed (triggering the restart path).
    heartbeat_misses: int = 5

    def validate(self) -> "RestartPolicy":
        if not isinstance(self.max_restarts, int) or self.max_restarts < 1:
            raise ValueError(f"RestartPolicy.max_restarts must be an int >= 1, got {self.max_restarts!r}")
        for name in ("window_seconds", "backoff_seconds", "max_backoff_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(f"RestartPolicy.{name} must be a number >= 0, got {value!r}")
        if not isinstance(self.backoff_multiplier, (int, float)) or self.backoff_multiplier < 1:
            raise ValueError(
                f"RestartPolicy.backoff_multiplier must be a number >= 1, got {self.backoff_multiplier!r}"
            )
        if self.heartbeat_interval_seconds is not None and (
            not isinstance(self.heartbeat_interval_seconds, (int, float))
            or isinstance(self.heartbeat_interval_seconds, bool)
            or self.heartbeat_interval_seconds <= 0
        ):
            raise ValueError(
                "RestartPolicy.heartbeat_interval_seconds must be a number > 0 or None, "
                f"got {self.heartbeat_interval_seconds!r}"
            )
        if not isinstance(self.heartbeat_misses, int) or self.heartbeat_misses < 1:
            raise ValueError(
                f"RestartPolicy.heartbeat_misses must be an int >= 1, got {self.heartbeat_misses!r}"
            )
        return self


@dataclass
class RetryPolicy:
    """How the gateway retries queries that failed for *infrastructure*
    reasons (an agent crash mid-query, a mesh link death or timeout).

    Queries are pure functions of (plan, inputs, seed), so replaying one is
    always safe: a retried query re-executes from scratch on the recovered
    mesh and produces byte-identical results.  Only infrastructure failures
    are retried — a query that raised a real error (``SecurityError``, a bad
    plan, an engine bug) fails immediately on every attempt count.
    """

    #: Total attempts per query (1 = no retry).
    max_attempts: int = 3
    #: Also retry queries whose *primary* error is a transport-level failure
    #: reported by a live agent (e.g. a mesh timeout after a dropped frame),
    #: not just coordinator-detected agent crashes.
    retry_transport_errors: bool = True
    #: Backoff before the first retry (seconds), doubled per attempt.
    backoff_seconds: float = 0.05
    #: Multiplier applied to the backoff after each retry.
    backoff_multiplier: float = 2.0
    #: Upper bound on the per-retry backoff (seconds).
    max_backoff_seconds: float = 2.0

    def validate(self) -> "RetryPolicy":
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(f"RetryPolicy.max_attempts must be an int >= 1, got {self.max_attempts!r}")
        for name in ("backoff_seconds", "max_backoff_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(f"RetryPolicy.{name} must be a number >= 0, got {value!r}")
        if not isinstance(self.backoff_multiplier, (int, float)) or self.backoff_multiplier < 1:
            raise ValueError(
                f"RetryPolicy.backoff_multiplier must be a number >= 1, got {self.backoff_multiplier!r}"
            )
        return self


@dataclass
class GatewayConfig:
    """Admission-control and fair-scheduling limits of a query session.

    The query gateway (:mod:`repro.runtime.gateway`) fronts every standing
    session: queries are dispatched to the agent mesh while capacity lasts,
    queued while limits allow, and *shed* with an explicit
    :class:`~repro.runtime.gateway.QueryRejected` beyond that — under
    overload an analyst gets an immediate, retryable error instead of an
    unbounded queue silently growing behind everyone's backs.

    Every limit is optional: ``None`` means "no limit at that axis", and the
    all-``None`` default reproduces the pre-gateway behaviour (dispatch up
    to the agents' worker capacity, buffer the rest without bound).
    """

    #: Queries dispatched to the agents concurrently.  ``None`` mirrors the
    #: session's agent worker capacity (``max_workers``) so queueing starts
    #: exactly where the agents would start queueing internally.
    max_in_flight: int | None = None
    #: Total queries waiting in the gateway across all analysts; one more
    #: submission is shed with ``QueryRejected``.  ``None`` = unbounded.
    max_queue_depth: int | None = None
    #: Waiting queries per analyst principal.  ``None`` = unbounded.
    max_queue_per_analyst: int | None = None
    #: Dispatched queries per analyst principal — a fairness floor: one hot
    #: analyst cannot occupy every agent worker slot.  ``None`` = unbounded.
    max_in_flight_per_analyst: int | None = None
    #: Weighted round-robin weights per analyst principal (default weight
    #: applies to analysts not named here).  Dispatch opportunities are
    #: distributed proportionally to weight when queries are queued.
    analyst_weights: dict[str, int] = field(default_factory=dict)
    #: Weight of analysts absent from :attr:`analyst_weights`.
    default_weight: int = 1

    def validate(self) -> "GatewayConfig":
        for name in (
            "max_in_flight",
            "max_queue_depth",
            "max_queue_per_analyst",
            "max_in_flight_per_analyst",
        ):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(f"GatewayConfig.{name} must be an int >= 1 or None, got {value!r}")
        if not isinstance(self.default_weight, int) or self.default_weight < 1:
            raise ValueError(f"GatewayConfig.default_weight must be an int >= 1, got {self.default_weight!r}")
        for analyst, weight in self.analyst_weights.items():
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(
                    f"GatewayConfig.analyst_weights[{analyst!r}] must be an int >= 1, got {weight!r}"
                )
        return self
