"""Compilation and execution configuration.

The flags here correspond to the optimizations and consent decisions the
paper describes; disabling individual flags is how the ablation benchmarks
isolate the contribution of each transformation.
"""

from __future__ import annotations

import ssl
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class CompilationConfig:
    """Switches controlling the compiler's rewrite passes."""

    #: Apply the MPC-frontier push-down (splitting work into local
    #: pre-processing, §5.2).  Required for Figure 4 / 7b behaviour.
    enable_push_down: bool = True
    #: Apply the MPC-frontier push-up (cleartext post-processing of
    #: reversible leaf operators, §5.2).
    enable_push_up: bool = True
    #: Insert hybrid operators when trust annotations allow it (§5.3).
    enable_hybrid_operators: bool = True
    #: Eliminate redundant oblivious sorts (§5.4).
    enable_sort_elimination: bool = True
    #: Push sorts up through concat via an oblivious merge (§5.4, listed as
    #: future work in the paper; implemented here as an optional extension).
    enable_sort_pushup: bool = False
    #: Push-down transformations may change the cardinality of MPC inputs
    #: (e.g. a split aggregation reveals per-party distinct-key counts);
    #: the paper requires all parties to consent to such rewrites.
    consent_to_cardinality_leakage: bool = True
    #: Parties allowed to act as the selectively-trusted party.  ``None``
    #: means any annotated party may be chosen; at most one STP is ever used.
    allowed_stps: list[str] | None = None
    #: MPC backend to generate code for: ``"sharemind"`` or ``"obliv-c"``.
    mpc_backend: str = "sharemind"
    #: Cleartext backend: ``"spark"`` or ``"python"``.
    cleartext_backend: str = "python"
    #: Disable the push-down of filters on private columns past the MPC
    #: frontier.  Matching SMCQL's (stricter) guarantee for the §7.4
    #: comparison requires setting this to False.
    push_down_private_filters: bool = True
    #: Extra per-relation row hints, keyed by relation name (overrides the
    #: default selectivity-based estimates used by the cost estimator).
    row_hints: dict[str, int] = field(default_factory=dict)
    #: Cleartext execution engine: ``"row"`` (one ``Table`` call per
    #: operator — the semantic oracle) or ``"columnar"`` (the vectorized
    #: :mod:`repro.exec` engine running whole-column batches with lazy
    #: filter masks).  ``"columnar"`` replaces both row engines; the
    #: differential corpus holds it byte-identical to the row oracle.
    executor: str = "row"
    #: Host the runtime's mesh and control listeners bind and advertise to
    #: peers.  The loopback default keeps single-machine behaviour; set a
    #: routable address to run agents across real hosts — and pass a
    #: :class:`TransportSecurity` to ``open_session`` so the cross-host
    #: links are mutually authenticated TLS, not plaintext.
    bind_host: str = "127.0.0.1"


@dataclass
class TransportSecurity:
    """Mutual-TLS material for every mesh, control, and rejoin link.

    A session configured with a ``TransportSecurity`` speaks TLS with
    *mutual* authentication on every socket: the coordinator and each party
    agent present a certificate issued by the session CA (:attr:`ca_cert`),
    and both sides require and verify the peer's certificate against that
    CA.  Identity is carried in the certificate's CN — ``server_context`` /
    ``client_context`` disable hostname checking because parties move
    between hosts; instead the runtime verifies the authenticated CN against
    the party id claimed in the (nonce-carrying) hello frame, so a peer
    cannot impersonate another party even after a crash and rejoin.

    Certificates and keys are resolved per identity name: an explicit entry
    in :attr:`certs` / :attr:`keys` wins, otherwise ``<cert_dir>/<name>.crt``
    and ``<cert_dir>/<name>.key``.  For development and tests,
    :meth:`dev` generates a throwaway CA plus per-identity credentials in a
    directory; production deployments provision real per-party certificates
    out of band and point the fields at them.
    """

    #: PEM file with the CA certificate every link verifies peers against.
    ca_cert: str | Path = ""
    #: Directory holding ``<name>.crt`` / ``<name>.key`` per identity.
    cert_dir: str | Path | None = None
    #: Per-identity certificate path overrides (win over :attr:`cert_dir`).
    certs: dict[str, str | Path] = field(default_factory=dict)
    #: Per-identity private-key path overrides (win over :attr:`cert_dir`).
    keys: dict[str, str | Path] = field(default_factory=dict)
    #: Identity name the coordinator authenticates as on control links.
    coordinator_name: str = "coordinator"

    def credentials(self, name: str) -> tuple[Path, Path]:
        """The (certificate, key) PEM paths for identity ``name``."""
        cert = self.certs.get(name)
        key = self.keys.get(name)
        if cert is None and self.cert_dir is not None:
            cert = Path(self.cert_dir) / f"{name}.crt"
        if key is None and self.cert_dir is not None:
            key = Path(self.cert_dir) / f"{name}.key"
        if cert is None or key is None:
            raise ValueError(
                f"TransportSecurity has no certificate/key for identity {name!r} "
                "(set cert_dir or per-identity certs/keys entries)"
            )
        return Path(cert), Path(key)

    def _context(self, name: str, *, server: bool) -> ssl.SSLContext:
        cert, key = self.credentials(name)
        context = ssl.SSLContext(
            ssl.PROTOCOL_TLS_SERVER if server else ssl.PROTOCOL_TLS_CLIENT
        )
        # Party identity is the certificate CN, verified explicitly against
        # the hello frame by the runtime; hostname checks would break the
        # moment a party migrates hosts or rejoins from a new address.
        context.check_hostname = False
        context.verify_mode = ssl.CERT_REQUIRED
        context.minimum_version = ssl.TLSVersion.TLSv1_2
        # One reader thread and locked writer threads share each socket;
        # renegotiation mid-stream would break that discipline.
        context.options |= ssl.OP_NO_RENEGOTIATION
        try:
            context.load_verify_locations(cafile=str(self.ca_cert))
            context.load_cert_chain(certfile=str(cert), keyfile=str(key))
        except (OSError, ssl.SSLError) as exc:
            raise ValueError(
                f"TransportSecurity could not load credentials for {name!r}: {exc}"
            ) from exc
        return context

    def server_context(self, name: str) -> ssl.SSLContext:
        """A mutually-authenticating server-side context for identity ``name``."""
        return self._context(name, server=True)

    def client_context(self, name: str) -> ssl.SSLContext:
        """A mutually-authenticating client-side context for identity ``name``."""
        return self._context(name, server=False)

    def validate(self, identities: list[str] | None = None) -> "TransportSecurity":
        """Check the CA and (optionally) each identity's material exists."""
        if not self.ca_cert or not Path(self.ca_cert).is_file():
            raise ValueError(f"TransportSecurity.ca_cert {self.ca_cert!r} is not a readable file")
        if not isinstance(self.coordinator_name, str) or not self.coordinator_name:
            raise ValueError("TransportSecurity.coordinator_name must be a non-empty string")
        for name in identities or ():
            cert, key = self.credentials(name)
            for path in (cert, key):
                if not path.is_file():
                    raise ValueError(
                        f"TransportSecurity credential {path} for identity {name!r} is missing"
                    )
        return self

    # -- development credential generation -------------------------------------------

    @staticmethod
    def dev(
        identities: list[str],
        directory: str | Path,
        *,
        coordinator_name: str = "coordinator",
        valid_days: int = 365,
    ) -> "TransportSecurity":
        """Generate a throwaway CA plus per-identity credentials in ``directory``.

        Every name in ``identities`` (plus ``coordinator_name``) gets a
        key pair and a CA-signed certificate with its name as CN.  Uses the
        ``cryptography`` package when available and falls back to the
        ``openssl`` CLI otherwise; raises :class:`RuntimeError` when neither
        is usable.  The CA key is kept in the directory so tests can
        :meth:`issue` additional (e.g. already-expired) certificates.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        names = list(dict.fromkeys(list(identities) + [coordinator_name]))
        security = TransportSecurity(
            ca_cert=directory / "ca.crt",
            cert_dir=directory,
            coordinator_name=coordinator_name,
        )
        try:
            security._dev_cryptography(names, valid_days)
        except ImportError:
            security._dev_openssl(names, valid_days)
        return security

    def issue(self, name: str, *, valid_days: int = 365) -> tuple[Path, Path]:
        """(Re-)issue a certificate for ``name`` signed by the dev CA.

        Requires the ``cryptography`` package and a ``ca.key`` next to
        :attr:`ca_cert` (both guaranteed by :meth:`dev`'s primary path).
        Negative ``valid_days`` mints an *already expired* certificate — the
        fixture the TLS failure tests use.
        """
        directory = Path(self.cert_dir if self.cert_dir is not None else Path(self.ca_cert).parent)
        self._issue_cryptography(directory, name, valid_days)
        return self.credentials(name)

    def _dev_cryptography(self, names: list[str], valid_days: int) -> None:
        import datetime as _dt

        from cryptography import x509
        from cryptography.hazmat.primitives import hashes, serialization
        from cryptography.hazmat.primitives.asymmetric import ec
        from cryptography.x509.oid import NameOID

        directory = Path(self.cert_dir)  # type: ignore[arg-type]
        now = _dt.datetime.now(_dt.timezone.utc)
        ca_key = ec.generate_private_key(ec.SECP256R1())
        ca_name = x509.Name([x509.NameAttribute(NameOID.COMMON_NAME, "repro-dev-ca")])
        ca_cert = (
            x509.CertificateBuilder()
            .subject_name(ca_name)
            .issuer_name(ca_name)
            .public_key(ca_key.public_key())
            .serial_number(x509.random_serial_number())
            .not_valid_before(now - _dt.timedelta(days=1))
            .not_valid_after(now + _dt.timedelta(days=max(valid_days, 1)))
            .add_extension(x509.BasicConstraints(ca=True, path_length=0), critical=True)
            .sign(ca_key, hashes.SHA256())
        )
        (directory / "ca.crt").write_bytes(ca_cert.public_bytes(serialization.Encoding.PEM))
        (directory / "ca.key").write_bytes(
            ca_key.private_bytes(
                serialization.Encoding.PEM,
                serialization.PrivateFormat.PKCS8,
                serialization.NoEncryption(),
            )
        )
        for name in names:
            self._issue_cryptography(directory, name, valid_days)

    def _issue_cryptography(self, directory: Path, name: str, valid_days: int) -> None:
        import datetime as _dt

        from cryptography import x509
        from cryptography.hazmat.primitives import hashes, serialization
        from cryptography.hazmat.primitives.asymmetric import ec
        from cryptography.x509.oid import NameOID

        ca_cert = x509.load_pem_x509_certificate((directory / "ca.crt").read_bytes())
        ca_key = serialization.load_pem_private_key(
            (directory / "ca.key").read_bytes(), password=None
        )
        now = _dt.datetime.now(_dt.timezone.utc)
        key = ec.generate_private_key(ec.SECP256R1())
        not_after = now + _dt.timedelta(days=valid_days)
        cert = (
            x509.CertificateBuilder()
            .subject_name(x509.Name([x509.NameAttribute(NameOID.COMMON_NAME, name)]))
            .issuer_name(ca_cert.subject)
            .public_key(key.public_key())
            .serial_number(x509.random_serial_number())
            .not_valid_before(min(now - _dt.timedelta(days=1), not_after - _dt.timedelta(days=1)))
            .not_valid_after(not_after)
            .add_extension(x509.BasicConstraints(ca=False, path_length=None), critical=True)
            .sign(ca_key, hashes.SHA256())
        )
        (directory / f"{name}.crt").write_bytes(cert.public_bytes(serialization.Encoding.PEM))
        (directory / f"{name}.key").write_bytes(
            key.private_bytes(
                serialization.Encoding.PEM,
                serialization.PrivateFormat.PKCS8,
                serialization.NoEncryption(),
            )
        )

    def _dev_openssl(self, names: list[str], valid_days: int) -> None:
        import shutil
        import subprocess

        if shutil.which("openssl") is None:
            raise RuntimeError(
                "TransportSecurity.dev needs either the 'cryptography' package "
                "or the 'openssl' CLI; neither is available"
            )
        directory = Path(self.cert_dir)  # type: ignore[arg-type]
        days = str(max(valid_days, 1))

        def run(*argv: str) -> None:
            subprocess.run(argv, check=True, capture_output=True, cwd=directory)

        run("openssl", "ecparam", "-name", "prime256v1", "-genkey", "-noout",
            "-out", "ca.key")
        run("openssl", "req", "-x509", "-new", "-key", "ca.key", "-sha256",
            "-days", days, "-subj", "/CN=repro-dev-ca", "-out", "ca.crt")
        for name in names:
            run("openssl", "ecparam", "-name", "prime256v1", "-genkey", "-noout",
                "-out", f"{name}.key")
            run("openssl", "req", "-new", "-key", f"{name}.key",
                "-subj", f"/CN={name}", "-out", f"{name}.csr")
            run("openssl", "x509", "-req", "-in", f"{name}.csr", "-CA", "ca.crt",
                "-CAkey", "ca.key", "-CAcreateserial", "-days", days, "-sha256",
                "-out", f"{name}.crt")
            (directory / f"{name}.csr").unlink(missing_ok=True)


@dataclass
class RestartPolicy:
    """How the service runtime supervises and restarts crashed party agents.

    Passing a policy to :func:`repro.runtime.service.open_session` turns on
    the :class:`~repro.runtime.supervisor.AgentSupervisor`: an agent process
    that dies (control-link EOF, or missed heartbeats when
    :attr:`heartbeat_interval_seconds` is set) is restarted with exponential
    backoff, re-joined to the surviving agents' TCP mesh, and re-armed with
    the session's standing inputs — instead of the crash breaking the whole
    session.  A party that keeps dying exhausts its *restart budget*
    (:attr:`max_restarts` deaths within :attr:`window_seconds`) and escalates
    to a permanent failure: the session breaks with a structured
    :class:`~repro.runtime.service.AgentFailure` carrying the attempt
    history.
    """

    #: Restart budget: deaths of one party tolerated within
    #: :attr:`window_seconds` before the failure is declared permanent.
    max_restarts: int = 5
    #: Sliding window (seconds) the restart budget is counted over.
    window_seconds: float = 60.0
    #: Backoff before the first restart attempt (seconds); doubled per
    #: consecutive attempt for the same party up to
    #: :attr:`max_backoff_seconds`.
    backoff_seconds: float = 0.05
    #: Multiplier applied to the backoff after each consecutive restart.
    backoff_multiplier: float = 2.0
    #: Upper bound on the per-attempt backoff (seconds).
    max_backoff_seconds: float = 5.0
    #: Interval between supervisor heartbeat pings on each control link.
    #: ``None`` disables heartbeats (death is then detected only via
    #: control-link EOF — a crashed process, not a wedged one).
    heartbeat_interval_seconds: float | None = 1.0
    #: Consecutive missed heartbeats after which a silent agent is declared
    #: dead and its process killed (triggering the restart path).
    heartbeat_misses: int = 5

    def validate(self) -> "RestartPolicy":
        if not isinstance(self.max_restarts, int) or self.max_restarts < 1:
            raise ValueError(f"RestartPolicy.max_restarts must be an int >= 1, got {self.max_restarts!r}")
        for name in ("window_seconds", "backoff_seconds", "max_backoff_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(f"RestartPolicy.{name} must be a number >= 0, got {value!r}")
        if not isinstance(self.backoff_multiplier, (int, float)) or self.backoff_multiplier < 1:
            raise ValueError(
                f"RestartPolicy.backoff_multiplier must be a number >= 1, got {self.backoff_multiplier!r}"
            )
        if self.heartbeat_interval_seconds is not None and (
            not isinstance(self.heartbeat_interval_seconds, (int, float))
            or isinstance(self.heartbeat_interval_seconds, bool)
            or self.heartbeat_interval_seconds <= 0
        ):
            raise ValueError(
                "RestartPolicy.heartbeat_interval_seconds must be a number > 0 or None, "
                f"got {self.heartbeat_interval_seconds!r}"
            )
        if not isinstance(self.heartbeat_misses, int) or self.heartbeat_misses < 1:
            raise ValueError(
                f"RestartPolicy.heartbeat_misses must be an int >= 1, got {self.heartbeat_misses!r}"
            )
        return self


@dataclass
class RetryPolicy:
    """How the gateway retries queries that failed for *infrastructure*
    reasons (an agent crash mid-query, a mesh link death or timeout).

    Queries are pure functions of (plan, inputs, seed), so replaying one is
    always safe: a retried query re-executes from scratch on the recovered
    mesh and produces byte-identical results.  Only infrastructure failures
    are retried — a query that raised a real error (``SecurityError``, a bad
    plan, an engine bug) fails immediately on every attempt count.
    """

    #: Total attempts per query (1 = no retry).
    max_attempts: int = 3
    #: Also retry queries whose *primary* error is a transport-level failure
    #: reported by a live agent (e.g. a mesh timeout after a dropped frame),
    #: not just coordinator-detected agent crashes.
    retry_transport_errors: bool = True
    #: Backoff before the first retry (seconds), doubled per attempt.
    backoff_seconds: float = 0.05
    #: Multiplier applied to the backoff after each retry.
    backoff_multiplier: float = 2.0
    #: Upper bound on the per-retry backoff (seconds).
    max_backoff_seconds: float = 2.0

    def validate(self) -> "RetryPolicy":
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(f"RetryPolicy.max_attempts must be an int >= 1, got {self.max_attempts!r}")
        for name in ("backoff_seconds", "max_backoff_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(f"RetryPolicy.{name} must be a number >= 0, got {value!r}")
        if not isinstance(self.backoff_multiplier, (int, float)) or self.backoff_multiplier < 1:
            raise ValueError(
                f"RetryPolicy.backoff_multiplier must be a number >= 1, got {self.backoff_multiplier!r}"
            )
        return self


@dataclass
class GatewayConfig:
    """Admission-control and fair-scheduling limits of a query session.

    The query gateway (:mod:`repro.runtime.gateway`) fronts every standing
    session: queries are dispatched to the agent mesh while capacity lasts,
    queued while limits allow, and *shed* with an explicit
    :class:`~repro.runtime.gateway.QueryRejected` beyond that — under
    overload an analyst gets an immediate, retryable error instead of an
    unbounded queue silently growing behind everyone's backs.

    Every limit is optional: ``None`` means "no limit at that axis", and the
    all-``None`` default reproduces the pre-gateway behaviour (dispatch up
    to the agents' worker capacity, buffer the rest without bound).
    """

    #: Queries dispatched to the agents concurrently.  ``None`` mirrors the
    #: session's agent worker capacity (``max_workers``) so queueing starts
    #: exactly where the agents would start queueing internally.
    max_in_flight: int | None = None
    #: Total queries waiting in the gateway across all analysts; one more
    #: submission is shed with ``QueryRejected``.  ``None`` = unbounded.
    max_queue_depth: int | None = None
    #: Waiting queries per analyst principal.  ``None`` = unbounded.
    max_queue_per_analyst: int | None = None
    #: Dispatched queries per analyst principal — a fairness floor: one hot
    #: analyst cannot occupy every agent worker slot.  ``None`` = unbounded.
    max_in_flight_per_analyst: int | None = None
    #: Weighted round-robin weights per analyst principal (default weight
    #: applies to analysts not named here).  Dispatch opportunities are
    #: distributed proportionally to weight when queries are queued.
    analyst_weights: dict[str, int] = field(default_factory=dict)
    #: Weight of analysts absent from :attr:`analyst_weights`.
    default_weight: int = 1

    def validate(self) -> "GatewayConfig":
        for name in (
            "max_in_flight",
            "max_queue_depth",
            "max_queue_per_analyst",
            "max_in_flight_per_analyst",
        ):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(f"GatewayConfig.{name} must be an int >= 1 or None, got {value!r}")
        if not isinstance(self.default_weight, int) or self.default_weight < 1:
            raise ValueError(f"GatewayConfig.default_weight must be an int >= 1, got {self.default_weight!r}")
        for analyst, weight in self.analyst_weights.items():
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(
                    f"GatewayConfig.analyst_weights[{analyst!r}] must be an int >= 1, got {weight!r}"
                )
        return self
