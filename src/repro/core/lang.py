"""LINQ-style query frontend.

Analysts describe a Conclave query as if all data lived in one database
(§4.2).  Since the expression-API redesign the frontend is built around a
small typed expression AST (:mod:`repro.core.expr`): predicates and derived
columns are ordinary Python expressions over :func:`repro.core.expr.col` and
:func:`repro.core.expr.lit`::

    import repro as cc

    with cc.QueryContext() as q:
        pA, pB = cc.Party("mpc.a.com"), cc.Party("mpc.b.com")
        schema = [cc.Column("ssn", cc.INT, trust=[pA]), cc.Column("score", cc.INT)]
        scores1 = cc.new_table("scores1", schema, at=pB)
        ...
        good = scores.filter((cc.col("score") > 600) & (cc.col("score") < 850))
        joined = demo.join(scores, on="ssn")                      # or on=[("a","b"), ("c","d")]
        stats = joined.aggregate(group=["zip"],
                                 aggs={"total": cc.SUM("score"), "cnt": cc.COUNT()})
        avg = stats.with_column("avg", cc.col("total") / cc.col("cnt"))
        avg.collect("avg_scores", to=[pA])

Every builder method *lowers* its expressions into the compiler's fixed
operator vocabulary — ``Filter`` chains for conjunctions of simple
predicates, ``Compare``/``BoolOp`` mask columns for compound predicates,
``Multiply``/``Divide``/``Map`` chains for arithmetic, a composite-key
encode plus a single-key ``Join`` for multi-column joins, and per-aggregate
``Aggregate`` nodes joined on the group key for multi-aggregate group-bys —
so the ownership/trust propagation, MPC-frontier and hybrid passes operate
on plain relational operators and need no knowledge of the AST.

The pre-redesign call shapes (``filter(col, op, value)``, ``multiply``,
``divide``, ``join(left=…, right=…)``, ``aggregate(out, func, …)``) keep
working as thin shims that emit a :class:`DeprecationWarning`.

Query construction is safe under concurrency: the active-context stack
lives in a :class:`contextvars.ContextVar`, so concurrent asyncio tasks (or
threads) building queries simultaneously each see their own stack.
"""

from __future__ import annotations

import itertools
import warnings
from contextvars import ContextVar
from typing import Mapping, Sequence

from repro.core.expr import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Negation,
    as_simple_comparison,
    conjuncts,
    validate_columns,
)
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    Join,
    Limit,
    Map,
    Multiply,
    OpNode,
    Project,
    SortBy,
    validate_comparison_op,
)
from repro.core.party import Party
from repro.core.relation import Relation
from repro.core.dag import Dag
from repro.core.types import AggSpec, Column, build_schema
from repro.data.schema import ColumnDef, ColumnType, Schema

#: Packing base of the composite-key encoding used for multi-column join and
#: group-by keys: ``key = ((k1 * BASE) + k2) * BASE + k3 …``.  The encoding
#: is collision-free while every key component is a non-negative integer
#: below the base; pass ``key_base=`` to ``join`` for wider domains.
COMPOSITE_KEY_BASE = 1 << 20

#: Aggregation functions the frontend accepts.
AGG_FUNCS = ("sum", "count", "min", "max", "mean")

#: Stack of active query contexts.  A ContextVar (not a module-level list)
#: so concurrent query construction — async serving, parallel benchmarks —
#: cannot interleave two queries' operator nodes.
_context_stack: ContextVar[tuple["QueryContext", ...]] = ContextVar(
    "conclave_query_contexts", default=()
)


def _deprecated(message: str) -> None:
    warnings.warn(message, DeprecationWarning, stacklevel=3)


class QueryContext:
    """Collects the operator nodes of one query.

    Use as a context manager (``with QueryContext() as q:``) or explicitly;
    the module-level helpers (:func:`new_table`, :func:`concat`) operate on
    the innermost active context *of the current thread or asyncio task*.
    """

    def __init__(self):
        self._roots: list[Create] = []
        self._outputs: list[Collect] = []
        self._name_counter = itertools.count()
        self._col_counter = itertools.count()
        self._names: set[str] = set()

    # -- context management -----------------------------------------------------------

    def __enter__(self) -> "QueryContext":
        _context_stack.set(_context_stack.get() + (self,))
        return self

    def __exit__(self, *exc) -> None:
        stack = list(_context_stack.get())
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        _context_stack.set(tuple(stack))

    @staticmethod
    def current() -> "QueryContext":
        stack = _context_stack.get()
        if not stack:
            raise RuntimeError(
                "no active QueryContext; wrap query construction in `with QueryContext():`"
            )
        return stack[-1]

    # -- relation naming -----------------------------------------------------------------

    def fresh_name(self, hint: str) -> str:
        name = hint
        while name in self._names:
            name = f"{hint}_{next(self._name_counter)}"
        self._names.add(name)
        return name

    def fresh_column(self, *schemas: Schema, prefix: str = "_e") -> str:
        """A column name unused by any of the given schemas (for lowering temps)."""
        while True:
            name = f"{prefix}{next(self._col_counter)}"
            if all(name not in schema for schema in schemas):
                return name

    # -- inputs and outputs -----------------------------------------------------------------

    def new_table(
        self,
        name: str,
        columns: Sequence[Column],
        at: Party,
        estimated_rows: int | None = None,
    ) -> "RelationHandle":
        """Declare an input relation stored at party ``at``."""
        if not isinstance(at, Party):
            raise TypeError("`at` must be a Party")
        schema = build_schema(columns, owner=at)
        rel = Relation(
            name=self.fresh_name(name),
            schema=schema,
            stored_with={at.name},
            owner=at.name,
            trust={c.name: c.trust for c in schema},
            estimated_rows=estimated_rows,
        )
        node = Create(rel)
        self._roots.append(node)
        return RelationHandle(self, node)

    def concat(self, handles: Sequence["RelationHandle"], name: str | None = None) -> "RelationHandle":
        """Combine several parties' relations into one partitioned relation."""
        if not handles:
            raise ValueError("concat requires at least one relation")
        nodes = [h.node for h in handles]
        first_schema = nodes[0].out_rel.schema
        for n in nodes[1:]:
            if not first_schema.concat_compatible(n.out_rel.schema):
                raise ValueError("concat inputs must share the same schema")
        stored = set()
        rows = 0
        known_rows = True
        for n in nodes:
            stored |= n.out_rel.stored_with
            if n.out_rel.estimated_rows is None:
                known_rows = False
            else:
                rows += n.out_rel.estimated_rows
        rel = Relation(
            name=self.fresh_name(name or "concat"),
            schema=first_schema,
            stored_with=stored,
            estimated_rows=rows if known_rows else None,
        )
        node = Concat(rel, nodes)
        return RelationHandle(self, node)

    def build_dag(self) -> Dag:
        """Finalise the query into a validated DAG."""
        if not self._outputs:
            raise ValueError("query has no outputs; call .collect(...) on a relation")
        dag = Dag(self._roots)
        dag.validate()
        return dag

    def _register_output(self, node: Collect) -> None:
        self._outputs.append(node)


class RelationHandle:
    """Fluent handle to a relation being built in a :class:`QueryContext`."""

    def __init__(self, context: QueryContext, node: OpNode):
        self.context = context
        self.node = node

    @property
    def schema(self) -> Schema:
        return self.node.out_rel.schema

    @property
    def name(self) -> str:
        return self.node.out_rel.name

    # -- builder methods --------------------------------------------------------------------

    def project(self, columns: Sequence[str | int], name: str | None = None) -> "RelationHandle":
        """Keep only the named columns (names or positional indices)."""
        resolved = [self.schema.resolve(c) for c in columns]
        rel = self._derive(name or "project", self.schema.project(resolved))
        return self._wrap(Project(rel, self.node, resolved))

    def filter(
        self,
        predicate: Expr | str,
        op: str | None = None,
        value: float | None = None,
        name: str | None = None,
    ) -> "RelationHandle":
        """Keep rows satisfying ``predicate``.

        ``predicate`` is an expression built from :func:`~repro.core.expr.col`
        and :func:`~repro.core.expr.lit`, e.g. ``cc.col("price") > 0`` or
        ``(cc.col("d") == 414) & ~(cc.col("m") == 99)``.  Conjunctions of
        simple ``column <op> constant`` tests lower to a chain of ``Filter``
        operators; anything else lowers to a mask column that is filtered on
        and dropped.

        The pre-redesign shape ``filter("price", ">", 0)`` still works but is
        deprecated.
        """
        if isinstance(predicate, Expr):
            if op is not None or value is not None:
                raise TypeError("filter(expr) takes no op/value arguments")
            return self._filter_expr(predicate, name)
        _deprecated(
            "filter(column, op, value) is deprecated; use "
            "filter(cc.col(column) <op> value) instead"
        )
        if op is None or value is None:
            raise TypeError("the deprecated filter(column, op, value) form needs op and value")
        validate_comparison_op(op, "filter")
        self.schema.index_of(predicate)
        rel = self._derive(name or "filter", self.schema)
        return self._wrap(Filter(rel, self.node, predicate, op, value))

    def with_column(self, out_name: str, expression, name: str | None = None) -> "RelationHandle":
        """Append ``out_name`` computed by an expression over this relation.

        ``expression`` may mix columns, constants, arithmetic, comparisons
        and boolean combinators; it is lowered to a chain of row-wise
        operators and any lowering temporaries are projected away, so the
        result schema is exactly the input schema plus ``out_name``.
        """
        if isinstance(expression, (int, float)) and not isinstance(expression, bool):
            expression = Literal(expression)
        if not isinstance(expression, Expr):
            raise TypeError(
                f"with_column needs an expression (col()/lit() combination), "
                f"got {type(expression).__name__}"
            )
        if out_name in self.schema:
            raise ValueError(f"column {out_name!r} already exists; pick a new name")
        validate_columns(expression, set(self.schema.names), f"with_column({out_name!r})")
        original = list(self.schema.names)
        handle, _ = self._lower_value(expression, out_name=out_name)
        if handle.schema.names != original + [out_name]:
            handle = handle.project(original + [out_name], name=name)
        elif name is not None:
            # Single-operator lowering: give the *result* relation the
            # analyst's name (plan dumps and codegen reference it).
            handle.node.out_rel.name = self.context.fresh_name(name)
        return handle

    def aggregate(
        self,
        out_name: str | None = None,
        func: str | None = None,
        group: Sequence[str] | None = None,
        over: str | None = None,
        name: str | None = None,
        *,
        aggs: Mapping[str, AggSpec] | None = None,
        key_base: int | None = None,
    ) -> "RelationHandle":
        """Group-by aggregation with any number of group columns and aggregates.

        The expression form takes ``group`` (a list of zero or more columns)
        and ``aggs`` (a mapping of output column name to an aggregate spec
        built by calling an aggregation function)::

            rel.aggregate(group=["zip"], aggs={"total": cc.SUM("score"),
                                               "cnt": cc.COUNT()})

        Multiple aggregates lower to one ``Aggregate`` operator each, joined
        on the group key; two or more group columns lower to a composite-key
        encode so the single-key frontier/hybrid rewrites apply unchanged.
        ``key_base`` sizes that encoding exactly as for :meth:`join` — and
        with the same caveat: group values must be non-negative integers
        below the base (default 2**20) or distinct groups can silently
        merge.  With at most one group column no encoding happens and
        ``key_base`` is ignored.

        The pre-redesign shape ``aggregate(out, func, group=[g], over=c)``
        still works (single group column, single aggregate) but is
        deprecated.
        """
        if aggs is None:
            if out_name is None or func is None:
                raise TypeError(
                    "aggregate needs aggs={name: FUNC(col)} (or the deprecated "
                    "positional out_name/func form)"
                )
            _deprecated(
                "aggregate(out_name, func, group=..., over=...) is deprecated; use "
                "aggregate(group=[...], aggs={out_name: FUNC('col')})"
            )
            group = list(group or [])
            if len(group) > 1:
                raise ValueError(
                    "the deprecated aggregate form supports a single group-by column; "
                    "use aggregate(group=[...], aggs=...) for multi-column group-bys"
                )
            if key_base is not None:
                raise TypeError("key_base applies only to the aggs=... form")
            return self._single_aggregate(
                out_name, str(func).lower(), group[0] if group else None, over, name
            )
        if out_name is not None or func is not None or over is not None:
            raise TypeError("pass either aggs=... or the deprecated positional form, not both")
        return self._multi_aggregate(
            list(group or []), aggs, name, key_base or COMPOSITE_KEY_BASE
        )

    def join(
        self,
        other: "RelationHandle",
        left: Sequence[str] | None = None,
        right: Sequence[str] | None = None,
        name: str | None = None,
        *,
        on=None,
        key_base: int | None = None,
    ) -> "RelationHandle":
        """Inner equi-join with ``other``.

        ``on`` names the key columns:

        * ``on="ssn"`` — one key column with the same name on both sides;
        * ``on=[("a", "b")]`` — one key column, ``a`` on the left and ``b``
          on the right (a bare tuple is rejected as ambiguous);
        * ``on=["a", "c"]`` / ``on=[("a", "b"), ("c", "d")]`` — multi-column
          keys (same-name shorthand and per-side pairs may be mixed).

        Multi-column keys are lowered to a composite-key encode (base
        ``key_base``, default :data:`COMPOSITE_KEY_BASE`) followed by a
        single-key join, so the MPC-frontier and hybrid-join rewrites apply
        unchanged.

        .. warning::
           The encoding is collision-free only for **non-negative integer
           keys below the base** (default 2**20 ≈ 1.05M); out-of-range key
           values can silently match unequal keys, and the key data is
           private so the runtime cannot check.  Pass ``key_base=`` sized to
           your key domain — ``key_base ** num_key_columns`` must fit in
           2**63, which is validated at query-build time.  With a single key
           column no encoding happens and ``key_base`` is ignored.

        The pre-redesign shape ``join(other, left=["k"], right=["k"])`` still
        works (single-column keys only) but is deprecated.
        """
        if on is None:
            if left is None or right is None:
                raise TypeError("join needs on=... (or the deprecated left=/right= form)")
            _deprecated(
                "join(other, left=[...], right=[...]) is deprecated; use "
                "join(other, on=...) instead"
            )
            left, right = list(left), list(right)
            if len(left) != 1 or len(right) != 1:
                raise ValueError(
                    "the deprecated left=/right= join form supports single-column keys; "
                    "use join(other, on=[(l1, r1), (l2, r2), ...]) for multi-column joins"
                )
            return self._single_join(other, left[0], right[0], name)
        if left is not None or right is not None:
            raise TypeError("pass either on=... or the deprecated left=/right=, not both")
        pairs = _normalise_join_keys(on)
        for l_col, r_col in pairs:
            self.schema.index_of(l_col)
            other.schema.index_of(r_col)
        if len(pairs) == 1:
            return self._single_join(other, pairs[0][0], pairs[0][1], name)
        return self._multi_key_join(other, pairs, name, key_base or COMPOSITE_KEY_BASE)

    def multiply(
        self, out_name: str, left: str, right: str | float, name: str | None = None
    ) -> "RelationHandle":
        """Deprecated: use ``with_column(out_name, cc.col(left) * right)``."""
        _deprecated(
            "multiply(out, left, right) is deprecated; use "
            "with_column(out, cc.col(left) * right)"
        )
        return self._emit_multiply(out_name, left, right, name)

    def divide(
        self, out_name: str, left: str, by: str | float, name: str | None = None
    ) -> "RelationHandle":
        """Deprecated: use ``with_column(out_name, cc.col(left) / by)``."""
        _deprecated(
            "divide(out, left, by) is deprecated; use with_column(out, cc.col(left) / by)"
        )
        return self._emit_divide(out_name, left, by, name)

    def sort_by(self, column: str, ascending: bool = True, name: str | None = None) -> "RelationHandle":
        """Order the relation by ``column``."""
        self.schema.index_of(column)
        rel = self._derive(name or "sort", self.schema)
        return self._wrap(SortBy(rel, self.node, column, ascending))

    def distinct(self, columns: Sequence[str], name: str | None = None) -> "RelationHandle":
        """Keep the distinct values of the named columns."""
        resolved = [self.schema.resolve(c) for c in columns]
        rel = self._derive(name or "distinct", self.schema.project(resolved))
        return self._wrap(Distinct(rel, self.node, resolved))

    def limit(self, n: int, name: str | None = None) -> "RelationHandle":
        """Keep the first ``n`` rows."""
        rel = self._derive(name or f"limit_{n}", self.schema)
        return self._wrap(Limit(rel, self.node, n))

    def concat_with(self, others: Sequence["RelationHandle"], name: str | None = None) -> "RelationHandle":
        """Union this relation with others (see :func:`concat`)."""
        return self.context.concat([self, *others], name=name)

    def collect(self, name: str, to: Sequence[Party]) -> "RelationHandle":
        """Mark this relation as a query output revealed to ``to``."""
        if not to:
            raise ValueError("an output needs at least one recipient party")
        recipients = [p.name if isinstance(p, Party) else str(p) for p in to]
        rel = self._derive(name, self.schema)
        rel.stored_with = set(recipients)
        node = Collect(rel, self.node, recipients)
        self.context._register_output(node)
        return self._wrap(node)

    # Alias matching the paper's listings.
    def write_to_csv(self, name: str, to: Sequence[Party]) -> "RelationHandle":
        return self.collect(name, to)

    # -- expression lowering ------------------------------------------------------------------

    def _filter_expr(self, predicate: Expr, name: str | None) -> "RelationHandle":
        if not predicate.is_boolean():
            raise TypeError(
                f"filter needs a predicate (a comparison or boolean combination), "
                f"got {predicate!r}"
            )
        validate_columns(predicate, set(self.schema.names), "filter predicate")
        # Partition the top-level conjuncts: column-vs-constant tests (and
        # their negations) chain as classic Filter operators — which also
        # shrink the row count before any expensive mask work — while only
        # the compound remainder is materialised as a 0/1 mask column.
        simple: list[Comparison] = []
        compound: list[Expr] = []
        for part in conjuncts(predicate):
            as_simple = as_simple_comparison(part)
            if as_simple is not None:
                simple.append(as_simple)
            else:
                compound.append(part)

        handle = self
        last = len(simple) - 1
        for i, part in enumerate(simple):
            norm = part.normalised()
            hint = name if (i == last and name and not compound) else "filter"
            rel = handle._derive(hint, handle.schema)
            handle = handle._wrap(
                Filter(rel, handle.node, norm.left.name, norm.op, norm.right.value)
            )
        if not compound:
            return handle
        remainder = compound[0] if len(compound) == 1 else BooleanOp("and", tuple(compound))
        original = list(handle.schema.names)
        masked, mask_col = handle._lower_value(remainder)
        rel = masked._derive("filter_mask", masked.schema)
        filtered = masked._wrap(Filter(rel, masked.node, mask_col, "==", 1))
        return filtered.project(original, name=name or "filter")

    def _lower_value(
        self, expression: Expr, out_name: str | None = None
    ) -> "tuple[RelationHandle, str | float]":
        """Lower ``expression`` to a column (or public scalar) on a derived handle.

        Returns ``(handle, operand)`` where ``operand`` is a column name of
        ``handle`` — guaranteed to equal ``out_name`` when one is requested —
        or a plain scalar when the expression is constant and no output
        column was requested.
        """
        if isinstance(expression, Literal):
            value = _normalise_scalar(expression.value)
            if out_name is None:
                return self, value
            return self._materialise_scalar(value, out_name), out_name
        if isinstance(expression, ColumnRef):
            if out_name is None or out_name == expression.name:
                return self, expression.name
            return self._emit_map(out_name, expression.name, "+", 0), out_name
        if isinstance(expression, Arithmetic):
            return self._lower_arithmetic(expression, out_name)
        if isinstance(expression, Comparison):
            norm = expression.normalised()
            handle, left = self._lower_value(norm.left)
            if not isinstance(left, str):
                # Constant-vs-something: materialise the constant side.
                tmp = handle._fresh_col()
                handle = handle._materialise_scalar(left, tmp)
                left = tmp
            handle, right = handle._lower_value(norm.right)
            target = out_name or handle._fresh_col()
            return handle._emit_compare(target, left, norm.op, right), target
        if isinstance(expression, BooleanOp):
            handle = self
            operand_cols: list[str] = []
            for operand in expression.operands:
                handle, column = handle._lower_value(operand)
                operand_cols.append(column)
            target = out_name or handle._fresh_col()
            return handle._emit_bool(target, expression.op, operand_cols), target
        if isinstance(expression, Negation):
            handle, column = self._lower_value(expression.operand)
            target = out_name or handle._fresh_col()
            return handle._emit_bool(target, "not", [column]), target
        raise TypeError(f"cannot lower expression node {type(expression).__name__}")

    def _lower_arithmetic(
        self, expression: Arithmetic, out_name: str | None
    ) -> "tuple[RelationHandle, str | float]":
        handle, left = self._lower_value(expression.left)
        handle, right = handle._lower_value(expression.right)
        op = expression.op
        if not isinstance(left, str) and not isinstance(right, str):
            value = _normalise_scalar(_fold_constants(left, op, right))
            if out_name is None:
                return handle, value
            return handle._materialise_scalar(value, out_name), out_name
        if not isinstance(left, str):
            if op in ("+", "*"):
                left, right = right, left
            elif op == "-":
                # c - x  lowers to  (x * -1) + c
                negated = handle._fresh_col()
                handle = handle._emit_multiply(negated, right, -1)
                target = out_name or handle._fresh_col()
                return handle._emit_map(target, negated, "+", left), target
            else:  # "/"
                scalar_col = handle._fresh_col()
                handle = handle._materialise_scalar(left, scalar_col)
                left = scalar_col
        if isinstance(right, (int, float)):
            right = _normalise_scalar(right)
        target = out_name or handle._fresh_col()
        if op == "*":
            return handle._emit_multiply(target, left, right), target
        if op == "/":
            return handle._emit_divide(target, left, right), target
        return handle._emit_map(target, left, op, right), target

    def _materialise_scalar(self, value: float, out_name: str) -> "RelationHandle":
        """Append a column holding the public constant ``value``.

        Lowered as ``base * 0 (+ value)``, so the new column inherits the
        base column's trust annotation; prefer a public INT column as the
        base so a query constant stays as public (and integer-typed) as the
        schema allows.
        """
        ranked = sorted(
            self.schema,
            key=lambda c: (not c.is_public, c.ctype is not ColumnType.INT),
        )
        base = ranked[0].name
        if value == 0:
            return self._emit_multiply(out_name, base, 0)
        zeroed = self._fresh_col()
        handle = self._emit_multiply(zeroed, base, 0)
        return handle._emit_map(out_name, zeroed, "+", value)

    # -- single-operator emitters (shared by the shims and the lowering) ----------------------

    def _emit_multiply(
        self, out_name: str, left: str, right: str | float, hint: str | None = None
    ) -> "RelationHandle":
        self.schema.index_of(left)
        if isinstance(right, str):
            self.schema.index_of(right)
        out_type = self.schema[left].ctype
        rel = self._derive(
            hint or f"mul_{out_name}", self.schema.with_column(ColumnDef(out_name, out_type))
        )
        return self._wrap(Multiply(rel, self.node, out_name, left, right))

    def _emit_divide(
        self, out_name: str, left: str, by: str | float, hint: str | None = None
    ) -> "RelationHandle":
        self.schema.index_of(left)
        if isinstance(by, str):
            self.schema.index_of(by)
        rel = self._derive(
            hint or f"div_{out_name}",
            self.schema.with_column(ColumnDef(out_name, ColumnType.FLOAT)),
        )
        return self._wrap(Divide(rel, self.node, out_name, left, by))

    def _emit_map(
        self, out_name: str, left: str, op: str, right: str | float, hint: str | None = None
    ) -> "RelationHandle":
        self.schema.index_of(left)
        if isinstance(right, str):
            self.schema.index_of(right)
            right_float = self.schema[right].ctype is ColumnType.FLOAT
        else:
            right_float = isinstance(right, float)
        out_type = (
            ColumnType.FLOAT
            if (self.schema[left].ctype is ColumnType.FLOAT or right_float)
            else ColumnType.INT
        )
        rel = self._derive(
            hint or f"map_{out_name}", self.schema.with_column(ColumnDef(out_name, out_type))
        )
        return self._wrap(Map(rel, self.node, out_name, left, op, right))

    def _emit_compare(
        self, out_name: str, left: str, op: str, right: str | float, hint: str | None = None
    ) -> "RelationHandle":
        self.schema.index_of(left)
        if isinstance(right, str):
            self.schema.index_of(right)
        elif isinstance(right, (int, float)):
            right = _normalise_scalar(right)
        rel = self._derive(
            hint or f"cmp_{out_name}",
            self.schema.with_column(ColumnDef(out_name, ColumnType.INT)),
        )
        return self._wrap(Compare(rel, self.node, out_name, left, op, right))

    def _emit_bool(
        self, out_name: str, op: str, operands: Sequence[str], hint: str | None = None
    ) -> "RelationHandle":
        for operand in operands:
            self.schema.index_of(operand)
        rel = self._derive(
            hint or f"bool_{out_name}",
            self.schema.with_column(ColumnDef(out_name, ColumnType.INT)),
        )
        return self._wrap(BoolOp(rel, self.node, out_name, op, list(operands)))

    # -- join lowering ------------------------------------------------------------------------

    def _single_join(
        self, other: "RelationHandle", left_on: str, right_on: str, name: str | None
    ) -> "RelationHandle":
        self.schema.index_of(left_on)
        other.schema.index_of(right_on)
        out_cols = list(self.schema.columns)
        taken = {c.name for c in out_cols}
        for cdef in other.schema:
            if cdef.name == right_on:
                continue
            out_name = cdef.name + "_r" if cdef.name in taken else cdef.name
            out_cols.append(ColumnDef(out_name, cdef.ctype, cdef.trust))
        rel = self._derive(name or "join", Schema(out_cols))
        return self._wrap(Join(rel, self.node, other.node, left_on, right_on))

    def _multi_key_join(
        self,
        other: "RelationHandle",
        pairs: "list[tuple[str, str]]",
        name: str | None,
        key_base: int,
    ) -> "RelationHandle":
        key = self.context.fresh_column(self.schema, other.schema, prefix="_jk")
        left_keys = [l_col for l_col, _ in pairs]
        right_keys = [r_col for _, r_col in pairs]

        left_handle, left_temps = self._encode_composite_key(left_keys, key, key_base)
        right_handle, _ = other._encode_composite_key(right_keys, key, key_base)
        # Mirror single-key semantics: the right side's key columns are
        # redundant after the join (equal to the left side's), so drop them —
        # along with the right-side encode temporaries — before joining.
        right_kept = [c for c in other.schema.names if c not in right_keys]
        right_handle = right_handle.project([key, *right_kept])

        joined = left_handle._single_join(right_handle, key, key, None)
        drop = set(left_temps) | {key}
        out_cols = [c for c in joined.schema.names if c not in drop]
        return joined.project(out_cols, name=name or "join")

    def _encode_composite_key(
        self, columns: Sequence[str], out_name: str, key_base: int
    ) -> "tuple[RelationHandle, list[str]]":
        """Append ``out_name`` packing ``columns`` into one key column.

        Returns the extended handle plus the intermediate temporary columns
        (callers project them away once the key has served its purpose).
        """
        if key_base < 2:
            raise ValueError("key_base must be at least 2")
        if key_base ** len(columns) > 2**63:
            raise ValueError(
                f"composite key of {len(columns)} columns with base {key_base} "
                f"overflows the 64-bit value domain; lower key_base (base**columns "
                f"must fit in 2**63) or reduce the number of key columns"
            )
        handle = self
        temps: list[str] = []
        acc = columns[0]
        for i, column in enumerate(columns[1:]):
            is_last = i == len(columns) - 2
            shifted = handle._fresh_col()
            handle = handle._emit_multiply(shifted, acc, key_base)
            if i == 0:
                # The encoding is collision-free only for key values in
                # [0, key_base); mark the first operator of the encode chain
                # so the executor checks the actual key data at run time
                # instead of silently mis-encoding (see
                # PlanExecutor._validate_key_range).
                handle.node.key_range_check = (tuple(columns), int(key_base))
            temps.append(shifted)
            target = out_name if is_last else handle._fresh_col()
            handle = handle._emit_map(target, shifted, "+", column)
            if not is_last:
                temps.append(target)
            acc = target
        return handle, temps

    # -- aggregate lowering ---------------------------------------------------------------------

    def _single_aggregate(
        self,
        out_name: str,
        func: str,
        group_col: str | None,
        over: str | None,
        name: str | None,
    ) -> "RelationHandle":
        if func not in AGG_FUNCS:
            raise ValueError(
                f"unsupported aggregation {func!r}; supported: {', '.join(AGG_FUNCS)}"
            )
        if over is not None:
            self.schema.index_of(over)
        elif func != "count":
            raise ValueError(f"aggregation {func!r} requires a value column")
        if group_col is not None:
            self.schema.index_of(group_col)

        out_type = ColumnType.INT
        if over is not None and func != "count":
            out_type = self.schema[over].ctype
        if func == "mean":
            out_type = ColumnType.FLOAT
        cols = []
        if group_col is not None:
            cols.append(self.schema[group_col])
        cols.append(ColumnDef(out_name, out_type))
        rel = self._derive(name or f"agg_{out_name}", Schema(cols))
        return self._wrap(Aggregate(rel, self.node, group_col, over, func, out_name))

    def _multi_aggregate(
        self, group: list[str], aggs: Mapping[str, AggSpec], name: str | None, key_base: int
    ) -> "RelationHandle":
        if not aggs:
            raise ValueError("aggs must name at least one aggregate")
        specs: dict[str, AggSpec] = {}
        for out, spec in aggs.items():
            if isinstance(spec, AggSpec):
                pass
            elif isinstance(spec, tuple):
                spec = AggSpec(*spec)
            elif isinstance(spec, str):
                spec = AggSpec(spec)
            else:
                raise TypeError(
                    f"aggregate spec for {out!r} must be built by calling an aggregation "
                    f"function, e.g. cc.SUM('price') or cc.COUNT(); got {spec!r}"
                )
            if spec.func not in AGG_FUNCS:
                raise ValueError(
                    f"unsupported aggregation {spec.func!r}; supported: {', '.join(AGG_FUNCS)}"
                )
            if out in group:
                raise ValueError(f"aggregate output {out!r} collides with a group column")
            specs[out] = spec
        for g_col in group:
            self.schema.index_of(g_col)
        for spec in specs.values():
            if spec.over is not None:
                self.schema.index_of(spec.over)

        if len(group) <= 1 and len(specs) == 1:
            (out, spec), = specs.items()
            return self._single_aggregate(out, spec.func, group[0] if group else None, spec.over, name)
        if len(group) == 1:
            return self._joined_aggregates(self, group[0], group, specs, name)
        if not group:
            return self._scalar_aggregates(specs, name)
        # Two or more group columns: pack them into a composite key so every
        # Aggregate (and any later hybrid rewrite) stays single-key, then
        # recover the group columns via per-group `min` aggregates (they are
        # constant within a group).
        keyed, _ = self._encode_composite_key(
            group, self.context.fresh_column(self.schema, prefix="_gk"), key_base
        )
        key = keyed.schema.names[-1]
        parts: dict[str, AggSpec] = {g: AggSpec("min", g) for g in group}
        parts.update(specs)
        return self._joined_aggregates(keyed, key, group, parts, name, project_to=group + list(specs))

    @staticmethod
    def _joined_aggregates(
        source: "RelationHandle",
        group_col: str,
        group: list[str],
        specs: Mapping[str, AggSpec],
        name: str | None,
        project_to: list[str] | None = None,
    ) -> "RelationHandle":
        """One Aggregate per spec over the same input, joined on the group key."""
        handles = [
            source._single_aggregate(out, spec.func, group_col, spec.over, None)
            for out, spec in specs.items()
        ]
        result = handles[0]
        for i, part in enumerate(handles[1:]):
            is_last = i == len(handles) - 2
            result = result._single_join(
                part, group_col, group_col, name if (is_last and name and not project_to) else None
            )
        if project_to is not None:
            result = result.project(project_to, name=name)
        return result

    def _scalar_aggregates(
        self, specs: Mapping[str, AggSpec], name: str | None
    ) -> "RelationHandle":
        """Multiple whole-relation reductions, aligned on a constant key."""
        key = self.context.fresh_column(self.schema, prefix="_ak")
        keyed: list[RelationHandle] = []
        for out, spec in specs.items():
            part = self._single_aggregate(out, spec.func, None, spec.over, None)
            keyed.append(part._emit_multiply(key, out, 0))
        result = keyed[0]
        for part in keyed[1:]:
            result = result._single_join(part, key, key, None)
        return result.project(list(specs), name=name)

    # -- helpers -----------------------------------------------------------------------------

    def _fresh_col(self) -> str:
        return self.context.fresh_column(self.schema)

    def _derive(self, hint: str, schema: Schema) -> Relation:
        parent_rel = self.node.out_rel
        return Relation(
            name=self.context.fresh_name(hint),
            schema=schema,
            stored_with=set(parent_rel.stored_with),
        )

    def _wrap(self, node: OpNode) -> "RelationHandle":
        return RelationHandle(self.context, node)


# -- lowering helpers ------------------------------------------------------------------------


def _normalise_scalar(value: float) -> float:
    """Collapse integral floats to ints so schemas stay INT where possible."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _fold_constants(left: float, op: str, right: float) -> float:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if right == 0:
        return 0.0
    return left / right


def _normalise_join_keys(on) -> "list[tuple[str, str]]":
    """Normalise the ``on=`` argument to a list of (left, right) pairs."""

    def as_pair(item) -> "tuple[str, str]":
        if isinstance(item, str):
            return (item, item)
        if isinstance(item, tuple) and len(item) == 2 and all(isinstance(c, str) for c in item):
            return (item[0], item[1])
        raise TypeError(
            f"join key {item!r} must be a column name or a (left, right) pair of names"
        )

    if isinstance(on, str):
        return [as_pair(on)]
    if isinstance(on, tuple):
        # A bare tuple is ambiguous: a (left, right) pair reads the same as
        # a two-column composite key.  Force the caller to disambiguate.
        raise TypeError(
            f"on={on!r} is ambiguous: use on=[{on!r}] for one key pair "
            f"(left column, right column) or on={list(on)!r} for a "
            f"multi-column key with the same names on both sides"
        )
    pairs = [as_pair(item) for item in on]
    if not pairs:
        raise ValueError("join needs at least one key column")
    return pairs


# -- module-level conveniences mirroring the paper's listings -------------------------------------


def new_table(
    name: str, columns: Sequence[Column], at: Party, estimated_rows: int | None = None
) -> RelationHandle:
    """Declare an input relation in the innermost active :class:`QueryContext`."""
    return QueryContext.current().new_table(name, columns, at, estimated_rows)


def concat(handles: Sequence[RelationHandle], name: str | None = None) -> RelationHandle:
    """Union several relations in the innermost active :class:`QueryContext`."""
    return QueryContext.current().concat(handles, name)
