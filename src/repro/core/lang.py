"""LINQ-style query frontend.

Analysts describe a Conclave query as if all data lived in one database
(§4.2).  The frontend mirrors the paper's Listings 1 and 2::

    import repro as cc

    with cc.QueryContext() as q:
        pA, pB = cc.Party("mpc.a.com"), cc.Party("mpc.b.com")
        schema = [cc.Column("ssn", cc.INT, trust=[pA]), cc.Column("score", cc.INT)]
        scores1 = cc.new_table("scores1", schema, at=pB)
        ...
        result.collect("avg_scores", to=[pA])

Every builder method appends an operator node to the current context's DAG
and returns a new :class:`RelationHandle`.  ``QueryContext.build_dag()``
hands the finished DAG to the compiler.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.core.operators import (
    Aggregate,
    Collect,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    Join,
    Limit,
    Multiply,
    OpNode,
    Project,
    SortBy,
)
from repro.core.party import Party
from repro.core.relation import Relation
from repro.core.dag import Dag
from repro.core.types import Column, build_schema
from repro.data.schema import ColumnDef, ColumnType, Schema

_current_context: list["QueryContext"] = []


class QueryContext:
    """Collects the operator nodes of one query.

    Use as a context manager (``with QueryContext() as q:``) or explicitly;
    the module-level helpers (:func:`new_table`, :func:`concat`) operate on
    the innermost active context.
    """

    def __init__(self):
        self._roots: list[Create] = []
        self._outputs: list[Collect] = []
        self._name_counter = itertools.count()
        self._names: set[str] = set()

    # -- context management -----------------------------------------------------------

    def __enter__(self) -> "QueryContext":
        _current_context.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _current_context.remove(self)

    @staticmethod
    def current() -> "QueryContext":
        if not _current_context:
            raise RuntimeError(
                "no active QueryContext; wrap query construction in `with QueryContext():`"
            )
        return _current_context[-1]

    # -- relation naming -----------------------------------------------------------------

    def fresh_name(self, hint: str) -> str:
        name = hint
        while name in self._names:
            name = f"{hint}_{next(self._name_counter)}"
        self._names.add(name)
        return name

    # -- inputs and outputs -----------------------------------------------------------------

    def new_table(
        self,
        name: str,
        columns: Sequence[Column],
        at: Party,
        estimated_rows: int | None = None,
    ) -> "RelationHandle":
        """Declare an input relation stored at party ``at``."""
        if not isinstance(at, Party):
            raise TypeError("`at` must be a Party")
        schema = build_schema(columns, owner=at)
        rel = Relation(
            name=self.fresh_name(name),
            schema=schema,
            stored_with={at.name},
            owner=at.name,
            trust={c.name: c.trust for c in schema},
            estimated_rows=estimated_rows,
        )
        node = Create(rel)
        self._roots.append(node)
        return RelationHandle(self, node)

    def concat(self, handles: Sequence["RelationHandle"], name: str | None = None) -> "RelationHandle":
        """Combine several parties' relations into one partitioned relation."""
        if not handles:
            raise ValueError("concat requires at least one relation")
        nodes = [h.node for h in handles]
        first_schema = nodes[0].out_rel.schema
        for n in nodes[1:]:
            if not first_schema.concat_compatible(n.out_rel.schema):
                raise ValueError("concat inputs must share the same schema")
        stored = set()
        rows = 0
        known_rows = True
        for n in nodes:
            stored |= n.out_rel.stored_with
            if n.out_rel.estimated_rows is None:
                known_rows = False
            else:
                rows += n.out_rel.estimated_rows
        rel = Relation(
            name=self.fresh_name(name or "concat"),
            schema=first_schema,
            stored_with=stored,
            estimated_rows=rows if known_rows else None,
        )
        node = Concat(rel, nodes)
        return RelationHandle(self, node)

    def build_dag(self) -> Dag:
        """Finalise the query into a validated DAG."""
        if not self._outputs:
            raise ValueError("query has no outputs; call .collect(...) on a relation")
        dag = Dag(self._roots)
        dag.validate()
        return dag

    def _register_output(self, node: Collect) -> None:
        self._outputs.append(node)


class RelationHandle:
    """Fluent handle to a relation being built in a :class:`QueryContext`."""

    def __init__(self, context: QueryContext, node: OpNode):
        self.context = context
        self.node = node

    @property
    def schema(self) -> Schema:
        return self.node.out_rel.schema

    @property
    def name(self) -> str:
        return self.node.out_rel.name

    # -- builder methods --------------------------------------------------------------------

    def project(self, columns: Sequence[str | int], name: str | None = None) -> "RelationHandle":
        """Keep only the named columns (names or positional indices)."""
        resolved = [self.schema.resolve(c) for c in columns]
        rel = self._derive(name or "project", self.schema.project(resolved))
        return self._wrap(Project(rel, self.node, resolved))

    def filter(self, column: str, op: str, value: float, name: str | None = None) -> "RelationHandle":
        """Keep rows where ``column <op> value`` holds."""
        self.schema.index_of(column)
        rel = self._derive(name or "filter", self.schema)
        return self._wrap(Filter(rel, self.node, column, op, value))

    def aggregate(
        self,
        out_name: str,
        func: str,
        group: Sequence[str] | None = None,
        over: str | None = None,
        name: str | None = None,
    ) -> "RelationHandle":
        """Aggregate ``over`` with ``func``, optionally grouped by one column."""
        group = list(group or [])
        if len(group) > 1:
            raise ValueError("the reproduction supports a single group-by column")
        group_col = group[0] if group else None
        func = func.lower()
        if over is not None:
            self.schema.index_of(over)
        if group_col is not None:
            self.schema.index_of(group_col)

        out_type = ColumnType.INT
        if over is not None and func != "count":
            out_type = self.schema[over].ctype
        if func == "mean":
            out_type = ColumnType.FLOAT
        cols = []
        if group_col is not None:
            cols.append(self.schema[group_col])
        cols.append(ColumnDef(out_name, out_type))
        rel = self._derive(name or f"agg_{out_name}", Schema(cols))
        return self._wrap(Aggregate(rel, self.node, group_col, over, func, out_name))

    def join(
        self,
        other: "RelationHandle",
        left: Sequence[str],
        right: Sequence[str],
        name: str | None = None,
    ) -> "RelationHandle":
        """Inner equi-join with ``other`` on one key column per side."""
        left, right = list(left), list(right)
        if len(left) != 1 or len(right) != 1:
            raise ValueError("the reproduction supports single-column join keys")
        left_on, right_on = left[0], right[0]
        self.schema.index_of(left_on)
        other.schema.index_of(right_on)

        out_cols = list(self.schema.columns)
        taken = {c.name for c in out_cols}
        for cdef in other.schema:
            if cdef.name == right_on:
                continue
            out_name = cdef.name + "_r" if cdef.name in taken else cdef.name
            out_cols.append(ColumnDef(out_name, cdef.ctype, cdef.trust))
        rel = self._derive(name or "join", Schema(out_cols))
        return self._wrap(Join(rel, self.node, other.node, left_on, right_on))

    def multiply(
        self, out_name: str, left: str, right: str | float, name: str | None = None
    ) -> "RelationHandle":
        """Append ``out_name = left * right`` (column or public scalar)."""
        self.schema.index_of(left)
        if isinstance(right, str):
            self.schema.index_of(right)
        out_type = self.schema[left].ctype
        rel = self._derive(name or f"mul_{out_name}", self.schema.with_column(ColumnDef(out_name, out_type)))
        return self._wrap(Multiply(rel, self.node, out_name, left, right))

    def divide(
        self, out_name: str, left: str, by: str | float, name: str | None = None
    ) -> "RelationHandle":
        """Append ``out_name = left / by`` (column or public scalar)."""
        self.schema.index_of(left)
        if isinstance(by, str):
            self.schema.index_of(by)
        rel = self._derive(
            name or f"div_{out_name}", self.schema.with_column(ColumnDef(out_name, ColumnType.FLOAT))
        )
        return self._wrap(Divide(rel, self.node, out_name, left, by))

    def sort_by(self, column: str, ascending: bool = True, name: str | None = None) -> "RelationHandle":
        """Order the relation by ``column``."""
        self.schema.index_of(column)
        rel = self._derive(name or "sort", self.schema)
        return self._wrap(SortBy(rel, self.node, column, ascending))

    def distinct(self, columns: Sequence[str], name: str | None = None) -> "RelationHandle":
        """Keep the distinct values of the named columns."""
        resolved = [self.schema.resolve(c) for c in columns]
        rel = self._derive(name or "distinct", self.schema.project(resolved))
        return self._wrap(Distinct(rel, self.node, resolved))

    def limit(self, n: int, name: str | None = None) -> "RelationHandle":
        """Keep the first ``n`` rows."""
        rel = self._derive(name or f"limit_{n}", self.schema)
        return self._wrap(Limit(rel, self.node, n))

    def concat_with(self, others: Sequence["RelationHandle"], name: str | None = None) -> "RelationHandle":
        """Union this relation with others (see :func:`concat`)."""
        return self.context.concat([self, *others], name=name)

    def collect(self, name: str, to: Sequence[Party]) -> "RelationHandle":
        """Mark this relation as a query output revealed to ``to``."""
        if not to:
            raise ValueError("an output needs at least one recipient party")
        recipients = [p.name if isinstance(p, Party) else str(p) for p in to]
        rel = self._derive(name, self.schema)
        rel.stored_with = set(recipients)
        node = Collect(rel, self.node, recipients)
        self.context._register_output(node)
        return self._wrap(node)

    # Alias matching the paper's listings.
    def write_to_csv(self, name: str, to: Sequence[Party]) -> "RelationHandle":
        return self.collect(name, to)

    # -- helpers -----------------------------------------------------------------------------

    def _derive(self, hint: str, schema: Schema) -> Relation:
        parent_rel = self.node.out_rel
        return Relation(
            name=self.context.fresh_name(hint),
            schema=schema,
            stored_with=set(parent_rel.stored_with),
        )

    def _wrap(self, node: OpNode) -> "RelationHandle":
        return RelationHandle(self.context, node)


# -- module-level conveniences mirroring the paper's listings -------------------------------------


def new_table(
    name: str, columns: Sequence[Column], at: Party, estimated_rows: int | None = None
) -> RelationHandle:
    """Declare an input relation in the innermost active :class:`QueryContext`."""
    return QueryContext.current().new_table(name, columns, at, estimated_rows)


def concat(handles: Sequence[RelationHandle], name: str | None = None) -> RelationHandle:
    """Union several relations in the innermost active :class:`QueryContext`."""
    return QueryContext.current().concat(handles, name)
