"""Operator nodes of the query DAG.

Conclave represents a query as a directed acyclic graph of relational
operators (§4).  Each node produces exactly one output
:class:`~repro.core.relation.Relation` and carries the execution annotations
the compiler passes fill in:

* ``is_mpc`` — whether the operator must run under MPC (set by the
  ownership pass and adjusted by the frontier and hybrid passes);
* ``run_at`` — for cleartext operators, the party executing them (the
  relation owner, or the output recipient for operators the push-up pass
  lifted out of MPC);
* hybrid-specific fields (``stp``, ``host``) for the operators inserted by
  the hybrid rewrite pass (§5.3).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.core.expr import COMPARISON_OPS
from repro.core.relation import Relation

_node_counter = itertools.count()

#: Comparison operators ``Filter`` and ``Compare`` accept — the expression
#: AST's operator set, validated eagerly at node construction so a typo like
#: ``"=>"`` fails when the query is *built*, not when it eventually executes.
SUPPORTED_FILTER_OPS = COMPARISON_OPS


def validate_comparison_op(op: str, context: str) -> str:
    """Reject unknown comparison operators with a helpful message."""
    if op not in SUPPORTED_FILTER_OPS:
        raise ValueError(
            f"unsupported {context} operator {op!r}; supported operators are: "
            + ", ".join(SUPPORTED_FILTER_OPS)
        )
    return op


class OpNode:
    """Base class of all DAG operator nodes."""

    #: Operator name used in plans, generated code and debug output.
    op_name = "op"
    #: True for operators that keep rows in their input order (used by the
    #: sort-elimination pass).
    order_preserving = False

    def __init__(self, out_rel: Relation, parents: Sequence["OpNode"]):
        self.node_id = next(_node_counter)
        self.out_rel = out_rel
        self.parents: list[OpNode] = list(parents)
        self.children: list[OpNode] = []
        #: Whether this operator must execute under MPC.
        self.is_mpc: bool = False
        #: Party name executing the operator when it runs in the clear.
        self.run_at: str | None = None
        for p in self.parents:
            p.children.append(self)

    # -- DAG surgery helpers -------------------------------------------------------------

    def replace_parent(self, old: "OpNode", new: "OpNode") -> None:
        """Replace parent ``old`` with ``new`` and fix child links."""
        for i, p in enumerate(self.parents):
            if p is old:
                self.parents[i] = new
                if self in old.children:
                    old.children.remove(self)
                new.children.append(self)
                return
        raise ValueError(f"{old} is not a parent of {self}")

    def remove_from_dag(self) -> None:
        """Splice this unary node out of the DAG (children adopt its parent)."""
        if len(self.parents) != 1:
            raise ValueError("can only splice out unary operators")
        parent = self.parents[0]
        parent.children.remove(self)
        for child in list(self.children):
            child.replace_parent(self, parent)
        self.parents = []
        self.children = []

    @property
    def parent(self) -> "OpNode":
        """The single parent of a unary operator."""
        if len(self.parents) != 1:
            raise ValueError(f"{self} has {len(self.parents)} parents, expected 1")
        return self.parents[0]

    def input_relations(self) -> list[Relation]:
        return [p.out_rel for p in self.parents]

    def locus(self) -> tuple[str, str]:
        """Execution locus: ``("mpc", "joint")`` or ``("local", party)``."""
        if self.is_mpc:
            return ("mpc", "joint")
        party = self.run_at or self.out_rel.owner or "unplaced"
        return ("local", party)

    def __repr__(self) -> str:
        tag = "MPC" if self.is_mpc else (self.run_at or self.out_rel.owner or "?")
        return f"{type(self).__name__}#{self.node_id}[{self.out_rel.name}@{tag}]"


# -- leaf / root nodes ---------------------------------------------------------------------------


class Create(OpNode):
    """An input relation stored at one party (a DAG root)."""

    op_name = "create"
    order_preserving = True

    def __init__(self, out_rel: Relation):
        super().__init__(out_rel, [])


class Collect(OpNode):
    """An output relation revealed to one or more recipient parties (a leaf)."""

    op_name = "collect"
    order_preserving = True

    def __init__(self, out_rel: Relation, parent: OpNode, recipients: Sequence[str]):
        super().__init__(out_rel, [parent])
        self.recipients: list[str] = list(recipients)


# -- unary relational operators ---------------------------------------------------------------


class Project(OpNode):
    """Column projection / reordering."""

    op_name = "project"
    order_preserving = True

    def __init__(self, out_rel: Relation, parent: OpNode, columns: Sequence[str]):
        super().__init__(out_rel, [parent])
        self.columns: list[str] = list(columns)


class Filter(OpNode):
    """Row filter against a public scalar constant."""

    op_name = "filter"
    order_preserving = True

    def __init__(self, out_rel: Relation, parent: OpNode, column: str, op: str, value: float):
        super().__init__(out_rel, [parent])
        self.column = column
        self.op = validate_comparison_op(op, "filter")
        self.value = value


class Aggregate(OpNode):
    """Group-by aggregation (or whole-relation reduction with no group)."""

    op_name = "aggregate"

    def __init__(
        self,
        out_rel: Relation,
        parent: OpNode,
        group_col: str | None,
        agg_col: str | None,
        func: str,
        out_name: str,
    ):
        super().__init__(out_rel, [parent])
        self.group_col = group_col
        self.agg_col = agg_col
        self.func = func
        self.out_name = out_name
        #: Set by the sort-elimination pass when the input is already grouped.
        self.presorted = False
        #: Marks the MPC-side merge step of a split aggregation (push-down).
        self.is_secondary = False


class Multiply(OpNode):
    """Append ``out_name = left * right`` (column name or public scalar)."""

    op_name = "multiply"
    order_preserving = True

    def __init__(
        self, out_rel: Relation, parent: OpNode, out_name: str, left: str, right: str | float
    ):
        super().__init__(out_rel, [parent])
        self.out_name = out_name
        self.left = left
        self.right = right

    @property
    def scalar_operand(self) -> bool:
        return not isinstance(self.right, str)


class Divide(OpNode):
    """Append ``out_name = left / right`` (column name or public scalar)."""

    op_name = "divide"
    order_preserving = True

    def __init__(
        self, out_rel: Relation, parent: OpNode, out_name: str, left: str, right: str | float
    ):
        super().__init__(out_rel, [parent])
        self.out_name = out_name
        self.left = left
        self.right = right

    @property
    def scalar_operand(self) -> bool:
        return not isinstance(self.right, str)


class Map(OpNode):
    """Append ``out_name = left <op> right`` for ``op`` in ``+``/``-``.

    Together with :class:`Multiply` and :class:`Divide` this completes the
    row-wise arithmetic vocabulary the expression lowering targets.
    """

    op_name = "map"
    order_preserving = True

    def __init__(
        self, out_rel: Relation, parent: OpNode, out_name: str, left: str, op: str, right: str | float
    ):
        if op not in ("+", "-"):
            raise ValueError(f"map supports '+' and '-', got {op!r}")
        super().__init__(out_rel, [parent])
        self.out_name = out_name
        self.left = left
        self.op = op
        self.right = right

    @property
    def scalar_operand(self) -> bool:
        return not isinstance(self.right, str)


class Compare(OpNode):
    """Append a 0/1 column ``out_name = left <op> right``.

    Unlike :class:`Filter`, which discards rows by comparing a column against
    a public constant, ``Compare`` materialises the comparison outcome as a
    column — the building block compound predicates (disjunctions,
    negations, column-vs-column tests) lower to.
    """

    op_name = "compare"
    order_preserving = True

    def __init__(
        self, out_rel: Relation, parent: OpNode, out_name: str, left: str, op: str, right: str | float
    ):
        super().__init__(out_rel, [parent])
        self.out_name = out_name
        self.left = left
        self.op = validate_comparison_op(op, "compare")
        self.right = right

    @property
    def scalar_operand(self) -> bool:
        return not isinstance(self.right, str)


class BoolOp(OpNode):
    """Append ``out_name`` combining 0/1 columns with and/or/not."""

    op_name = "bool_op"
    order_preserving = True

    def __init__(
        self, out_rel: Relation, parent: OpNode, out_name: str, op: str, operands: Sequence[str]
    ):
        operands = list(operands)
        if op not in ("and", "or", "not"):
            raise ValueError(f"bool_op supports 'and', 'or' and 'not', got {op!r}")
        if op == "not" and len(operands) != 1:
            raise ValueError("'not' takes exactly one operand column")
        if op in ("and", "or") and len(operands) < 2:
            raise ValueError(f"{op!r} needs at least two operand columns")
        super().__init__(out_rel, [parent])
        self.out_name = out_name
        self.op = op
        self.operands = operands


class SortBy(OpNode):
    """Order the relation by one column."""

    op_name = "sort_by"

    def __init__(self, out_rel: Relation, parent: OpNode, column: str, ascending: bool = True):
        super().__init__(out_rel, [parent])
        self.column = column
        self.ascending = ascending


class Distinct(OpNode):
    """Distinct values of the selected columns."""

    op_name = "distinct"

    def __init__(self, out_rel: Relation, parent: OpNode, columns: Sequence[str]):
        super().__init__(out_rel, [parent])
        self.columns: list[str] = list(columns)


class Limit(OpNode):
    """Keep the first ``n`` rows (used with an order-by for top-k queries)."""

    op_name = "limit"
    order_preserving = True

    def __init__(self, out_rel: Relation, parent: OpNode, n: int):
        super().__init__(out_rel, [parent])
        self.n = int(n)


# -- multi-input operators --------------------------------------------------------------------


class Concat(OpNode):
    """Duplicate-preserving union of relations with identical schemas."""

    op_name = "concat"

    def __init__(self, out_rel: Relation, parents: Sequence[OpNode]):
        if len(parents) < 1:
            raise ValueError("concat requires at least one input")
        super().__init__(out_rel, parents)


class Merge(OpNode):
    """Merge several relations that are each sorted by the same column.

    Inserted by the sort push-up extension (§5.4): pushing a sort through a
    ``concat`` turns it into per-party local sorts followed by this merge,
    which under MPC costs an O(n log n) oblivious merge instead of an
    O(n log^2 n) oblivious sort.
    """

    op_name = "merge"

    def __init__(self, out_rel: Relation, parents: Sequence[OpNode], column: str, ascending: bool = True):
        if len(parents) < 1:
            raise ValueError("merge requires at least one input")
        super().__init__(out_rel, parents)
        self.column = column
        self.ascending = ascending


class Join(OpNode):
    """Inner equi-join on one key column per side."""

    op_name = "join"

    def __init__(
        self,
        out_rel: Relation,
        left: OpNode,
        right: OpNode,
        left_on: str,
        right_on: str,
    ):
        super().__init__(out_rel, [left, right])
        self.left_on = left_on
        self.right_on = right_on


# -- hybrid operators (inserted by the hybrid rewrite pass, §5.3) -------------------------------


class HybridJoin(Join):
    """Join whose key matching is outsourced to a selectively-trusted party."""

    op_name = "hybrid_join"

    def __init__(
        self,
        out_rel: Relation,
        left: OpNode,
        right: OpNode,
        left_on: str,
        right_on: str,
        stp: str,
    ):
        super().__init__(out_rel, left, right, left_on, right_on)
        self.stp = stp
        self.is_mpc = True


class PublicJoin(Join):
    """Join over public key columns, computed in the clear at a host party."""

    op_name = "public_join"

    def __init__(
        self,
        out_rel: Relation,
        left: OpNode,
        right: OpNode,
        left_on: str,
        right_on: str,
        host: str,
    ):
        super().__init__(out_rel, left, right, left_on, right_on)
        self.host = host
        self.is_mpc = True


class HybridAggregate(Aggregate):
    """Grouped aggregation whose sort/grouping is outsourced to an STP."""

    op_name = "hybrid_aggregate"

    def __init__(
        self,
        out_rel: Relation,
        parent: OpNode,
        group_col: str,
        agg_col: str | None,
        func: str,
        out_name: str,
        stp: str,
    ):
        super().__init__(out_rel, parent, group_col, agg_col, func, out_name)
        self.stp = stp
        self.is_mpc = True


#: Operators that distribute over a partitioned union: applying them to each
#: partition and concatenating gives the same result as applying them to the
#: concatenation (used by the MPC-frontier push-down, §5.2).  The row-wise
#: expression operators (map/compare/bool_op) are distributive because they
#: look at one row at a time.
DISTRIBUTIVE_OPS = (Project, Filter, Multiply, Divide, Map, Compare, BoolOp)

#: Aggregation functions that can be split into per-party partials plus an
#: MPC merge step.  The merge function for ``count`` partials is ``sum``.
SPLITTABLE_AGGS = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}


def is_reversible(node: OpNode) -> bool:
    """True if the operator's input can be reconstructed from its output.

    Reversible leaf operators can be lifted out of MPC by the push-up pass
    (§5.2): the recipient would learn the operator's input from the output
    anyway, so computing it in the clear leaks nothing extra.
    """
    if isinstance(node, (Multiply, Divide)):
        return node.scalar_operand and node.right != 0
    if isinstance(node, Map):
        # Adding/subtracting a public constant is always invertible.
        return node.scalar_operand
    if isinstance(node, Project):
        # A projection is reversible only if it merely reorders (keeps every
        # input column).
        parent_cols = set(node.parent.out_rel.schema.names)
        return set(node.columns) == parent_cols
    return False


def iter_tree(roots: Iterable[OpNode]):
    """Yield every node reachable from ``roots`` (each node once)."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.node_id in seen:
            continue
        seen.add(node.node_id)
        yield node
        stack.extend(node.children)
