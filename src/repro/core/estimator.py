"""Plan cost estimation for large-scale benchmark sweeps.

Executing the functional protocols on tens of millions of records in pure
Python would take longer than the real systems they simulate, so the
benchmark harness prices compiled plans analytically: every operator's work
is computed from the closed-form operation counts in
:mod:`repro.mpc.estimates` (which mirror the functional protocols
one-to-one) and converted to simulated seconds with the same cost models the
functional backends use.  Completion times follow the same recurrence as the
dispatcher, so independent per-party work overlaps.

The estimator reports out-of-memory failures of the garbled-circuit backend
(via :class:`EstimatedOOM`) instead of a time, reproducing the truncated
Obliv-C curves of Figure 1, and can cap runtimes with ``timeout_seconds`` to
reproduce the "did not finish within an hour" points of Figures 6 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cleartext.python_engine import PythonCostModel
from repro.cleartext.spark_sim import SparkCostModel, SparkStats
from repro.core.compiler import CompiledQuery
from repro.core.operators import (
    Aggregate,
    BoolOp,
    Collect,
    Compare,
    Concat,
    Create,
    Distinct,
    Divide,
    Filter,
    HybridAggregate,
    HybridJoin,
    Join,
    Limit,
    Map,
    Merge,
    Multiply,
    OpNode,
    Project,
    PublicJoin,
    SortBy,
)
from repro.mpc import estimates
from repro.mpc.garbled import (
    BYTES_PER_JOIN_PAIR,
    BYTES_PER_VALUE,
    GATES_PER_ADDITION,
    GATES_PER_COMPARISON,
    GATES_PER_MULTIPLICATION,
    GATES_PER_MUX,
    VALUE_BITS,
)
from repro.mpc.runtime import CostMeter, GarbledCostModel, SharemindCostModel


class EstimatedOOM(RuntimeError):
    """The garbled-circuit backend would exhaust its memory on this plan."""

    def __init__(self, operator: str, required_bytes: int, limit_bytes: int):
        super().__init__(
            f"estimated garbled-circuit OOM in {operator}: needs "
            f"{required_bytes / 1024**3:.1f} GiB, limit {limit_bytes / 1024**3:.1f} GiB"
        )
        self.operator = operator
        self.required_bytes = required_bytes
        self.limit_bytes = limit_bytes


@dataclass
class EstimatorParams:
    """Workload statistics the analyst supplies for accurate estimates."""

    #: Fraction of rows surviving each filter.
    filter_selectivity: float = 0.5
    #: Distinct group-by keys as a fraction of input rows.
    distinct_fraction: float = 0.1
    #: Join output rows as a fraction of the smaller input.
    join_selectivity: float = 1.0
    #: Explicit row-count overrides keyed by relation name.
    row_overrides: dict[str, int] = field(default_factory=dict)
    #: Number of computing parties in the MPC.
    num_parties: int = 3
    #: Abort the estimate when total simulated time exceeds this bound
    #: (mirrors the experiment timeouts in the paper, e.g. two hours).
    timeout_seconds: float | None = None


@dataclass
class NodeEstimate:
    """Estimated cost of a single operator."""

    node: OpNode
    rows_in: list[int]
    rows_out: int
    seconds: float
    locus: str


@dataclass
class PlanEstimate:
    """Estimated cost of a whole compiled plan."""

    simulated_seconds: float
    mpc_seconds: float
    local_seconds: float
    nodes: list[NodeEstimate]
    timed_out: bool = False

    def breakdown(self) -> str:
        lines = [
            f"{'operator':<20} {'relation':<30} {'rows':>12} {'seconds':>12}  locus"
        ]
        for ne in self.nodes:
            lines.append(
                f"{ne.node.op_name:<20} {ne.node.out_rel.name:<30} "
                f"{ne.rows_out:>12} {ne.seconds:>12.3f}  {ne.locus}"
            )
        lines.append(f"total simulated seconds: {self.simulated_seconds:.1f}")
        return "\n".join(lines)


class PlanEstimator:
    """Prices a compiled plan with the backends' cost models."""

    def __init__(
        self,
        params: EstimatorParams | None = None,
        sharemind_model: SharemindCostModel | None = None,
        garbled_model: GarbledCostModel | None = None,
        spark_model: SparkCostModel | None = None,
        python_model: PythonCostModel | None = None,
    ):
        self.params = params or EstimatorParams()
        self.sharemind_model = sharemind_model or SharemindCostModel()
        self.garbled_model = garbled_model or GarbledCostModel()
        self.spark_model = spark_model or SparkCostModel()
        self.python_model = python_model or PythonCostModel()

    # -- public API ------------------------------------------------------------------------

    def estimate(self, compiled: CompiledQuery) -> PlanEstimate:
        """Estimate the end-to-end simulated runtime of a compiled query."""
        rows: dict[str, int] = {}
        finish: dict[int, float] = {}
        node_estimates: list[NodeEstimate] = []
        mpc_seconds = 0.0
        local_seconds = 0.0
        use_garbled = compiled.config.mpc_backend == "obliv-c"
        use_spark = compiled.config.cleartext_backend == "spark"
        timed_out = False

        for node in compiled.dag.topological():
            rows_in = [rows.get(p.out_rel.name, 0) for p in node.parents]
            rows_out = self._estimate_rows(node, rows_in)
            rows[node.out_rel.name] = rows_out

            if node.is_mpc:
                seconds = self._mpc_seconds(node, rows_in, rows_out, use_garbled, use_spark)
                mpc_seconds += seconds
                locus = "mpc"
            else:
                seconds = self._local_seconds(node, rows_in, rows_out, use_spark)
                local_seconds += seconds
                locus = f"local:{node.run_at or node.out_rel.owner or '?'}"

            start = max((finish[p.node_id] for p in node.parents), default=0.0)
            finish[node.node_id] = start + seconds
            node_estimates.append(NodeEstimate(node, rows_in, rows_out, seconds, locus))

            if (
                self.params.timeout_seconds is not None
                and finish[node.node_id] > self.params.timeout_seconds
            ):
                timed_out = True

        total = max(finish.values(), default=0.0)
        return PlanEstimate(
            simulated_seconds=total,
            mpc_seconds=mpc_seconds,
            local_seconds=local_seconds,
            nodes=node_estimates,
            timed_out=timed_out,
        )

    # -- row estimation -----------------------------------------------------------------------

    def _estimate_rows(self, node: OpNode, rows_in: list[int]) -> int:
        override = self.params.row_overrides.get(node.out_rel.name)
        if override is not None:
            return int(override)
        if isinstance(node, Create):
            return int(node.out_rel.estimated_rows or 0)
        if isinstance(node, (Concat, Merge)):
            return sum(rows_in)
        if isinstance(node, Filter):
            return int(rows_in[0] * self.params.filter_selectivity)
        if isinstance(node, (HybridAggregate, Aggregate)):
            if node.group_col is None:
                return 1
            if getattr(node, "is_secondary", False):
                # Merging per-party partials: output is the number of
                # distinct keys, roughly the partial count divided by the
                # number of contributing parties.
                return max(1, int(rows_in[0] / max(1, self.params.num_parties)))
            return max(1, int(rows_in[0] * self.params.distinct_fraction))
        if isinstance(node, Distinct):
            return max(1, int(rows_in[0] * self.params.distinct_fraction))
        if isinstance(node, (HybridJoin, PublicJoin, Join)):
            return max(1, int(min(rows_in) * self.params.join_selectivity))
        if isinstance(node, Limit):
            return min(rows_in[0], node.n)
        return rows_in[0] if rows_in else 0

    # -- MPC costs ------------------------------------------------------------------------------

    def _mpc_seconds(
        self, node: OpNode, rows_in: list[int], rows_out: int, use_garbled: bool, use_spark: bool
    ) -> float:
        if use_garbled:
            gates, input_bits, memory = self._garbled_cost(node, rows_in, rows_out)
            if memory > self.garbled_model.memory_limit_bytes:
                raise EstimatedOOM(node.op_name, memory, self.garbled_model.memory_limit_bytes)
            return self.garbled_model.seconds(gates, input_bits)

        meter = self._sharemind_meter(node, rows_in, rows_out)
        seconds = self.sharemind_model.seconds(meter)
        # Hybrid operators also pay for cleartext work at the STP/host.
        if isinstance(node, (HybridJoin, PublicJoin)):
            seconds += self._cleartext_records_seconds(sum(rows_in) + rows_out, use_spark, wide=True)
        elif isinstance(node, HybridAggregate):
            seconds += self._cleartext_records_seconds(rows_in[0], use_spark, wide=True)
        return seconds

    def _sharemind_meter(self, node: OpNode, rows_in: list[int], rows_out: int) -> CostMeter:
        p = self.params.num_parties
        cols_in = [len(parent.out_rel.schema) for parent in node.parents]
        cols_out = len(node.out_rel.schema)
        meter = CostMeter()
        # Data that crosses from cleartext into this MPC operator is
        # secret-shared first.
        for parent, n_rows, n_cols in zip(node.parents, rows_in, cols_in):
            if not parent.is_mpc and not isinstance(parent, Create):
                meter.merge(estimates.share_input_meter(n_rows, n_cols, p))
            elif isinstance(parent, Create):
                meter.merge(estimates.share_input_meter(n_rows, n_cols, p))

        if isinstance(node, Merge):
            meter.merge(estimates.merge_meter(sum(rows_in), cols_out, p))
        elif isinstance(node, Concat):
            meter.local_ops += sum(rows_in) * cols_out
        elif isinstance(node, Project):
            meter.local_ops += rows_in[0] * cols_out
        elif isinstance(node, Filter):
            meter.merge(estimates.filter_meter(rows_in[0], cols_out, p))
        elif isinstance(node, HybridJoin):
            meter.merge(estimates.hybrid_join_meter(rows_in[0], rows_in[1], rows_out, cols_out, p))
        elif isinstance(node, PublicJoin):
            meter.merge(estimates.reveal_meter(rows_in[0] + rows_in[1], 1, p))
            meter.local_ops += rows_out * cols_out
        elif isinstance(node, Join):
            meter.merge(estimates.join_meter(rows_in[0], rows_in[1], cols_out, p))
        elif isinstance(node, HybridAggregate):
            meter.merge(estimates.hybrid_aggregate_meter(rows_in[0], rows_out, p))
        elif isinstance(node, Aggregate):
            scalar = node.group_col is None
            meter.merge(
                estimates.aggregate_meter(rows_in[0], p, presorted=node.presorted, scalar=scalar)
            )
        elif isinstance(node, (Multiply, Divide)):
            if isinstance(node, Divide) and isinstance(node.right, str):
                meter.multiplications += 15 * rows_in[0]
            elif isinstance(node, Multiply) and isinstance(node.right, str):
                meter.multiplications += rows_in[0]
            else:
                meter.local_ops += rows_in[0]
        elif isinstance(node, Compare):
            # Every operator costs one secret comparison per element
            # (mirrors _comparison_flags; negations are local).
            meter.comparisons += rows_in[0]
        elif isinstance(node, BoolOp):
            if node.op == "not":
                meter.local_ops += rows_in[0]
            else:
                # and/or fold with one secret multiplication per operand pair.
                meter.multiplications += max(1, len(node.operands) - 1) * rows_in[0]
        elif isinstance(node, Map):
            # Additions/subtractions are local on additive shares.
            meter.local_ops += rows_in[0]
        elif isinstance(node, SortBy):
            meter.merge(estimates.sort_meter(rows_in[0], cols_out, p))
        elif isinstance(node, Distinct):
            meter.merge(estimates.aggregate_meter(rows_in[0], p))
        elif isinstance(node, Limit):
            meter.local_ops += rows_out * cols_out
        elif isinstance(node, Collect):
            meter.merge(estimates.reveal_meter(rows_in[0], cols_out, p))
        return meter

    def _garbled_cost(self, node: OpNode, rows_in: list[int], rows_out: int) -> tuple[int, int, int]:
        """(non-XOR gates, OT input bits, peak memory bytes) for Obliv-C plans."""
        cols_in = [len(parent.out_rel.schema) for parent in node.parents]
        cols_out = len(node.out_rel.schema)
        values_in = sum(r * c for r, c in zip(rows_in, cols_in))
        input_bits = 0
        for parent, n_rows, n_cols in zip(node.parents, rows_in, cols_in):
            if not parent.is_mpc:
                input_bits += n_rows * n_cols * VALUE_BITS

        gates = 0
        memory = (values_in + rows_out * cols_out) * BYTES_PER_VALUE
        n = rows_in[0] if rows_in else 0
        if isinstance(node, Filter):
            gates = n * (GATES_PER_COMPARISON + GATES_PER_MUX * cols_out)
        elif isinstance(node, Join):
            pairs = rows_in[0] * rows_in[1]
            gates = pairs * (GATES_PER_COMPARISON + GATES_PER_MUX * cols_out)
            memory = values_in * BYTES_PER_VALUE + pairs * BYTES_PER_JOIN_PAIR
        elif isinstance(node, Aggregate):
            if node.group_col is None:
                gates = max(0, n - 1) * GATES_PER_ADDITION
            else:
                comparators = 0 if node.presorted else estimates.bitonic_comparator_count(n)
                gates = comparators * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX)
                gates += max(0, n - 1) * (GATES_PER_COMPARISON + GATES_PER_ADDITION + GATES_PER_MUX)
        elif isinstance(node, Multiply):
            gates = n * GATES_PER_MULTIPLICATION
        elif isinstance(node, Divide):
            gates = n * 2 * GATES_PER_MULTIPLICATION
        elif isinstance(node, Compare):
            gates = n * GATES_PER_COMPARISON
        elif isinstance(node, BoolOp):
            # One non-XOR gate per operand pair per row; NOT is free.
            gates = n * max(0, len(node.operands) - 1)
        elif isinstance(node, Map):
            gates = n * GATES_PER_ADDITION
        elif isinstance(node, SortBy):
            comparators = estimates.bitonic_comparator_count(n)
            gates = comparators * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX * cols_out)
        elif isinstance(node, Distinct):
            comparators = estimates.bitonic_comparator_count(n)
            gates = comparators * (GATES_PER_COMPARISON + 2 * GATES_PER_MUX) + max(0, n - 1) * GATES_PER_COMPARISON
        return gates, input_bits, memory

    # -- cleartext costs -----------------------------------------------------------------------------

    def _local_seconds(self, node: OpNode, rows_in: list[int], rows_out: int, use_spark: bool) -> float:
        if isinstance(node, Create):
            return self._cleartext_records_seconds(rows_out, use_spark, wide=False)
        if isinstance(node, Collect):
            return self._cleartext_records_seconds(rows_in[0] if rows_in else 0, use_spark, wide=False)
        wide = isinstance(node, (Join, Aggregate, Distinct, SortBy, Merge, HybridAggregate))
        records = sum(rows_in) + (rows_out if wide else 0)
        return self._cleartext_records_seconds(records, use_spark, wide=wide)

    def _cleartext_records_seconds(self, records: int, use_spark: bool, wide: bool) -> float:
        if use_spark:
            stats = SparkStats(
                jobs=0,
                stages=1,
                tasks=self.spark_model.total_cores,
                records_processed=records,
                records_shuffled=records if wide else 0,
            )
            return self.spark_model.seconds(stats)
        return records * self.python_model.per_record_seconds + self.python_model.startup_seconds
