"""Intermediate relations of the operator DAG.

A :class:`Relation` describes the *output* of one operator node: its name,
schema, which parties physically store it, which single party (if any) can
derive it locally ("owner", §5.1), the per-column trust sets derived by
annotation propagation, and bookkeeping the optimisation passes use (the
column the relation is sorted by, and row-count statistics for the cost
estimator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.schema import PUBLIC, Schema


@dataclass
class Relation:
    """Metadata describing one relation in the query DAG."""

    name: str
    schema: Schema
    #: Parties that physically hold (a partition of) this relation.
    stored_with: set[str] = field(default_factory=set)
    #: The single party able to derive the relation locally, or ``None`` if
    #: it combines data from several parties (and therefore needs MPC).
    owner: str | None = None
    #: Per-column trust sets (party names; ``"*"`` means public), keyed by
    #: column name.  Filled in by the trust-propagation pass.
    trust: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Column the relation is known to be sorted by, if any (used by the
    #: sort-elimination pass, §5.4).
    sorted_by: str | None = None
    #: Estimated number of rows (used by the plan cost estimator).
    estimated_rows: int | None = None

    def column_trust(self, column: str) -> frozenset[str]:
        """Trust set of ``column`` (empty if unknown)."""
        return self.trust.get(column, frozenset())

    def trusted_parties(self, column: str, all_parties: set[str]) -> set[str]:
        """Parties allowed to see ``column`` in the clear."""
        trust = self.column_trust(column)
        if PUBLIC in trust:
            return set(all_parties)
        return set(trust) & set(all_parties) | (set(trust) - {PUBLIC})

    def is_public_column(self, column: str) -> bool:
        return PUBLIC in self.column_trust(column)

    def copy(self, name: str | None = None) -> "Relation":
        return Relation(
            name=name or self.name,
            schema=self.schema,
            stored_with=set(self.stored_with),
            owner=self.owner,
            trust=dict(self.trust),
            sorted_by=self.sorted_by,
            estimated_rows=self.estimated_rows,
        )

    def __repr__(self) -> str:
        owner = self.owner or "-"
        return f"Relation({self.name}, owner={owner}, cols={self.schema.names})"
