"""CSV input/output for tables.

The original Conclave prototype exchanges relations between its per-party
agents and the MPC backends as CSV files.  We keep the same convention: each
party's local data directory holds one CSV file per input/output relation,
with a header row naming the columns.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema
from repro.data.table import Table


def write_csv(table: Table, path: str | os.PathLike) -> Path:
    """Write ``table`` to ``path`` as CSV with a header row.

    Returns the path written.  Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.names)
        for row in table.rows():
            writer.writerow(row)
    return path


def read_csv(path: str | os.PathLike, schema: Schema | None = None) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    If ``schema`` is omitted, all columns are inferred: a column is INT if
    every value parses as an integer, FLOAT otherwise.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ValueError(f"{path} is empty; expected a CSV header row") from exc
        raw_rows = [row for row in reader if row]

    if schema is None:
        schema = _infer_schema(header, raw_rows)
    elif schema.names != header:
        raise ValueError(
            f"CSV header {header} does not match expected schema columns {schema.names}"
        )

    columns = []
    for j, cdef in enumerate(schema):
        if cdef.ctype is ColumnType.INT:
            columns.append(np.array([int(float(row[j])) for row in raw_rows], dtype=np.int64))
        else:
            columns.append(np.array([float(row[j]) for row in raw_rows], dtype=np.float64))
    return Table(schema, columns)


def _infer_schema(header: Sequence[str], rows: Sequence[Sequence[str]]) -> Schema:
    cols = []
    for j, name in enumerate(header):
        ctype = ColumnType.INT
        for row in rows:
            value = row[j]
            try:
                int(value)
            except ValueError:
                ctype = ColumnType.FLOAT
                break
        cols.append(ColumnDef(name, ctype))
    return Schema(cols)
