"""Relation schemas.

A :class:`Schema` is an ordered list of :class:`ColumnDef` objects.  Columns
carry a type (``INT`` or ``FLOAT``) and an optional *trust set*: the set of
party names that are authorised to see the column in the clear (§4.3 of the
paper).  An empty trust set means "private to the owning party"; the special
marker :data:`PUBLIC` means every party may see it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


class ColumnType(enum.Enum):
    """Value type of a column."""

    INT = "int"
    FLOAT = "float"

    def python_type(self) -> type:
        """Return the Python type used to store values of this column."""
        return int if self is ColumnType.INT else float


#: Sentinel trust-set entry meaning "all parties" (a public column).
PUBLIC = "*"


@dataclass(frozen=True)
class ColumnDef:
    """Definition of a single column.

    Parameters
    ----------
    name:
        Column name, unique within its schema.
    ctype:
        Value type.
    trust:
        Names of parties trusted to see the column in the clear, in addition
        to the owning party.  ``{PUBLIC}`` marks a public column.
    """

    name: str
    ctype: ColumnType = ColumnType.INT
    trust: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")
        if not isinstance(self.trust, frozenset):
            object.__setattr__(self, "trust", frozenset(self.trust))

    @property
    def is_public(self) -> bool:
        """True if every party is trusted with this column."""
        return PUBLIC in self.trust

    def with_trust(self, trust: Iterable[str]) -> "ColumnDef":
        """Return a copy of this column with a replaced trust set."""
        return ColumnDef(self.name, self.ctype, frozenset(trust))

    def renamed(self, name: str) -> "ColumnDef":
        """Return a copy of this column with a new name."""
        return ColumnDef(name, self.ctype, self.trust)


class Schema:
    """Ordered collection of column definitions.

    Schemas are immutable; transformation helpers return new instances.
    """

    def __init__(self, columns: Sequence[ColumnDef]):
        cols = list(columns)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self._columns: tuple[ColumnDef, ...] = tuple(cols)
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(cols)}

    # -- basic container protocol -------------------------------------------------

    @property
    def columns(self) -> tuple[ColumnDef, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key: int | str) -> ColumnDef:
        if isinstance(key, int):
            return self._columns[key]
        return self._columns[self._index[key]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{c.name}:{c.ctype.value}" + (f"[trust={sorted(c.trust)}]" if c.trust else "")
            for c in self._columns
        )
        return f"Schema({cols})"

    # -- lookups -------------------------------------------------------------------

    def index_of(self, name: str) -> int:
        """Return the positional index of column ``name``.

        Raises ``KeyError`` if the column does not exist.
        """
        if name not in self._index:
            raise KeyError(f"no column named {name!r}; have {self.names}")
        return self._index[name]

    def indices_of(self, names: Sequence[str]) -> list[int]:
        """Return positional indices for a list of column names."""
        return [self.index_of(n) for n in names]

    def resolve(self, key: int | str) -> str:
        """Normalise a column reference (index or name) to a column name."""
        if isinstance(key, int):
            return self._columns[key].name
        self.index_of(key)
        return key

    # -- derivation helpers --------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema consisting of the named columns, in the given order."""
        return Schema([self[self.index_of(n)] for n in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed according to ``mapping``."""
        return Schema([c.renamed(mapping.get(c.name, c.name)) for c in self._columns])

    def with_column(self, column: ColumnDef) -> "Schema":
        """Return a schema with ``column`` appended."""
        return Schema([*self._columns, column])

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the named columns."""
        drop = set(names)
        return Schema([c for c in self._columns if c.name not in drop])

    def concat_compatible(self, other: "Schema") -> bool:
        """True if two schemas can be concatenated row-wise (names and types match)."""
        if len(self) != len(other):
            return False
        return all(
            a.name == b.name and a.ctype == b.ctype
            for a, b in zip(self._columns, other._columns)
        )


def make_schema(*specs: tuple[str, ColumnType] | str) -> Schema:
    """Convenience constructor: ``make_schema("a", ("b", ColumnType.FLOAT))``."""
    cols = []
    for spec in specs:
        if isinstance(spec, str):
            cols.append(ColumnDef(spec, ColumnType.INT))
        else:
            name, ctype = spec
            cols.append(ColumnDef(name, ctype))
    return Schema(cols)
