"""In-memory columnar tables.

:class:`Table` is the single data container used across the reproduction.
It stores columns as numpy arrays (int64 or float64) and offers the
relational primitives the compiler's generated code needs: project, filter,
join, group-by aggregation, sort, concat, arithmetic on columns, distinct,
and limit.  All operations return new tables; tables are never mutated after
construction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.data.schema import ColumnDef, ColumnType, Schema

#: Aggregation function names supported by :meth:`Table.aggregate`.
AGG_FUNCS = ("sum", "count", "min", "max", "mean")


class Table:
    """Immutable columnar table with a :class:`Schema`."""

    def __init__(self, schema: Schema, columns: Sequence[np.ndarray] | None = None):
        self.schema = schema
        if columns is None:
            columns = [np.empty(0, dtype=self._dtype(c)) for c in schema]
        if len(columns) != len(schema):
            raise ValueError(
                f"schema has {len(schema)} columns but {len(columns)} arrays given"
            )
        arrays: list[np.ndarray] = []
        nrows = None
        for cdef, col in zip(schema, columns):
            arr = np.asarray(col, dtype=self._dtype(cdef))
            if arr.ndim != 1:
                raise ValueError("table columns must be one-dimensional")
            if nrows is None:
                nrows = len(arr)
            elif len(arr) != nrows:
                raise ValueError("all columns must have the same length")
            arrays.append(arr)
        self._columns: tuple[np.ndarray, ...] = tuple(arrays)
        self._nrows: int = 0 if nrows is None else int(nrows)

    # -- constructors ----------------------------------------------------------------

    @staticmethod
    def _dtype(cdef: ColumnDef) -> np.dtype:
        return np.dtype(np.int64) if cdef.ctype is ColumnType.INT else np.dtype(np.float64)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[float]]) -> "Table":
        """Build a table from an iterable of row tuples."""
        rows = list(rows)
        if not rows:
            return cls(schema)
        ncols = len(schema)
        columns = []
        for j, cdef in enumerate(schema):
            dtype = cls._dtype(cdef)
            columns.append(np.array([row[j] for row in rows], dtype=dtype))
        for row in rows:
            if len(row) != ncols:
                raise ValueError(f"row {row!r} does not match schema width {ncols}")
        return cls(schema, columns)

    @classmethod
    def from_dict(cls, schema: Schema, data: dict[str, Sequence[float]]) -> "Table":
        """Build a table from a mapping of column name to values."""
        return cls(schema, [np.asarray(data[c.name]) for c in schema])

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """Return an empty table with the given schema."""
        return cls(schema)

    # -- basic accessors ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._nrows

    def column(self, name: str) -> np.ndarray:
        """Return the column array for ``name`` (a view; do not mutate)."""
        return self._columns[self.schema.index_of(name)]

    def columns(self) -> tuple[np.ndarray, ...]:
        return self._columns

    def rows(self) -> list[tuple]:
        """Materialise the table as a list of Python row tuples."""
        return [tuple(col[i].item() for col in self._columns) for i in range(self._nrows)]

    def row(self, i: int) -> tuple:
        return tuple(col[i].item() for col in self._columns)

    def to_dict(self) -> dict[str, list]:
        """Return the table as a mapping of column name to Python lists."""
        return {c.name: self.column(c.name).tolist() for c in self.schema}

    def __repr__(self) -> str:
        return f"Table({self.schema!r}, rows={self._nrows})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema.names != other.schema.names or self._nrows != other._nrows:
            return False
        return all(np.array_equal(a, b) for a, b in zip(self._columns, other._columns))

    def equals_unordered(self, other: "Table") -> bool:
        """Compare two tables as multisets of rows (row order ignored)."""
        if self.schema.names != other.schema.names:
            return False
        return sorted(self.rows()) == sorted(other.rows())

    # -- relational operators -----------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Table":
        """Return a table with only the named columns, in the given order."""
        idx = self.schema.indices_of(list(names))
        return Table(self.schema.project(list(names)), [self._columns[i] for i in idx])

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Return a table with columns renamed according to ``mapping``."""
        return Table(self.schema.rename(mapping), self._columns)

    def select_rows(self, mask: np.ndarray) -> "Table":
        """Return rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        return Table(self.schema, [col[mask] for col in self._columns])

    def take(self, indices: np.ndarray) -> "Table":
        """Return the rows at the given positional ``indices``, in order."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(self.schema, [col[indices] for col in self._columns])

    def filter(self, column: str, op: str, value: float) -> "Table":
        """Filter rows by comparing ``column`` against a scalar.

        ``op`` is one of ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
        """
        col = self.column(column)
        ops: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        if op not in ops:
            raise ValueError(f"unsupported filter op {op!r}")
        return self.select_rows(ops[op](col, value))

    def filter_predicate(self, predicate: Callable[[tuple], bool]) -> "Table":
        """Filter rows using an arbitrary Python predicate over row tuples."""
        mask = np.fromiter(
            (bool(predicate(row)) for row in self.rows()), dtype=bool, count=self._nrows
        )
        return self.select_rows(mask)

    def limit(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return Table(self.schema, [col[:n] for col in self._columns])

    def concat(self, *others: "Table") -> "Table":
        """Row-wise concatenation (duplicate-preserving set union)."""
        for other in others:
            if not self.schema.concat_compatible(other.schema):
                raise ValueError(
                    f"cannot concat incompatible schemas {self.schema} and {other.schema}"
                )
        tables = [self, *others]
        cols = [
            np.concatenate([t._columns[j] for t in tables])
            for j in range(len(self._columns))
        ]
        return Table(self.schema, cols)

    def distinct(self, names: Sequence[str] | None = None) -> "Table":
        """Return distinct rows (optionally projecting to ``names`` first)."""
        t = self if names is None else self.project(list(names))
        if t.num_rows == 0:
            return t
        stacked = np.stack(t._columns, axis=1)
        _, idx = np.unique(stacked, axis=0, return_index=True)
        return t.take(np.sort(idx))

    def sort_by(self, names: Sequence[str], ascending: bool = True) -> "Table":
        """Stable sort by the named columns (last name is least significant)."""
        if self._nrows == 0:
            return self
        keys = [self.column(n) for n in reversed(list(names))]
        order = np.lexsort(keys)
        if not ascending:
            order = order[::-1]
        return self.take(order)

    def join(
        self,
        other: "Table",
        left_on: Sequence[str],
        right_on: Sequence[str],
        suffix: str = "_r",
    ) -> "Table":
        """Inner equi-join.

        The result contains all left columns followed by the right table's
        non-key columns; right columns whose names collide with a left column
        get ``suffix`` appended.
        """
        left_on = list(left_on)
        right_on = list(right_on)
        if len(left_on) != len(right_on):
            raise ValueError("join key lists must have equal length")

        # Build a hash index on the right side keyed by the join columns.
        right_keys = [other.column(n) for n in right_on]
        index: dict[tuple, list[int]] = {}
        for i in range(other.num_rows):
            key = tuple(k[i].item() for k in right_keys)
            index.setdefault(key, []).append(i)

        left_keys = [self.column(n) for n in left_on]
        left_idx: list[int] = []
        right_idx: list[int] = []
        for i in range(self._nrows):
            key = tuple(k[i].item() for k in left_keys)
            for j in index.get(key, ()):
                left_idx.append(i)
                right_idx.append(j)

        left_sel = self.take(np.array(left_idx, dtype=np.int64))
        right_keep = [c.name for c in other.schema if c.name not in right_on]
        right_sel = other.project(right_keep).take(np.array(right_idx, dtype=np.int64))

        # Resolve name collisions on the right side.
        taken = set(left_sel.schema.names)
        mapping = {}
        for name in right_sel.schema.names:
            if name in taken:
                mapping[name] = name + suffix
        right_sel = right_sel.rename(mapping)

        schema = Schema([*left_sel.schema.columns, *right_sel.schema.columns])
        return Table(schema, [*left_sel._columns, *right_sel._columns])

    def aggregate(
        self,
        group_by: Sequence[str],
        agg_col: str | None,
        func: str,
        out_name: str,
    ) -> "Table":
        """Group-by aggregation.

        ``func`` is one of :data:`AGG_FUNCS`.  With an empty ``group_by``
        the whole table is reduced to a single row.  ``agg_col`` may be
        ``None`` for ``count``.
        """
        func = func.lower()
        if func not in AGG_FUNCS:
            raise ValueError(f"unsupported aggregation {func!r}")
        if func != "count" and agg_col is None:
            raise ValueError(f"aggregation {func!r} requires a value column")

        group_by = list(group_by)
        out_type = ColumnType.INT
        if agg_col is not None:
            out_type = self.schema[agg_col].ctype
        if func == "mean":
            out_type = ColumnType.FLOAT
        out_def = ColumnDef(out_name, out_type)

        if not group_by:
            value = self._reduce(func, agg_col, np.arange(self._nrows))
            return Table(Schema([out_def]), [np.array([value])])

        key_cols = [self.column(n) for n in group_by]
        groups: dict[tuple, list[int]] = {}
        for i in range(self._nrows):
            key = tuple(k[i].item() for k in key_cols)
            groups.setdefault(key, []).append(i)

        out_schema = Schema([*self.schema.project(group_by).columns, out_def])
        key_rows = []
        values = []
        for key in sorted(groups):
            idx = np.array(groups[key], dtype=np.int64)
            key_rows.append(key)
            values.append(self._reduce(func, agg_col, idx))
        key_arrays = [
            np.array([row[j] for row in key_rows], dtype=Table._dtype(self.schema[name]))
            for j, name in enumerate(group_by)
        ]
        value_array = np.array(values, dtype=Table._dtype(out_def))
        return Table(out_schema, [*key_arrays, value_array])

    def _reduce(self, func: str, agg_col: str | None, idx: np.ndarray) -> float:
        if func == "count":
            return int(len(idx))
        col = self.column(agg_col)[idx]  # type: ignore[index]
        if len(col) == 0:
            return 0
        if func == "sum":
            return col.sum()
        if func == "min":
            return col.min()
        if func == "max":
            return col.max()
        if func == "mean":
            return float(col.mean())
        raise AssertionError(func)

    # -- column arithmetic -----------------------------------------------------------------

    def with_column(self, name: str, values: np.ndarray, ctype: ColumnType | None = None) -> "Table":
        """Return a table with a new column appended."""
        values = np.asarray(values)
        if ctype is None:
            ctype = ColumnType.FLOAT if values.dtype.kind == "f" else ColumnType.INT
        cdef = ColumnDef(name, ctype)
        values = values.astype(Table._dtype(cdef))
        return Table(self.schema.with_column(cdef), [*self._columns, values])

    def arithmetic(
        self,
        out_name: str,
        left: str,
        op: str,
        right: str | float,
    ) -> "Table":
        """Append ``out_name = left <op> right`` where right is a column or scalar.

        ``op`` is one of ``+``, ``-``, ``*``, ``/``.
        """
        lcol = self.column(left)
        rval = self.column(right) if isinstance(right, str) else right
        if op == "+":
            result = lcol + rval
        elif op == "-":
            result = lcol - rval
        elif op == "*":
            result = lcol * rval
        elif op == "/":
            result = np.divide(
                lcol.astype(np.float64),
                np.asarray(rval, dtype=np.float64),
                out=np.zeros(len(lcol), dtype=np.float64),
                where=np.asarray(rval, dtype=np.float64) != 0,
            )
        else:
            raise ValueError(f"unsupported arithmetic op {op!r}")
        ctype = ColumnType.FLOAT if np.asarray(result).dtype.kind == "f" else ColumnType.INT
        return self.with_column(out_name, result, ctype)

    def compare(self, out_name: str, left: str, op: str, right: "str | float") -> "Table":
        """Append a 0/1 column ``out_name = left <op> right``.

        ``right`` is a column name or a public scalar; ``op`` is one of
        ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
        """
        ops: dict[str, Callable] = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        if op not in ops:
            raise ValueError(f"unsupported comparison op {op!r}")
        lcol = self.column(left)
        rval = self.column(right) if isinstance(right, str) else right
        flags = ops[op](lcol, rval).astype(np.int64)
        return self.with_column(out_name, flags, ColumnType.INT)

    def bool_op(self, out_name: str, op: str, operands: Sequence[str]) -> "Table":
        """Append ``out_name`` combining 0/1 columns with and/or/not."""
        cols = [self.column(name) != 0 for name in operands]
        if op == "and":
            result = np.logical_and.reduce(cols)
        elif op == "or":
            result = np.logical_or.reduce(cols)
        elif op == "not":
            if len(cols) != 1:
                raise ValueError("'not' takes exactly one operand column")
            result = np.logical_not(cols[0])
        else:
            raise ValueError(f"unsupported boolean op {op!r}")
        return self.with_column(out_name, np.asarray(result).astype(np.int64), ColumnType.INT)

    def enumerate_rows(self, out_name: str = "row_id") -> "Table":
        """Append a 0-based row identifier column."""
        return self.with_column(out_name, np.arange(self._nrows, dtype=np.int64), ColumnType.INT)

    def shuffle(self, rng: np.random.Generator | None = None) -> "Table":
        """Return a random row permutation of the table."""
        rng = rng or np.random.default_rng()
        perm = rng.permutation(self._nrows)
        return self.take(perm)
